"""Refinement step: exact geometry tests behind the MBR filter.

The paper studies the *filter* step only, but a GIS pipeline follows it
with a refinement step that checks the exact geometries of each
candidate pair (Orenstein's two-step architecture cited in the paper's
introduction).  The example applications use this module to complete
the pipeline: segment/segment and polyline/polyline intersection
predicates, robust for the float32-representable coordinates our data
generators produce.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point = Tuple[float, float]
Segment = Tuple[Point, Point]


def _orient(p: Point, q: Point, r: Point) -> float:
    """Twice the signed area of triangle pqr (>0 = counter-clockwise)."""
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def _on_segment(p: Point, q: Point, r: Point) -> bool:
    """True if collinear point ``q`` lies within segment pr's box."""
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def segments_intersect(s1: Segment, s2: Segment) -> bool:
    """Exact (orientation-based) closed segment intersection test."""
    p1, q1 = s1
    p2, q2 = s2
    d1 = _orient(p1, q1, p2)
    d2 = _orient(p1, q1, q2)
    d3 = _orient(p2, q2, p1)
    d4 = _orient(p2, q2, q1)
    if ((d1 > 0) != (d2 > 0) and d1 != 0 and d2 != 0) and (
        (d3 > 0) != (d4 > 0) and d3 != 0 and d4 != 0
    ):
        return True
    if d1 == 0 and _on_segment(p1, p2, q1):
        return True
    if d2 == 0 and _on_segment(p1, q2, q1):
        return True
    if d3 == 0 and _on_segment(p2, p1, q2):
        return True
    if d4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False


def polylines_intersect(a: Sequence[Point], b: Sequence[Point]) -> bool:
    """True when any segment of polyline ``a`` meets any of ``b``.

    Quadratic in the segment counts — refinement candidates are single
    features, so the inputs are tiny.
    """
    if len(a) < 2 or len(b) < 2:
        return False
    for i in range(len(a) - 1):
        sa = (a[i], a[i + 1])
        for j in range(len(b) - 1):
            if segments_intersect(sa, (b[j], b[j + 1])):
                return True
    return False


def polyline_mbr(points: Sequence[Point]) -> Tuple[float, float, float, float]:
    """(xlo, xhi, ylo, yhi) of a polyline (filter-step input)."""
    if not points:
        raise ValueError("empty polyline has no MBR")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return min(xs), max(xs), min(ys), max(ys)
