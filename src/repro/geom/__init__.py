"""Geometry kernel: rectangles (MBRs) and exact-geometry refinement.

The paper's filter step operates exclusively on minimal bounding
rectangles (MBRs); :mod:`repro.geom.rect` provides the rectangle type and
the handful of predicates every join algorithm needs.  The refinement
step (exact polyline intersection) used by the examples lives in
:mod:`repro.geom.refine`.
"""

from repro.geom.rect import (
    Rect,
    intersects,
    intersects_x,
    intersects_y,
    intersection,
    union_mbr,
    mbr_of,
    area,
    margin,
    enlargement,
    reference_point,
    contains,
    RECT_BYTES,
)

__all__ = [
    "Rect",
    "intersects",
    "intersects_x",
    "intersects_y",
    "intersection",
    "union_mbr",
    "mbr_of",
    "area",
    "margin",
    "enlargement",
    "reference_point",
    "contains",
    "RECT_BYTES",
]
