"""Axis-parallel rectangles (MBRs) and their predicates.

Every spatial object in the paper is represented in the filter step by its
minimal bounding rectangle.  Following the paper's storage format
(Section 5.3), a rectangle on disk occupies 20 bytes: four 4-byte corner
coordinates plus a 4-byte identifier.  In memory we use a ``NamedTuple``
of Python floats; data generators round all coordinates to float32 so
that the serialized (float32) and in-memory (float64) representations
describe exactly the same rectangle and all algorithms report identical
result sets regardless of whether the input came from a stream or an
R-tree.

Intervals are closed: two rectangles that merely touch intersect.  This
matches the convention of the plane-sweep literature the paper builds on
(Gueting & Schilling; Arge et al., VLDB'98).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Optional

#: On-disk footprint of one MBR record (paper Section 5.3): 16 bytes of
#: corner coordinates + 4 bytes of object identifier.
RECT_BYTES = 20


class Rect(NamedTuple):
    """A minimal bounding rectangle with an object identifier.

    The coordinate order (``xlo, xhi, ylo, yhi``) groups the x-interval
    and the y-interval together because the sweep algorithms constantly
    test the two intervals independently: the sweep-line advances in y,
    and the interval-intersection test happens in x.
    """

    xlo: float
    xhi: float
    ylo: float
    yhi: float
    rid: int = 0

    def intersects(self, other: "Rect") -> bool:
        """Closed-interval intersection test against ``other``."""
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    def is_valid(self) -> bool:
        """True when both intervals are non-degenerate (lo <= hi)."""
        return self.xlo <= self.xhi and self.ylo <= self.yhi


def intersects(a: Rect, b: Rect) -> bool:
    """Closed-interval rectangle intersection."""
    return (
        a.xlo <= b.xhi and b.xlo <= a.xhi and a.ylo <= b.yhi and b.ylo <= a.yhi
    )


def intersects_x(a: Rect, b: Rect) -> bool:
    """Intersection of the x-projections only (the sweep's interval test)."""
    return a.xlo <= b.xhi and b.xlo <= a.xhi


def intersects_y(a: Rect, b: Rect) -> bool:
    """Intersection of the y-projections only."""
    return a.ylo <= b.yhi and b.ylo <= a.yhi


def intersection(a: Rect, b: Rect) -> Optional[Rect]:
    """The intersection rectangle of ``a`` and ``b``, or ``None``.

    The result carries ``rid=0``; callers that need provenance keep the
    input pair.  Used by the synchronized traversal (search-space
    restriction) and by multi-way joins, where the output of one join is
    the stream of intersection rectangles fed to the next.
    """
    xlo = a.xlo if a.xlo >= b.xlo else b.xlo
    xhi = a.xhi if a.xhi <= b.xhi else b.xhi
    ylo = a.ylo if a.ylo >= b.ylo else b.ylo
    yhi = a.yhi if a.yhi <= b.yhi else b.yhi
    if xlo > xhi or ylo > yhi:
        return None
    return Rect(xlo, xhi, ylo, yhi, 0)


def union_mbr(a: Rect, b: Rect) -> Rect:
    """Smallest rectangle enclosing both ``a`` and ``b`` (rid dropped)."""
    return Rect(
        a.xlo if a.xlo <= b.xlo else b.xlo,
        a.xhi if a.xhi >= b.xhi else b.xhi,
        a.ylo if a.ylo <= b.ylo else b.ylo,
        a.yhi if a.yhi >= b.yhi else b.yhi,
        0,
    )


def mbr_of(rects: Iterable[Rect]) -> Rect:
    """MBR of a non-empty collection of rectangles.

    Raises ``ValueError`` on empty input: an "empty MBR" has no sensible
    coordinates and silently inventing one hides bugs in node packing.
    """
    it = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("mbr_of() requires at least one rectangle")
    xlo, xhi, ylo, yhi = first.xlo, first.xhi, first.ylo, first.yhi
    for r in it:
        if r.xlo < xlo:
            xlo = r.xlo
        if r.xhi > xhi:
            xhi = r.xhi
        if r.ylo < ylo:
            ylo = r.ylo
        if r.yhi > yhi:
            yhi = r.yhi
    return Rect(xlo, xhi, ylo, yhi, 0)


def area(r: Rect) -> float:
    """Area of ``r``; degenerate rectangles have area 0."""
    w = r.xhi - r.xlo
    h = r.yhi - r.ylo
    if w < 0 or h < 0:
        return 0.0
    return w * h


def margin(r: Rect) -> float:
    """Half-perimeter of ``r`` (used by node-split quality metrics)."""
    return (r.xhi - r.xlo) + (r.yhi - r.ylo)


def enlargement(node_mbr: Rect, r: Rect) -> float:
    """Area increase of ``node_mbr`` if it were extended to cover ``r``.

    This is Guttman's ChooseLeaf criterion and also the bulk loader's
    "+20% area" admission test.
    """
    return area(union_mbr(node_mbr, r)) - area(node_mbr)


def reference_point(a: Rect, b: Rect) -> tuple:
    """Lower-left corner of the intersection of ``a`` and ``b``.

    PBSM replicates rectangles into every tile they overlap, so a pair
    may be discovered in several partitions.  The standard fix (used by
    our PBSM and by Striped-Sweep's multi-strip dedup) is to report the
    pair only where its *reference point* falls.  The caller must ensure
    ``a`` and ``b`` actually intersect.
    """
    return (
        a.xlo if a.xlo >= b.xlo else b.xlo,
        a.ylo if a.ylo >= b.ylo else b.ylo,
    )


def contains(outer: Rect, inner: Rect) -> bool:
    """True when ``outer`` fully contains ``inner`` (closed intervals)."""
    return (
        outer.xlo <= inner.xlo
        and inner.xhi <= outer.xhi
        and outer.ylo <= inner.ylo
        and inner.yhi <= outer.yhi
    )
