"""The six named datasets of Table 2, scaled.

Paper cardinalities (TIGER/Line 97 road and hydro MBRs):

=========  ==========  =========  ===========
Dataset    Roads       Hydro      Output pairs
=========  ==========  =========  ===========
NJ            414,442     50,853      130,756
NY            870,412    156,567      421,110
DISK1       6,030,844  1,161,906    3,197,520
DISK4-6    11,888,474  3,446,094    8,554,133
DISK1-3    17,199,848  3,967,649    9,378,642
DISK1-6    29,088,173  7,413,353   17,938,533
=========  ==========  =========  ===========

Each dataset occupies a geographic region (NJ and NY are states, the
DISK sets are groups of states); region extents below are rough
longitude/latitude boxes so that localized-join experiments ("Minnesota
hydro x US roads", Section 6.3) have real geometry to work with.

``build_dataset`` scales the cardinalities by the active
:class:`~repro.sim.scale.ScaleConfig` and memoizes the result, since
benchmarks use the same datasets repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.tiger import make_hydro, make_roads
from repro.geom.rect import RECT_BYTES, Rect, mbr_of, union_mbr
from repro.sim.scale import DEFAULT_SCALE, ScaleConfig


def _f32_rect(xlo: float, xhi: float, ylo: float, yhi: float) -> Rect:
    """Region with float32-exact bounds.

    Generators clip coordinates into the region before rounding them to
    float32; because float32 rounding is monotone, coordinates stay
    inside the region only if the region bounds are themselves float32
    values.
    """
    f = np.float32
    return Rect(float(f(xlo)), float(f(xhi)), float(f(ylo)),
                float(f(yhi)), 0)


#: Rough bounding box of the continental US (lon/lat degrees).
US_UNIVERSE = _f32_rect(-125.0, -66.0, 24.0, 50.0)


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table 2 dataset."""

    name: str
    paper_roads: int
    paper_hydro: int
    paper_output: int
    region: Rect
    seed: int

    @property
    def paper_road_bytes(self) -> int:
        return self.paper_roads * RECT_BYTES

    @property
    def paper_hydro_bytes(self) -> int:
        return self.paper_hydro * RECT_BYTES


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "NJ": DatasetSpec(
        "NJ", 414_442, 50_853, 130_756,
        _f32_rect(-75.6, -73.9, 38.9, 41.4), seed=101,
    ),
    "NY": DatasetSpec(
        "NY", 870_412, 156_567, 421_110,
        _f32_rect(-79.8, -71.8, 40.5, 45.0), seed=102,
    ),
    "DISK1": DatasetSpec(
        "DISK1", 6_030_844, 1_161_906, 3_197_520,
        _f32_rect(-83.0, -66.0, 33.0, 48.0), seed=103,
    ),
    "DISK4-6": DatasetSpec(
        "DISK4-6", 11_888_474, 3_446_094, 8_554_133,
        _f32_rect(-125.0, -98.0, 24.0, 50.0), seed=104,
    ),
    "DISK1-3": DatasetSpec(
        "DISK1-3", 17_199_848, 3_967_649, 9_378_642,
        _f32_rect(-98.0, -66.0, 24.0, 50.0), seed=105,
    ),
    "DISK1-6": DatasetSpec(
        "DISK1-6", 29_088_173, 7_413_353, 17_938_533,
        US_UNIVERSE, seed=106,
    ),
}

#: Table order used by every experiment report.
DATASET_ORDER: Tuple[str, ...] = (
    "NJ", "NY", "DISK1", "DISK4-6", "DISK1-3", "DISK1-6",
)


@dataclass
class Dataset:
    """Materialized (scaled) road and hydro rectangle sets."""

    spec: DatasetSpec
    scale: ScaleConfig
    roads: List[Rect]
    hydro: List[Rect]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def universe(self) -> Rect:
        return self.spec.region

    @property
    def road_bytes(self) -> int:
        return len(self.roads) * RECT_BYTES

    @property
    def hydro_bytes(self) -> int:
        return len(self.hydro) * RECT_BYTES

    def data_mbr(self) -> Rect:
        return union_mbr(mbr_of(self.roads), mbr_of(self.hydro))


_CACHE: Dict[Tuple[str, int], Dataset] = {}


def build_dataset(name: str,
                  scale: ScaleConfig = DEFAULT_SCALE) -> Dataset:
    """Materialize (and memoize) one named dataset at ``scale``."""
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        known = ", ".join(DATASET_ORDER)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    cache_key = (name, scale.scale)
    cached = _CACHE.get(cache_key)
    if cached is not None:
        return cached
    n_roads = scale.scaled_count(spec.paper_roads)
    n_hydro = scale.scaled_count(spec.paper_hydro)
    ds = Dataset(
        spec=spec,
        scale=scale,
        roads=make_roads(n_roads, spec.region, seed=spec.seed,
                         layout_seed=spec.seed),
        hydro=make_hydro(n_hydro, spec.region, seed=spec.seed + 5000,
                         layout_seed=spec.seed),
    )
    _CACHE[cache_key] = ds
    return ds


def clear_cache() -> None:
    """Drop memoized datasets (tests that tweak generators use this)."""
    _CACHE.clear()
