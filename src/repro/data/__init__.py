"""Workload generation: TIGER-like data and the Table 2 datasets.

The paper joins road features against hydrographic features extracted
from the TIGER/Line 97 census CDs.  The raw CDs are unavailable, so
:mod:`repro.data.tiger` synthesizes data with the statistical properties
the algorithms actually see: road MBRs are numerous, tiny and elongated,
clustered around population centers; hydro MBRs are ~4-7x fewer, larger,
and follow meandering river paths plus lake blobs.  The six named
datasets (NJ ... DISK1-6) keep the paper's cardinality ratios under the
active scale factor.  Everything is deterministic given the seed.
"""

from repro.data.generator import (
    uniform_rects,
    clustered_rects,
    stabbing_rects,
    grid_rects,
)
from repro.data.tiger import make_roads, make_hydro, make_landuse
from repro.data.datasets import (
    DatasetSpec,
    Dataset,
    DATASET_SPECS,
    DATASET_ORDER,
    build_dataset,
    US_UNIVERSE,
)

__all__ = [
    "uniform_rects",
    "clustered_rects",
    "stabbing_rects",
    "grid_rects",
    "make_roads",
    "make_hydro",
    "make_landuse",
    "DatasetSpec",
    "Dataset",
    "DATASET_SPECS",
    "DATASET_ORDER",
    "build_dataset",
    "US_UNIVERSE",
]
