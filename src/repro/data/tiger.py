"""TIGER/Line-like synthetic road and hydrography features.

The TIGER/Line 97 CDs are not available offline, so we synthesize MBR
sets with the properties that drive the paper's measurements:

* **Roads** — the large relation.  Real TIGER road records are chain
  segments: tiny, elongated MBRs, dense around population centers with
  a rural background grid.  We draw segment centers from a mixture of
  Gaussian city clusters and a uniform background, lengths from a
  lognormal, and orientations biased toward axis-parallel (street
  grids).  Feature extents scale as ``sqrt(area / n)``: at the paper's
  full cardinalities this gives realistic segment lengths (a few
  hundred meters in NJ), and under down-scaling it keeps the join
  selectivity (output pairs / road count, 0.3-0.6 in Table 2) and the
  square-root rule invariant, because a sweep-line then cuts
  Theta(sqrt(N)) rectangles at any scale.
* **Hydro** — the small relation (the paper's ratio is roughly 4-8x
  fewer objects).  Rivers are correlated random walks emitting a chain
  of consecutive segment MBRs; lakes are rounder blobs clustered like
  the terrain.  River walks start near city clusters (cities grow on
  rivers), which keeps road x hydro selectivity in the paper's range
  (output pairs ~ 0.3-0.6 of the road count).
* **Landuse** — a third relation for multi-way join experiments:
  medium-sized polygon MBRs around the same city centers.

Properties the tests verify: the square-root rule (the number of
rectangles cut by any horizontal sweep-line stays O(sqrt(N)), the
observation of Gueting & Schilling the paper cites), the cardinality
ratios, and float32-exactness of all coordinates.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.data.generator import _to_rects
from repro.geom.rect import Rect


def city_layout(region: Rect, layout_seed: int,
                n_cities: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared settlement layout for all relations of one dataset.

    Roads, hydro and landuse of the same dataset must cluster around
    the *same* population centers (cities grow on rivers); deriving the
    layout from a single seed makes their spatial correlation — and
    hence the join selectivity — a property of the generator instead of
    an accident of independent random draws.
    """
    rng = np.random.default_rng(10_000_019 * (layout_seed + 1))
    cx = rng.uniform(region.xlo, region.xhi, n_cities)
    cy = rng.uniform(region.ylo, region.yhi, n_cities)
    weights = rng.dirichlet(np.ones(n_cities) * 0.8)
    return cx, cy, weights


def _n_cities(n_roads_scale: int) -> int:
    """Settlement count grows with the square root of the feature count."""
    return max(4, int(np.sqrt(n_roads_scale) / 2))


def make_roads(n: int, region: Rect, seed: int = 1,
               id_base: int = 0, layout_seed: int = None) -> List[Rect]:
    """``n`` road-segment MBRs inside ``region``."""
    if n <= 0:
        return []
    rng = np.random.default_rng(seed)
    span_x = region.xhi - region.xlo
    span_y = region.yhi - region.ylo
    if layout_seed is None:
        layout_seed = seed
    cx, cy, weights = city_layout(region, layout_seed, _n_cities(n))
    n_cities = len(cx)

    frac_urban = 0.7
    n_urban = int(n * frac_urban)
    n_rural = n - n_urban

    assign = rng.choice(n_cities, size=n_urban, p=weights)
    sigma = 0.035
    ux = cx[assign] + rng.normal(0.0, sigma * span_x, n_urban)
    uy = cy[assign] + rng.normal(0.0, sigma * span_y, n_urban)
    rx = rng.uniform(region.xlo, region.xhi, n_rural)
    ry = rng.uniform(region.ylo, region.yhi, n_rural)
    px = np.concatenate([ux, rx])
    py = np.concatenate([uy, ry])

    # Segment lengths: lognormal around the sqrt(area/n) scale that
    # keeps selectivity and the square-root rule scale-invariant.
    base_len = 0.55 * np.sqrt(span_x * span_y / n)
    length = rng.lognormal(np.log(base_len), 0.6, n)
    # Orientation: half axis-parallel (street grids), half free.
    angle = rng.uniform(0.0, np.pi, n)
    snap = rng.random(n) < 0.5
    angle[snap] = np.round(angle[snap] / (np.pi / 2)) * (np.pi / 2)
    dx = np.abs(np.cos(angle)) * length
    dy = np.abs(np.sin(angle)) * length

    xlo = np.clip(px - dx / 2, region.xlo, region.xhi)
    xhi = np.clip(px + dx / 2, region.xlo, region.xhi)
    ylo = np.clip(py - dy / 2, region.ylo, region.yhi)
    yhi = np.clip(py + dy / 2, region.ylo, region.yhi)
    return _to_rects(xlo, xhi, ylo, yhi, id_base)


def make_hydro(n: int, region: Rect, seed: int = 2,
               id_base: int = 0, layout_seed: int = None) -> List[Rect]:
    """``n`` hydrography MBRs: river segment chains plus lake blobs."""
    if n <= 0:
        return []
    rng = np.random.default_rng(seed)
    span_x = region.xhi - region.xlo
    span_y = region.yhi - region.ylo
    # Same settlement layout as the dataset's roads (n_hydro ~ n_roads/6).
    if layout_seed is None:
        layout_seed = seed
    cx, cy, weights = city_layout(region, layout_seed, _n_cities(n * 6))
    n_cities = len(cx)

    n_river = int(n * 0.65)
    n_lake = n - n_river

    # Rivers: correlated random walks that start near a city.
    segs_per_river = 40
    step = 0.6 * np.sqrt(span_x * span_y / max(n, 1))
    xs = np.empty(n_river)
    ys = np.empty(n_river)
    xe = np.empty(n_river)
    ye = np.empty(n_river)
    k = 0
    while k < n_river:
        city = rng.choice(n_cities, p=weights)
        x = float(np.clip(cx[city] + rng.normal(0.0, 0.02 * span_x),
                          region.xlo, region.xhi))
        y = float(np.clip(cy[city] + rng.normal(0.0, 0.02 * span_y),
                          region.ylo, region.yhi))
        heading = rng.uniform(0.0, 2 * np.pi)
        remaining = min(segs_per_river, n_river - k)
        for _ in range(remaining):
            heading += rng.normal(0.0, 0.5)
            nx = x + np.cos(heading) * step * rng.lognormal(0.0, 0.4)
            ny = y + np.sin(heading) * step * rng.lognormal(0.0, 0.4)
            nx = float(np.clip(nx, region.xlo, region.xhi))
            ny = float(np.clip(ny, region.ylo, region.yhi))
            xs[k], xe[k] = min(x, nx), max(x, nx)
            ys[k], ye[k] = min(y, ny), max(y, ny)
            x, y = nx, ny
            k += 1
    xs, xe, ys, ye = xs[:k], xe[:k], ys[:k], ye[:k]
    rivers = _to_rects(xs, xe, ys, ye, id_base)

    # Lakes: rounder, larger blobs with the city-cluster skew.
    assign = rng.choice(n_cities, size=n_lake, p=weights)
    lx = cx[assign] + rng.normal(0.0, 0.06 * span_x, n_lake)
    ly = cy[assign] + rng.normal(0.0, 0.06 * span_y, n_lake)
    size = rng.lognormal(
        np.log(0.5 * np.sqrt(span_x * span_y / max(n, 1))), 0.8, n_lake
    )
    aspect = rng.lognormal(0.0, 0.3, n_lake)
    w = size * aspect
    h = size / aspect
    xlo = np.clip(lx - w / 2, region.xlo, region.xhi)
    xhi = np.clip(lx + w / 2, region.xlo, region.xhi)
    ylo = np.clip(ly - h / 2, region.ylo, region.yhi)
    yhi = np.clip(ly + h / 2, region.ylo, region.yhi)
    lakes = _to_rects(xlo, xhi, ylo, yhi, id_base + len(rivers))
    return rivers + lakes


def make_landuse(n: int, region: Rect, seed: int = 3,
                 id_base: int = 0, layout_seed: int = None) -> List[Rect]:
    """``n`` landuse-parcel MBRs (third relation for multi-way joins)."""
    if n <= 0:
        return []
    rng = np.random.default_rng(seed)
    span_x = region.xhi - region.xlo
    span_y = region.yhi - region.ylo
    if layout_seed is None:
        layout_seed = seed
    cx, cy, weights = city_layout(region, layout_seed, _n_cities(n * 3))
    n_cities = len(cx)
    assign = rng.choice(n_cities, size=n, p=weights)
    px = cx[assign] + rng.normal(0.0, 0.05 * span_x, n)
    py = cy[assign] + rng.normal(0.0, 0.05 * span_y, n)
    size = rng.lognormal(
        np.log(2.5 * np.sqrt(span_x * span_y / max(n, 1))), 0.7, n
    )
    aspect = rng.lognormal(0.0, 0.25, n)
    w = size * aspect
    h = size / aspect
    xlo = np.clip(px - w / 2, region.xlo, region.xhi)
    xhi = np.clip(px + w / 2, region.xlo, region.xhi)
    ylo = np.clip(py - h / 2, region.ylo, region.yhi)
    yhi = np.clip(py + h / 2, region.ylo, region.yhi)
    return _to_rects(xlo, xhi, ylo, yhi, id_base)
