"""Generic synthetic rectangle generators.

These are the building blocks the TIGER-like generator composes, and
they double as test workloads: uniform and clustered sets for
correctness checks, ``stabbing_rects`` as the adversarial input that
defeats plain plane-sweeping (it forces SSSJ's partitioning fallback),
and ``grid_rects`` for exactly predictable join counts.

All coordinates are rounded to float32 so that in-memory rectangles and
their serialized 16-byte form are identical (see :mod:`repro.geom.rect`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geom.rect import Rect


def _f32(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float32).astype(np.float64)


def _to_rects(xlo, xhi, ylo, yhi, id_base: int = 0) -> List[Rect]:
    xlo, xhi = _f32(xlo), _f32(xhi)
    ylo, yhi = _f32(ylo), _f32(yhi)
    return [
        Rect(float(a), float(b), float(c), float(d), id_base + i)
        for i, (a, b, c, d) in enumerate(zip(xlo, xhi, ylo, yhi))
    ]


def uniform_rects(
    n: int,
    universe: Rect,
    avg_width: float,
    avg_height: Optional[float] = None,
    seed: int = 0,
    id_base: int = 0,
) -> List[Rect]:
    """``n`` rectangles with exponential extents, centers uniform."""
    if avg_height is None:
        avg_height = avg_width
    rng = np.random.default_rng(seed)
    w = rng.exponential(avg_width, n)
    h = rng.exponential(avg_height, n)
    cx = rng.uniform(universe.xlo, universe.xhi, n)
    cy = rng.uniform(universe.ylo, universe.yhi, n)
    xlo = np.clip(cx - w / 2, universe.xlo, universe.xhi)
    xhi = np.clip(cx + w / 2, universe.xlo, universe.xhi)
    ylo = np.clip(cy - h / 2, universe.ylo, universe.yhi)
    yhi = np.clip(cy + h / 2, universe.ylo, universe.yhi)
    return _to_rects(xlo, xhi, ylo, yhi, id_base)


def clustered_rects(
    n: int,
    universe: Rect,
    avg_width: float,
    n_clusters: int = 10,
    spread: float = 0.05,
    seed: int = 0,
    id_base: int = 0,
) -> List[Rect]:
    """Rectangles around Gaussian cluster centers (a city-like skew)."""
    rng = np.random.default_rng(seed)
    span_x = universe.xhi - universe.xlo
    span_y = universe.yhi - universe.ylo
    centers_x = rng.uniform(universe.xlo, universe.xhi, n_clusters)
    centers_y = rng.uniform(universe.ylo, universe.yhi, n_clusters)
    weights = rng.dirichlet(np.ones(n_clusters) * 1.5)
    assign = rng.choice(n_clusters, size=n, p=weights)
    cx = centers_x[assign] + rng.normal(0.0, spread * span_x, n)
    cy = centers_y[assign] + rng.normal(0.0, spread * span_y, n)
    w = rng.exponential(avg_width, n)
    h = rng.exponential(avg_width, n)
    xlo = np.clip(cx - w / 2, universe.xlo, universe.xhi)
    xhi = np.clip(cx + w / 2, universe.xlo, universe.xhi)
    ylo = np.clip(cy - h / 2, universe.ylo, universe.yhi)
    yhi = np.clip(cy + h / 2, universe.ylo, universe.yhi)
    return _to_rects(xlo, xhi, ylo, yhi, id_base)


def stabbing_rects(
    n: int,
    universe: Rect,
    seed: int = 0,
    id_base: int = 0,
) -> List[Rect]:
    """Adversarial input: every rectangle crosses the universe's mid-height.

    All ``n`` rectangles are simultaneously active when the sweep-line
    passes the middle, so any in-memory interval structure holds the
    entire input — the worst case that SSSJ's partitioning fallback
    exists for.  X-extents are narrow and spread out, so partitioning
    along x actually helps (the paper's fallback assumes as much).
    """
    rng = np.random.default_rng(seed)
    mid = (universe.ylo + universe.yhi) / 2.0
    span_y = universe.yhi - universe.ylo
    span_x = universe.xhi - universe.xlo
    cx = rng.uniform(universe.xlo, universe.xhi, n)
    w = rng.exponential(span_x / max(n, 1) * 4.0, n)
    ylo = np.clip(mid - rng.uniform(0.05, 0.5, n) * span_y, universe.ylo, None)
    yhi = np.clip(mid + rng.uniform(0.05, 0.5, n) * span_y, None, universe.yhi)
    xlo = np.clip(cx - w / 2, universe.xlo, universe.xhi)
    xhi = np.clip(cx + w / 2, universe.xlo, universe.xhi)
    return _to_rects(xlo, xhi, ylo, yhi, id_base)


def grid_rects(
    per_side: int,
    universe: Rect,
    fill: float = 0.9,
    id_base: int = 0,
) -> List[Rect]:
    """A regular ``per_side x per_side`` grid of disjoint rectangles.

    With ``fill < 1`` neighbours do not touch, so joining the grid with
    itself yields exactly ``per_side**2`` pairs — handy for exactness
    tests.
    """
    xs = np.linspace(universe.xlo, universe.xhi, per_side + 1)
    ys = np.linspace(universe.ylo, universe.yhi, per_side + 1)
    rects = []
    i = 0
    for r in range(per_side):
        for c in range(per_side):
            w = (xs[c + 1] - xs[c]) * fill
            h = (ys[r + 1] - ys[r]) * fill
            rects.append(
                Rect(
                    float(np.float32(xs[c])),
                    float(np.float32(xs[c] + w)),
                    float(np.float32(ys[r])),
                    float(np.float32(ys[r] + h)),
                    id_base + i,
                )
            )
            i += 1
    return rects
