"""Hilbert-packed bulk loading (Section 3.3's index construction).

The paper bulk-loads all experiment R-trees with the Hilbert heuristic
of Kamel & Faloutsos [17], tempered by DeWitt et al.'s advice [10] not
to pack nodes full: each node is filled to 75% of capacity, then further
rectangles are admitted only while they do not grow the area already
covered by the node by more than 20%.  On TIGER data this lands at an
average packing ratio around 90% (we assert the same range in tests).

Construction is bottom-up and allocation-order-sequential: all leaves
are written left-to-right in Hilbert order, then each upper level in
order, so "all children of a node are allocated sequentially" —
the layout property Section 6.2 identifies as the source of ST's
sequential-I/O advantage on bulk-loaded trees.

Costs: the center-key sort charges ``n log2 n`` (bulk loading
"essentially consists of external sorting", Section 6.3); every node
write charges one page write; the paper's Table 2 scratch-space remark
(unsorted + sorted copy + index = a bit over 3x the data) holds here
too, which a test verifies against ``disk.allocated_bytes``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geom.rect import Rect, area, mbr_of, union_mbr
from repro.rtree.hilbert import DEFAULT_ORDER, hilbert_keys
from repro.rtree.node import LEAF_LEVEL, Node, node_capacity
from repro.rtree.rtree import RTree
from repro.storage.pages import PageStore
from repro.storage.stream import Stream


@dataclass(frozen=True)
class BulkLoadConfig:
    """Packing knobs (defaults are the paper's choices)."""

    fill_factor: float = 0.75
    area_slack: float = 0.20
    hilbert_order: int = DEFAULT_ORDER

    def target_fill(self, capacity: int) -> int:
        target = int(capacity * self.fill_factor)
        return max(2, min(capacity, target))


DEFAULT_CONFIG = BulkLoadConfig()

#: A config that packs nodes to 100% — the "too much overlap" strawman
#: of DeWitt et al. that the index-quality ablation compares against.
FULL_PACK_CONFIG = BulkLoadConfig(fill_factor=1.0, area_slack=0.0)


def bulk_load(
    store: PageStore,
    rects: Sequence[Rect],
    config: BulkLoadConfig = DEFAULT_CONFIG,
    name: str = "rtree",
    charge_sort: bool = True,
) -> RTree:
    """Pack ``rects`` into a new R-tree on ``store``.

    The input sequence is not modified.  Raises ``ValueError`` on empty
    input: an empty index has no root MBR and the join algorithms treat
    "no index" explicitly instead.
    """
    if not rects:
        raise ValueError("cannot bulk load an empty rectangle set")
    env = store.disk.env
    capacity = node_capacity(store.page_bytes)

    ordered = _hilbert_order(rects, config, env, charge_sort)

    pages_per_level: List[List[int]] = []
    level = LEAF_LEVEL
    entries: Sequence[Rect] = ordered
    num_objects = len(ordered)
    while True:
        groups = _pack_level(entries, capacity, config)
        page_ids = store.allocate_many(len(groups))
        parent_entries: List[Rect] = []
        for page_id, group in zip(page_ids, groups):
            node = Node(page_id, level, list(group))
            store.write(page_id, node)
            g_mbr = mbr_of(group)
            parent_entries.append(
                Rect(g_mbr.xlo, g_mbr.xhi, g_mbr.ylo, g_mbr.yhi, page_id)
            )
        pages_per_level.append(page_ids)
        env.charge("bulk_load", len(entries))
        if len(groups) == 1:
            root_page_id = page_ids[0]
            break
        entries = parent_entries
        level += 1

    return RTree(
        store,
        root_page_id=root_page_id,
        height=level + 1,
        num_objects=num_objects,
        pages_per_level=pages_per_level,
        name=name,
    )


def bulk_load_stream(
    store: PageStore,
    stream: Stream,
    config: BulkLoadConfig = DEFAULT_CONFIG,
    name: str = "rtree",
) -> RTree:
    """Bulk load from a closed stream, charging its sequential scan."""
    rects = list(stream.scan())
    return bulk_load(store, rects, config=config, name=name)


# -- internals -------------------------------------------------------------


def _hilbert_order(
    rects: Sequence[Rect],
    config: BulkLoadConfig,
    env,
    charge_sort: bool,
) -> List[Rect]:
    box = mbr_of(rects)
    centers = [
        ((r.xlo + r.xhi) * 0.5, (r.ylo + r.yhi) * 0.5) for r in rects
    ]
    keys = hilbert_keys(
        centers, box.xlo, box.ylo, box.xhi, box.yhi, config.hilbert_order
    )
    n = len(rects)
    if charge_sort and n > 1:
        env.charge("sort", int(n * math.log2(n)))
    order = sorted(range(n), key=lambda i: (keys[i], rects[i].rid))
    return [rects[i] for i in order]


def _pack_level(
    entries: Sequence[Rect],
    capacity: int,
    config: BulkLoadConfig,
) -> List[List[Rect]]:
    """Cut an ordered entry list into node groups using the fill heuristic."""
    target = config.target_fill(capacity)
    groups: List[List[Rect]] = []
    i = 0
    n = len(entries)
    while i < n:
        take = min(target, n - i)
        group = list(entries[i : i + take])
        i += take
        if take == target and i < n:
            # Admission phase: keep adding while the node MBR grows by
            # at most `area_slack` relative to its area at target fill.
            base = mbr_of(group)
            base_area = area(base)
            budget = base_area * (1.0 + config.area_slack)
            grown = base
            while i < n and len(group) < capacity:
                candidate = union_mbr(grown, entries[i])
                cand_area = area(candidate)
                if base_area > 0.0 and cand_area > budget:
                    break
                if base_area == 0.0 and cand_area > 0.0:
                    break
                group.append(entries[i])
                grown = candidate
                i += 1
        groups.append(group)
    return groups
