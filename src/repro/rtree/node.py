"""R-tree node layout.

A node occupies exactly one page.  Its serialized layout is an 8-byte
header (level, entry count as two little-endian int32) followed by
20-byte entries: four float32 coordinates plus a uint32 payload that is
an object id in leaves and a child page id in internal nodes — the
paper's Section 5.3 record format.  With the scaled 512-byte pages this
yields a fanout of 25; with the paper's 8 KB pages, 409 (the paper
rounded to 400).

In the simulator nodes travel as Python objects (byte-exact
serialization is exercised by :mod:`repro.rtree.persist`), but every
capacity decision uses the serialized size, so tree page counts and
megabytes are faithful.
"""

from __future__ import annotations

from typing import List

from repro.geom.rect import Rect, mbr_of

#: Bytes of node header: int32 level + int32 count.
NODE_HEADER_BYTES = 8
#: Bytes per entry: 4 x float32 + uint32 payload.
ENTRY_BYTES = 20

#: Leaf nodes live at level 0; a node's children live one level below it.
LEAF_LEVEL = 0


def node_capacity(page_bytes: int) -> int:
    """Maximum entries per node for a given page size."""
    cap = (page_bytes - NODE_HEADER_BYTES) // ENTRY_BYTES
    if cap < 2:
        raise ValueError(
            f"page size {page_bytes} cannot hold an R-tree node "
            f"(capacity {cap} < 2)"
        )
    return cap


class Node:
    """One R-tree node: a level tag plus a list of entry rectangles.

    ``entries[i].rid`` is an object identifier when ``level == 0`` and a
    child page id otherwise.
    """

    __slots__ = ("page_id", "level", "entries")

    def __init__(self, page_id: int, level: int,
                 entries: List[Rect]) -> None:
        self.page_id = page_id
        self.level = level
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.level == LEAF_LEVEL

    def __len__(self) -> int:
        return len(self.entries)

    def mbr(self) -> Rect:
        """Bounding rectangle of all entries."""
        return mbr_of(self.entries)

    def serialized_bytes(self) -> int:
        return NODE_HEADER_BYTES + len(self.entries) * ENTRY_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"level-{self.level}"
        return f"<Node page={self.page_id} {kind} n={len(self.entries)}>"
