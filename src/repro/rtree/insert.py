"""Dynamic R-tree maintenance (Guttman inserts and deletes).

The paper's experiments run on bulk-loaded trees, but its Section 6.3 /
Section 7 discussion — ST "benefits from the layout produced by a good
bulk-loading algorithm, and its performance may degrade if the R-tree is
updated frequently after bulk loading" — needs an update-degraded tree
to compare against.  :class:`RTreeBuilder` provides one: classic
Guttman ChooseLeaf (least area enlargement) plus the quadratic split,
with a 40% minimum fill, and the matching delete (FindLeaf +
CondenseTree with orphan reinsertion).  Trees maintained this way have
lower packing ratios (~70%) and, because split pages are allocated at
the end of the store, siblings scattered across the disk — exactly the
two degradations the index-quality ablation measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.geom.rect import Rect, area, enlargement, mbr_of, union_mbr
from repro.rtree.node import LEAF_LEVEL, Node, node_capacity
from repro.rtree.rtree import RTree
from repro.storage.pages import PageStore

#: Guttman's m: a split leaves at least this fraction of capacity per node.
MIN_FILL_FRACTION = 0.4


class RTreeBuilder:
    """Builds an R-tree by repeated insertion; call :meth:`finish` when done."""

    def __init__(self, store: PageStore, name: str = "rtree-dyn") -> None:
        self.store = store
        self.name = name
        self.capacity = node_capacity(store.page_bytes)
        self.min_fill = max(1, int(self.capacity * MIN_FILL_FRACTION))
        root_id = store.allocate()
        self._root = Node(root_id, LEAF_LEVEL, [])
        store.write(root_id, self._root)
        self._height = 1
        self._level_pages: Dict[int, Set[int]] = {LEAF_LEVEL: {root_id}}
        self._num_objects = 0

    # -- public API -------------------------------------------------------

    def insert(self, rect: Rect) -> None:
        """Insert one data rectangle."""
        self._num_objects += 1
        split = self._insert_at(self._root, rect, LEAF_LEVEL)
        if split is not None:
            self._grow_root(split)

    def extend(self, rects) -> None:
        for r in rects:
            self.insert(r)

    def delete(self, rect: Rect) -> bool:
        """Remove one data rectangle (matched by coordinates and id).

        Returns ``True`` if found.  Underflowing nodes are dissolved
        and their surviving entries reinserted (Guttman CondenseTree);
        an internal root with a single child is collapsed.
        """
        path = self._find_leaf(self._root, rect, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries.remove(rect)
        self.store.write(leaf.page_id, leaf)
        self._num_objects -= 1
        self._condense(path)
        self._shrink_root()
        return True

    def finish(self) -> RTree:
        """Freeze the structure into an immutable :class:`RTree` handle."""
        if self._num_objects == 0:
            raise ValueError("cannot finish an empty R-tree")
        pages_per_level = [
            sorted(self._level_pages.get(lvl, ()))
            for lvl in range(self._height)
        ]
        return RTree(
            self.store,
            root_page_id=self._root.page_id,
            height=self._height,
            num_objects=self._num_objects,
            pages_per_level=pages_per_level,
            name=self.name,
        )

    # -- insertion machinery ---------------------------------------------

    def _insert_at(self, node: Node, rect: Rect,
                   target_level: int) -> Optional[Rect]:
        """Recursively insert; return the new sibling's entry on split."""
        env = self.store.disk.env
        if node.level == target_level:
            node.entries.append(rect)
            self.store.write(node.page_id, node)
            if len(node.entries) > self.capacity:
                return self._split(node)
            return None

        idx = self._choose_subtree(node, rect)
        child_entry = node.entries[idx]
        child: Node = self.store.read(child_entry.rid)
        env.charge("insert", len(node.entries))
        split = self._insert_at(child, rect, target_level)

        child_mbr = child.mbr()
        node.entries[idx] = Rect(
            child_mbr.xlo, child_mbr.xhi, child_mbr.ylo, child_mbr.yhi,
            child_entry.rid,
        )
        if split is not None:
            node.entries.append(split)
        self.store.write(node.page_id, node)
        if len(node.entries) > self.capacity:
            return self._split(node)
        return None

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """Least enlargement, ties by smaller area (Guttman ChooseLeaf)."""
        best_idx = 0
        best_enl = float("inf")
        best_area = float("inf")
        for i, entry in enumerate(node.entries):
            enl = enlargement(entry, rect)
            a = area(entry)
            if enl < best_enl or (enl == best_enl and a < best_area):
                best_idx, best_enl, best_area = i, enl, a
        return best_idx

    def _split(self, node: Node) -> Rect:
        """Quadratic split of an overflowing node.

        ``node`` keeps one group in place; the other group moves to a
        freshly allocated page whose parent entry is returned.
        """
        entries = node.entries
        env = self.store.disk.env
        env.charge("insert", len(entries) * len(entries) // 2)
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a]
        mbr_b = entries[seed_b]
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while rest:
            # Force-assign when one group must absorb the remainder to
            # reach minimum fill.
            need_a = self.min_fill - len(group_a)
            need_b = self.min_fill - len(group_b)
            if need_a >= len(rest):
                group_a.extend(rest)
                mbr_a = mbr_of(group_a)
                break
            if need_b >= len(rest):
                group_b.extend(rest)
                mbr_b = mbr_of(group_b)
                break
            idx, to_a = self._pick_next(rest, mbr_a, mbr_b)
            e = rest.pop(idx)
            if to_a:
                group_a.append(e)
                mbr_a = union_mbr(mbr_a, e)
            else:
                group_b.append(e)
                mbr_b = union_mbr(mbr_b, e)

        node.entries = group_a
        self.store.write(node.page_id, node)
        new_page = self.store.allocate()
        sibling = Node(new_page, node.level, group_b)
        self.store.write(new_page, sibling)
        self._level_pages.setdefault(node.level, set()).add(new_page)
        g_mbr = mbr_of(group_b)
        return Rect(g_mbr.xlo, g_mbr.xhi, g_mbr.ylo, g_mbr.yhi, new_page)

    @staticmethod
    def _pick_seeds(entries: List[Rect]) -> Tuple[int, int]:
        """The pair wasting the most area if placed together."""
        worst = -1.0
        pair = (0, 1)
        for i in range(len(entries)):
            ai = area(entries[i])
            for j in range(i + 1, len(entries)):
                waste = (
                    area(union_mbr(entries[i], entries[j]))
                    - ai
                    - area(entries[j])
                )
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    @staticmethod
    def _pick_next(rest: List[Rect], mbr_a: Rect,
                   mbr_b: Rect) -> Tuple[int, bool]:
        """Entry with max preference difference, and its chosen group."""
        best_idx = 0
        best_diff = -1.0
        best_to_a = True
        for i, e in enumerate(rest):
            da = enlargement(mbr_a, e)
            db = enlargement(mbr_b, e)
            diff = abs(da - db)
            if diff > best_diff:
                best_diff = diff
                best_idx = i
                best_to_a = da < db or (da == db and area(mbr_a) < area(mbr_b))
        return best_idx, best_to_a

    # -- deletion machinery ------------------------------------------------

    def _find_leaf(self, node: Node, rect: Rect, path):
        """Root-to-leaf path of nodes whose leaf contains ``rect``."""
        path = path + [node]
        if node.is_leaf:
            return path if rect in node.entries else None
        for entry in node.entries:
            if (
                entry.xlo <= rect.xlo and rect.xhi <= entry.xhi
                and entry.ylo <= rect.ylo and rect.yhi <= entry.yhi
            ):
                child: Node = self.store.read(entry.rid)
                self.store.disk.env.charge("delete", len(node.entries))
                found = self._find_leaf(child, rect, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path) -> None:
        """Dissolve underflowing nodes bottom-up, reinserting orphans."""
        orphans = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            idx = next(
                i for i, e in enumerate(parent.entries)
                if e.rid == node.page_id
            )
            if len(node.entries) < self.min_fill:
                # Remove the node; queue its entries for reinsertion at
                # their original level.
                del parent.entries[idx]
                self._level_pages.get(node.level, set()).discard(
                    node.page_id
                )
                orphans.append((node.level, list(node.entries)))
            else:
                mbr = node.mbr()
                parent.entries[idx] = Rect(
                    mbr.xlo, mbr.xhi, mbr.ylo, mbr.yhi, node.page_id
                )
            self.store.write(parent.page_id, parent)
        for level, entries in orphans:
            for entry in entries:
                split = self._insert_at(self._root, entry, level)
                if split is not None:
                    self._grow_root(split)

    def _shrink_root(self) -> None:
        while (
            not self._root.is_leaf and len(self._root.entries) == 1
        ):
            old = self._root
            child: Node = self.store.read(old.entries[0].rid)
            self._level_pages.get(old.level, set()).discard(old.page_id)
            self._root = child
            self._height = child.level + 1

    def _grow_root(self, split_entry: Rect) -> None:
        """Root overflowed: create a new root one level up."""
        old_root = self._root
        old_mbr = old_root.mbr()
        new_root_page = self.store.allocate()
        new_level = old_root.level + 1
        new_root = Node(
            new_root_page,
            new_level,
            [
                Rect(old_mbr.xlo, old_mbr.xhi, old_mbr.ylo, old_mbr.yhi,
                     old_root.page_id),
                split_entry,
            ],
        )
        self.store.write(new_root_page, new_root)
        self._root = new_root
        self._height = new_level + 1
        self._level_pages.setdefault(new_level, set()).add(new_root_page)
