"""Byte-exact R-tree persistence to real files.

The simulator keeps node payloads as Python objects for speed, but a
credible index implementation must round-trip through its declared
20-byte on-disk record format (Section 5.3).  This module serializes a
tree to a real file — page-aligned, little-endian, float32 coordinates,
uint32 ids — and loads it back into a fresh page store, remapping page
ids.  Data generators round all coordinates to float32, so the
round-trip is exact; a test asserts node-for-node equality.

File layout::

    header:  magic 'RPQT', version u32, page_bytes u32, height u32,
             num_objects u64, root_page u32, page_count u32
    levels:  height x (page ids per level: count u32, ids u32...)
    pages:   page_count x page_bytes (level i32, count i32,
             entries: xlo f32, xhi f32, ylo f32, yhi f32, rid u32;
             zero padding to page_bytes)
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, List

from repro.geom.rect import Rect
from repro.rtree.node import ENTRY_BYTES, NODE_HEADER_BYTES, Node
from repro.rtree.rtree import RTree
from repro.storage.pages import PageStore

MAGIC = b"RPQT"
VERSION = 1
_HEADER = struct.Struct("<4sIIIQII")
_NODE_HEADER = struct.Struct("<ii")
_ENTRY = struct.Struct("<4fI")


def save_rtree(tree: RTree, path: str) -> None:
    """Serialize ``tree`` into ``path`` (uncharged: persistence is not
    part of any measured experiment)."""
    page_bytes = tree.store.page_bytes
    all_pages: List[int] = [
        pid for level in tree.pages_per_level for pid in level
    ]
    with open(path, "wb") as fh:
        fh.write(
            _HEADER.pack(
                MAGIC,
                VERSION,
                page_bytes,
                tree.height,
                tree.num_objects,
                tree.root_page_id,
                len(all_pages),
            )
        )
        for level in tree.pages_per_level:
            fh.write(struct.pack("<I", len(level)))
            fh.write(struct.pack(f"<{len(level)}I", *level))
        for pid in all_pages:
            node = tree.read_node_silent(pid)
            fh.write(_encode_node(node, page_bytes))


def load_rtree(store: PageStore, path: str, name: str = "rtree") -> RTree:
    """Load a serialized tree into ``store``, remapping page ids.

    The store's page size must match the file's.  Page writes are
    charged (loading an index is real I/O), but callers measuring joins
    reset the environment counters afterwards anyway.
    """
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        magic, version, page_bytes, height, num_objects, root_pid, n_pages = (
            _HEADER.unpack(header)
        )
        if magic != MAGIC:
            raise ValueError(f"{path}: not an R-tree file")
        if version != VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        if page_bytes != store.page_bytes:
            raise ValueError(
                f"{path}: file page size {page_bytes} != store page size "
                f"{store.page_bytes}"
            )
        levels: List[List[int]] = []
        for _ in range(height):
            (count,) = struct.unpack("<I", fh.read(4))
            ids = list(struct.unpack(f"<{count}I", fh.read(4 * count)))
            levels.append(ids)
        old_ids = [pid for level in levels for pid in level]
        if len(old_ids) != n_pages:
            raise ValueError(f"{path}: level table does not match page count")
        remap: Dict[int, int] = {old: store.allocate() for old in old_ids}
        nodes = []
        for old_pid in old_ids:
            node = _decode_node(fh, page_bytes, remap[old_pid])
            nodes.append(node)
        # Remap child pointers now that every page has a new id.
        for node in nodes:
            if not node.is_leaf:
                node.entries = [
                    Rect(e.xlo, e.xhi, e.ylo, e.yhi, remap[e.rid])
                    for e in node.entries
                ]
            store.write(node.page_id, node)
    return RTree(
        store,
        root_page_id=remap[root_pid],
        height=height,
        num_objects=num_objects,
        pages_per_level=[[remap[pid] for pid in lvl] for lvl in levels],
        name=name,
    )


def _encode_node(node: Node, page_bytes: int) -> bytes:
    parts = [_NODE_HEADER.pack(node.level, len(node.entries))]
    for e in node.entries:
        parts.append(_ENTRY.pack(e.xlo, e.xhi, e.ylo, e.yhi, e.rid))
    blob = b"".join(parts)
    if len(blob) > page_bytes:
        raise ValueError(
            f"node {node.page_id} needs {len(blob)} bytes > page "
            f"size {page_bytes}"
        )
    return blob + b"\0" * (page_bytes - len(blob))


def _decode_node(fh: BinaryIO, page_bytes: int, new_page_id: int) -> Node:
    blob = fh.read(page_bytes)
    if len(blob) != page_bytes:
        raise ValueError("truncated R-tree file")
    level, count = _NODE_HEADER.unpack_from(blob, 0)
    entries = []
    off = NODE_HEADER_BYTES
    for _ in range(count):
        xlo, xhi, ylo, yhi, rid = _ENTRY.unpack_from(blob, off)
        entries.append(Rect(xlo, xhi, ylo, yhi, rid))
        off += ENTRY_BYTES
    return Node(new_page_id, level, entries)
