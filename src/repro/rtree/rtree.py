"""The page-resident R-tree and its read paths.

An :class:`RTree` owns a set of page ids inside a shared
:class:`~repro.storage.pages.PageStore` (both join inputs live on the
same simulated disk, as they did on the paper's single-disk machines).
It knows its root page, its height, and the id list of every page per
level — the leaf-first id ordering is what the page-request accounting
of Table 4 and the layout effects of Figure 2 rest on.

Read paths:

* :meth:`read_node` — direct, charged read (PQ touches every page
  exactly once through this path);
* :meth:`read_node_via` — read through a caller-supplied LRU buffer
  pool (ST's path; hits cost no I/O);
* :meth:`read_node_silent` — uncharged, for validation and reporting.

Each charged node read also charges one ``decode`` CPU op per entry,
modelling the cost of unpacking the 20-byte records.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.geom.rect import Rect, intersects, mbr_of
from repro.rtree.node import LEAF_LEVEL, Node, node_capacity
from repro.storage.buffer_pool import BufferPool
from repro.storage.pages import PageStore


class RTree:
    """A bulk-loaded or incrementally built R-tree on a page store."""

    def __init__(
        self,
        store: PageStore,
        root_page_id: int,
        height: int,
        num_objects: int,
        pages_per_level: Sequence[Sequence[int]],
        name: str = "rtree",
    ) -> None:
        self.store = store
        self.root_page_id = root_page_id
        self.height = height
        self.num_objects = num_objects
        #: pages_per_level[0] are the leaves, the last entry is [root].
        self.pages_per_level: List[List[int]] = [
            list(level) for level in pages_per_level
        ]
        self.name = name

    # -- basic shape ----------------------------------------------------

    @property
    def capacity(self) -> int:
        return node_capacity(self.store.page_bytes)

    @property
    def page_count(self) -> int:
        """Total pages of this index — its Table 4 "lower bound" share."""
        return sum(len(level) for level in self.pages_per_level)

    @property
    def leaf_page_ids(self) -> List[int]:
        return self.pages_per_level[0]

    @property
    def leaf_page_count(self) -> int:
        return len(self.pages_per_level[0])

    @property
    def index_bytes(self) -> int:
        """On-disk size of the index (Table 2's "R-tree" rows)."""
        return self.page_count * self.store.page_bytes

    def root_mbr(self) -> Rect:
        return self.read_node_silent(self.root_page_id).mbr()

    # -- read paths -------------------------------------------------------

    def read_node(self, page_id: int) -> Node:
        """Charged read of one node page."""
        node: Node = self.store.read(page_id)
        self.store.disk.env.charge("decode", len(node.entries))
        return node

    def read_node_via(self, pool: BufferPool, page_id: int) -> Node:
        """Read through an LRU pool; only misses reach the disk."""
        node: Node = pool.request(page_id)
        self.store.disk.env.charge("decode", len(node.entries))
        return node

    def read_node_silent(self, page_id: int) -> Node:
        return self.store.read_silent(page_id)

    # -- queries ------------------------------------------------------------

    def query(self, window: Rect) -> Iterator[Rect]:
        """All data rectangles intersecting ``window`` (charged DFS)."""
        stack = [self.root_page_id]
        env = self.store.disk.env
        while stack:
            node = self.read_node(stack.pop())
            env.charge("query", len(node.entries))
            if node.is_leaf:
                for entry in node.entries:
                    if intersects(entry, window):
                        yield entry
            else:
                for entry in node.entries:
                    if intersects(entry, window):
                        stack.append(entry.rid)

    def iter_all(self) -> Iterator[Rect]:
        """Every data rectangle, uncharged (test/reporting helper)."""
        for page_id in self.pages_per_level[0]:
            node = self.read_node_silent(page_id)
            yield from node.entries

    # -- statistics -----------------------------------------------------------

    def packing_ratio(self) -> float:
        """Average node occupancy relative to capacity (paper: ~90%)."""
        nodes = 0
        entries = 0
        for level in self.pages_per_level:
            for page_id in level:
                node = self.read_node_silent(page_id)
                nodes += 1
                entries += len(node.entries)
        if nodes == 0:
            return 0.0
        return entries / (nodes * self.capacity)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "objects": self.num_objects,
            "height": self.height,
            "pages": self.page_count,
            "leaf_pages": self.leaf_page_count,
            "index_bytes": self.index_bytes,
            "packing_ratio": self.packing_ratio(),
        }

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raise ``AssertionError`` if broken.

        * levels descend by exactly one from root to leaves;
        * every internal entry's rectangle equals its child's MBR;
        * no node exceeds capacity; only the root may hold < 2 entries;
        * the number of reachable data rectangles equals ``num_objects``;
        * the per-level page id lists match the reachable structure.
        """
        cap = self.capacity
        seen_objects = 0
        level_pages = {i: set() for i in range(self.height)}
        root = self.read_node_silent(self.root_page_id)
        assert root.level == self.height - 1, (
            f"root level {root.level} != height-1 {self.height - 1}"
        )
        stack = [(self.root_page_id, root.level)]
        while stack:
            page_id, expect_level = stack.pop()
            node = self.read_node_silent(page_id)
            assert node.level == expect_level, (
                f"page {page_id}: level {node.level}, expected {expect_level}"
            )
            assert len(node.entries) <= cap, (
                f"page {page_id}: {len(node.entries)} entries > capacity {cap}"
            )
            if page_id != self.root_page_id:
                assert len(node.entries) >= 1, f"page {page_id} is empty"
            level_pages[node.level].add(page_id)
            if node.is_leaf:
                seen_objects += len(node.entries)
                continue
            for entry in node.entries:
                child = self.read_node_silent(entry.rid)
                child_mbr = child.mbr()
                assert (
                    entry.xlo == child_mbr.xlo
                    and entry.xhi == child_mbr.xhi
                    and entry.ylo == child_mbr.ylo
                    and entry.yhi == child_mbr.yhi
                ), (
                    f"page {page_id}: entry MBR {entry} != child MBR "
                    f"{child_mbr} (child page {entry.rid})"
                )
                stack.append((entry.rid, node.level - 1))
        assert seen_objects == self.num_objects, (
            f"reachable objects {seen_objects} != recorded {self.num_objects}"
        )
        for lvl in range(self.height):
            recorded = set(self.pages_per_level[lvl])
            assert recorded == level_pages[lvl], (
                f"level {lvl}: recorded pages != reachable pages"
            )
