"""R*-tree insertion (Beckmann, Kriegel, Schneider & Seeger [7]).

The paper's index-based joins run over "a spatial index structure
(e.g., an R-tree or R*-tree)".  This module provides the R*-tree's
insertion algorithm as a drop-in alternative to the Guttman builder of
:mod:`repro.rtree.insert`:

* **ChooseSubtree** — at the level above the leaves, minimize *overlap*
  enlargement (ties: area enlargement, then area); higher up, minimize
  area enlargement as usual.
* **Split** — choose the split axis by minimum margin (perimeter) sum
  over all distributions, then the distribution with minimum overlap
  (ties: minimum area).
* **Forced reinsertion** — on the first overflow at each level per
  insertion, the 30% of entries farthest from the node's center are
  removed and reinserted, which tightens nodes instead of splitting
  eagerly.

The result is a dynamically built tree with noticeably less node
overlap than Guttman's — the tests quantify this with the overlap
metric and the tree-join ablation uses it as the "well-maintained
dynamic index" point between bulk-loaded and insert-degraded trees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.geom.rect import (
    Rect,
    area,
    enlargement,
    intersection,
    margin,
    mbr_of,
    union_mbr,
)
from repro.rtree.node import LEAF_LEVEL, Node, node_capacity
from repro.rtree.rtree import RTree
from repro.storage.pages import PageStore

#: Fraction of a node reinserted on its first overflow (the paper value
#: of Beckmann et al.: p = 30%).
REINSERT_FRACTION = 0.3
#: Minimum entries per node after a split (R*-tree default: 40%).
MIN_FILL_FRACTION = 0.4


def overlap_area(target: Rect, others: List[Rect]) -> float:
    """Total pairwise intersection area of ``target`` with ``others``."""
    total = 0.0
    for o in others:
        inter = intersection(target, o)
        if inter is not None:
            total += area(inter)
    return total


class RStarTreeBuilder:
    """Builds an R*-tree by repeated insertion; call :meth:`finish`."""

    def __init__(self, store: PageStore, name: str = "rstar") -> None:
        self.store = store
        self.name = name
        self.capacity = node_capacity(store.page_bytes)
        self.min_fill = max(1, int(self.capacity * MIN_FILL_FRACTION))
        root_id = store.allocate()
        self._root = Node(root_id, LEAF_LEVEL, [])
        store.write(root_id, self._root)
        self._height = 1
        self._level_pages: Dict[int, Set[int]] = {LEAF_LEVEL: {root_id}}
        self._num_objects = 0
        self._reinserted_levels: Set[int] = set()

    # -- public API -------------------------------------------------------

    def insert(self, rect: Rect) -> None:
        self._num_objects += 1
        self._reinserted_levels = set()
        # Forced reinsertions are queued and processed after the
        # triggering descent fully unwinds — re-entering the tree while
        # an ancestor's recursion frame holds stale indexes corrupts it.
        self._pending: List[Tuple[Rect, int]] = [(rect, LEAF_LEVEL)]
        while self._pending:
            entry, level = self._pending.pop()
            self._insert_entry(entry, level)

    def extend(self, rects) -> None:
        for r in rects:
            self.insert(r)

    def finish(self) -> RTree:
        if self._num_objects == 0:
            raise ValueError("cannot finish an empty R*-tree")
        pages_per_level = [
            sorted(self._level_pages.get(lvl, ()))
            for lvl in range(self._height)
        ]
        return RTree(
            self.store,
            root_page_id=self._root.page_id,
            height=self._height,
            num_objects=self._num_objects,
            pages_per_level=pages_per_level,
            name=self.name,
        )

    # -- insertion ---------------------------------------------------------

    def _insert_entry(self, entry: Rect, target_level: int) -> None:
        split = self._insert_at(self._root, entry, target_level)
        if split is not None:
            self._grow_root(split)

    def _insert_at(self, node: Node, entry: Rect,
                   target_level: int) -> Optional[Rect]:
        env = self.store.disk.env
        if node.level == target_level:
            node.entries.append(entry)
            self.store.write(node.page_id, node)
            if len(node.entries) > self.capacity:
                return self._overflow(node)
            return None

        idx = self._choose_subtree(node, entry)
        child_entry = node.entries[idx]
        child: Node = self.store.read(child_entry.rid)
        env.charge("insert", len(node.entries))
        split = self._insert_at(child, entry, target_level)

        child_mbr = child.mbr()
        node.entries[idx] = Rect(
            child_mbr.xlo, child_mbr.xhi, child_mbr.ylo, child_mbr.yhi,
            child_entry.rid,
        )
        if split is not None:
            node.entries.append(split)
        self.store.write(node.page_id, node)
        if len(node.entries) > self.capacity:
            return self._overflow(node)
        return None

    def _choose_subtree(self, node: Node, entry: Rect) -> int:
        env = self.store.disk.env
        if node.level == 1:
            # Children are leaves: minimize overlap enlargement.
            env.charge("insert", len(node.entries) ** 2)
            best_idx = 0
            best = (float("inf"), float("inf"), float("inf"))
            for i, e in enumerate(node.entries):
                grown = union_mbr(e, entry)
                others = [o for j, o in enumerate(node.entries) if j != i]
                d_overlap = (
                    overlap_area(grown, others)
                    - overlap_area(e, others)
                )
                key = (d_overlap, enlargement(e, entry), area(e))
                if key < best:
                    best = key
                    best_idx = i
            return best_idx
        # Higher levels: minimize area enlargement (ties by area).
        best_idx = 0
        best = (float("inf"), float("inf"))
        for i, e in enumerate(node.entries):
            key = (enlargement(e, entry), area(e))
            if key < best:
                best = key
                best_idx = i
        return best_idx

    # -- overflow treatment -------------------------------------------------

    def _overflow(self, node: Node) -> Optional[Rect]:
        """Forced reinsertion on first overflow per level, else split."""
        is_root = node.page_id == self._root.page_id
        if node.level not in self._reinserted_levels and not is_root:
            self._reinserted_levels.add(node.level)
            self._reinsert(node)
            return None
        return self._split(node)

    def _reinsert(self, node: Node) -> None:
        center = node.mbr()
        cx = (center.xlo + center.xhi) / 2
        cy = (center.ylo + center.yhi) / 2

        def dist(e: Rect) -> float:
            ex = (e.xlo + e.xhi) / 2
            ey = (e.ylo + e.yhi) / 2
            return (ex - cx) ** 2 + (ey - cy) ** 2

        k = max(1, int(len(node.entries) * REINSERT_FRACTION))
        by_distance = sorted(node.entries, key=dist)
        keep, evicted = by_distance[:-k], by_distance[-k:]
        node.entries = keep
        self.store.write(node.page_id, node)
        self.store.disk.env.charge(
            "insert", int(len(by_distance) * 4)
        )
        # Ancestors of `node` recompute their entry MBRs as the current
        # recursion unwinds (node is on the active insertion path), so
        # only the evicted entries need queueing.  Close reinsertion
        # (Beckmann et al.): nearest evictions go back in first —
        # pending is a stack, so push nearest last.
        for e in evicted:
            self._pending.append((e, node.level))

    # -- R* split ------------------------------------------------------------

    def _split(self, node: Node) -> Rect:
        entries = node.entries
        env = self.store.disk.env
        env.charge("insert", len(entries) * len(entries))
        group_a, group_b = self._choose_split(entries)
        node.entries = group_a
        self.store.write(node.page_id, node)
        new_page = self.store.allocate()
        sibling = Node(new_page, node.level, group_b)
        self.store.write(new_page, sibling)
        self._level_pages.setdefault(node.level, set()).add(new_page)
        g = mbr_of(group_b)
        return Rect(g.xlo, g.xhi, g.ylo, g.yhi, new_page)

    def _choose_split(self, entries: List[Rect]
                      ) -> Tuple[List[Rect], List[Rect]]:
        """Axis by minimum margin sum; distribution by minimum overlap."""
        m = self.min_fill
        best_axis_cost = float("inf")
        best_axis_distributions = None
        for axis_key in (
            lambda e: (e.xlo, e.xhi),
            lambda e: (e.ylo, e.yhi),
        ):
            ordered = sorted(entries, key=axis_key)
            margin_sum = 0.0
            distributions = []
            for split_at in range(m, len(ordered) - m + 1):
                left = ordered[:split_at]
                right = ordered[split_at:]
                margin_sum += margin(mbr_of(left)) + margin(mbr_of(right))
                distributions.append((left, right))
            if margin_sum < best_axis_cost:
                best_axis_cost = margin_sum
                best_axis_distributions = distributions
        best = None
        best_key = (float("inf"), float("inf"))
        for left, right in best_axis_distributions:
            ml, mr = mbr_of(left), mbr_of(right)
            inter = intersection(ml, mr)
            key = (area(inter) if inter else 0.0, area(ml) + area(mr))
            if key < best_key:
                best_key = key
                best = (left, right)
        return list(best[0]), list(best[1])

    def _grow_root(self, split_entry: Rect) -> None:
        old_root = self._root
        old_mbr = old_root.mbr()
        new_root_page = self.store.allocate()
        new_level = old_root.level + 1
        new_root = Node(
            new_root_page, new_level,
            [
                Rect(old_mbr.xlo, old_mbr.xhi, old_mbr.ylo, old_mbr.yhi,
                     old_root.page_id),
                split_entry,
            ],
        )
        self.store.write(new_root_page, new_root)
        self._root = new_root
        self._height = new_level + 1
        self._level_pages.setdefault(new_level, set()).add(new_root_page)
