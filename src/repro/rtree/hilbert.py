"""Hilbert space-filling curve on a 2^order x 2^order integer grid.

Bulk loading sorts rectangle centers along the Hilbert curve (Kamel &
Faloutsos '93, reference [17] of the paper), which clusters spatially
close rectangles into the same leaf and — because our page store hands
out extents in allocation order — onto neighbouring disk pages.  That
layout is precisely what gives the synchronized traversal its
sequential-I/O advantage in Figure 2(d)-(f).

The iterative xy->d conversion below is the classic bit-interleaving
formulation (Hamilton's compact form); it is a bijection between grid
cells and curve positions, a property the tests verify exhaustively on
small orders and by sampling on large ones.
"""

from __future__ import annotations

from typing import Iterable, List

#: Default curve order: a 65536 x 65536 grid, fine enough that distinct
#: TIGER coordinates rarely collide in a cell.
DEFAULT_ORDER = 16


def hilbert_xy_to_d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Map grid cell ``(x, y)`` to its distance along the Hilbert curve.

    ``x`` and ``y`` must lie in ``[0, 2**order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(
            f"({x}, {y}) outside the {side}x{side} Hilbert grid"
        )
    rx = ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_d(xfrac: float, yfrac: float, order: int = DEFAULT_ORDER) -> int:
    """Curve position of a point given in unit-square fractions.

    Fractions are clamped into [0, 1], so callers may pass raw
    ``(value - lo) / (hi - lo)`` without worrying about boundary
    rounding.
    """
    side = 1 << order
    x = int(xfrac * side)
    y = int(yfrac * side)
    if x < 0:
        x = 0
    elif x >= side:
        x = side - 1
    if y < 0:
        y = 0
    elif y >= side:
        y = side - 1
    return hilbert_xy_to_d(x, y, order)


def hilbert_d_to_xy(d: int, order: int = DEFAULT_ORDER) -> tuple:
    """Inverse mapping: curve position to grid cell (for tests)."""
    side = 1 << order
    if not (0 <= d < side * side):
        raise ValueError(f"curve position {d} out of range")
    t = d
    x = y = 0
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_keys(
    centers: Iterable[tuple], lo_x: float, lo_y: float,
    hi_x: float, hi_y: float, order: int = DEFAULT_ORDER,
) -> List[int]:
    """Curve keys for many points, normalized to the given bounding box.

    A degenerate box (zero width or height) maps every point to the
    same axis coordinate, which is still a valid total order.
    """
    span_x = hi_x - lo_x
    span_y = hi_y - lo_y
    inv_x = 1.0 / span_x if span_x > 0 else 0.0
    inv_y = 1.0 / span_y if span_y > 0 else 0.0
    return [
        hilbert_d((cx - lo_x) * inv_x, (cy - lo_y) * inv_y, order)
        for cx, cy in centers
    ]
