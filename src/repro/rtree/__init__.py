"""R-tree index: pages, bulk loading, dynamic inserts, persistence.

The paper's index-based joins (ST and PQ) run over packed R-trees
bulk-loaded with the Hilbert heuristic of Kamel & Faloutsos, filled to
75% with the DeWitt et al. "+20% area" admission rule (Section 3.3).
This package provides:

* :mod:`repro.rtree.hilbert` — the space-filling curve;
* :mod:`repro.rtree.node` / :mod:`repro.rtree.rtree` — the page-resident
  tree structure with validation and window queries;
* :mod:`repro.rtree.bulk_load` — the paper's packing algorithm;
* :mod:`repro.rtree.insert` — Guttman-style dynamic inserts and
  deletes, used by the index-quality ablation (Section 7 discusses how
  update-degraded trees hurt ST);
* :mod:`repro.rtree.rstar` — R*-tree insertion (Beckmann et al.), the
  other index family the paper names;
* :mod:`repro.rtree.persist` — byte-exact serialization to real files.
"""

from repro.rtree.hilbert import hilbert_d, hilbert_xy_to_d
from repro.rtree.node import Node, node_capacity
from repro.rtree.rtree import RTree
from repro.rtree.bulk_load import bulk_load, BulkLoadConfig
from repro.rtree.insert import RTreeBuilder
from repro.rtree.rstar import RStarTreeBuilder
from repro.rtree.persist import save_rtree, load_rtree

__all__ = [
    "hilbert_d",
    "hilbert_xy_to_d",
    "Node",
    "node_capacity",
    "RTree",
    "bulk_load",
    "BulkLoadConfig",
    "RTreeBuilder",
    "RStarTreeBuilder",
    "save_rtree",
    "load_rtree",
]
