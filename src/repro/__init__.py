"""repro — reproduction of "A Unified Approach for Indexed and
Non-Indexed Spatial Joins" (Arge, Procopiuc, Ramaswamy, Suel,
Vahrenhold, Vitter; EDBT 2000).

Quick start::

    from repro import (
        SimEnv, Disk, PageStore, Stream, bulk_load, pq_join,
    )
    from repro.data import make_roads, make_hydro
    from repro.geom import Rect

    env = SimEnv()
    disk = Disk(env)
    store = PageStore(disk, env.scale.index_page_bytes)

    region = Rect(0.0, 10.0, 0.0, 10.0)
    roads = make_roads(20_000, region, seed=1)
    hydro = make_hydro(4_000, region, seed=2)

    tree = bulk_load(store, roads, name="roads")       # indexed input
    stream = Stream.from_rects(disk, hydro)            # non-indexed input
    result = pq_join(tree, stream, disk, collect_pairs=True)
    print(result.n_pairs, "intersecting MBR pairs")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.geom import Rect
from repro.sim import (
    SimEnv,
    ScaleConfig,
    DEFAULT_SCALE,
    PAPER_SCALE,
    MACHINE_1,
    MACHINE_2,
    MACHINE_3,
    ALL_MACHINES,
)
from repro.storage import (
    Disk,
    PageStore,
    Stream,
    BufferPool,
    external_sort,
    sort_stream_by_ylo,
)
from repro.rtree import (
    RTree,
    bulk_load,
    BulkLoadConfig,
    RTreeBuilder,
    save_rtree,
    load_rtree,
)
from repro.core import (
    pq_join,
    PQConfig,
    sssj_join,
    pbsm_join,
    PBSMConfig,
    st_join,
    multiway_join,
    unified_spatial_join,
    choose_method,
    SpatialHistogram,
    CostModel,
    JoinResult,
)

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "SimEnv",
    "ScaleConfig",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
    "MACHINE_1",
    "MACHINE_2",
    "MACHINE_3",
    "ALL_MACHINES",
    "Disk",
    "PageStore",
    "Stream",
    "BufferPool",
    "external_sort",
    "sort_stream_by_ylo",
    "RTree",
    "bulk_load",
    "BulkLoadConfig",
    "RTreeBuilder",
    "save_rtree",
    "load_rtree",
    "pq_join",
    "PQConfig",
    "sssj_join",
    "pbsm_join",
    "PBSMConfig",
    "st_join",
    "multiway_join",
    "unified_spatial_join",
    "choose_method",
    "SpatialHistogram",
    "CostModel",
    "JoinResult",
    "__version__",
]
