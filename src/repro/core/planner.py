"""The unified join: PQ plus the cost-based strategy choice.

Section 6.3's conclusion: "PQ suffers in performance because it naively
chooses to use an index whenever one is available. ... Using such a
cost-based approach to choose between the index-based and non-index
based algorithms, PQ should have the best overall execution time in
most cases."  This module is that missing decision layer:

* :class:`Relation` describes one join input as a catalog would — the
  base stream, an optional index, the universe, and an optional
  histogram;
* :func:`choose_method` prices the candidate strategies with the
  :class:`~repro.core.cost_model.CostModel` (fractions from histograms)
  and picks the cheapest;
* :func:`unified_spatial_join` executes the choice: PQ over indexes
  (pruned to the other input's window), PQ mixed, or pure sort-based
  SSSJ, falling back gracefully when a representation is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cost_model import CostModel, JoinCostEstimate
from repro.core.histogram import SpatialHistogram
from repro.core.join_result import JoinResult
from repro.core.pq_join import PQConfig, pq_join
from repro.core.sssj import SSSJConfig, sssj_join
from repro.geom.rect import Rect, intersection, union_mbr
from repro.rtree.rtree import RTree
from repro.sim.machines import MACHINE_3, MachineSpec
from repro.storage.disk import Disk
from repro.storage.stream import Stream


@dataclass
class Relation:
    """One join input as the catalog sees it."""

    name: str
    stream: Optional[Stream] = None
    tree: Optional[RTree] = None
    universe: Optional[Rect] = None
    histogram: Optional[SpatialHistogram] = None

    def __post_init__(self) -> None:
        if self.stream is None and self.tree is None:
            raise ValueError(
                f"relation {self.name!r} has neither a stream nor an index"
            )
        if self.universe is None and self.tree is not None:
            self.universe = self.tree.root_mbr()

    @property
    def data_bytes(self) -> int:
        if self.stream is not None:
            return self.stream.data_bytes
        from repro.geom.rect import RECT_BYTES

        return self.tree.num_objects * RECT_BYTES

    def fraction_in(self, window: Optional[Rect]) -> float:
        """Fraction of this relation participating in a join limited to
        ``window`` — histogram-based when available, MBR-area otherwise."""
        if window is None:
            return 1.0
        if self.histogram is not None:
            return self.histogram.leaf_fraction(window)
        if self.universe is None:
            return 1.0
        inter = intersection(self.universe, window)
        if inter is None:
            return 0.0
        from repro.geom.rect import area

        denom = area(self.universe)
        return min(1.0, area(inter) / denom) if denom > 0 else 1.0


def candidate_estimates(
    rel_a: Relation,
    rel_b: Relation,
    machine: MachineSpec,
    scale,
) -> List[Tuple[str, JoinCostEstimate]]:
    """Price every feasible strategy; returns [(strategy, estimate), ...].

    Strategies considered (feasibility depends on which representations
    exist): ``"pq-index"`` (both indexed, pruned traversal),
    ``"pq-mixed"`` (one indexed), ``"sssj"`` (sort both streams).
    Candidates appear in that fixed order, so callers taking the
    minimum resolve ties toward the index-based paths.
    """
    model = CostModel(machine, scale)
    window_a = rel_a.universe
    window_b = rel_b.universe
    candidates: List[Tuple[str, JoinCostEstimate]] = []
    if rel_a.tree is not None and rel_b.tree is not None:
        est = model.estimate_pq_indexed(
            rel_a.tree.page_count,
            rel_b.tree.page_count,
            fraction_a=rel_a.fraction_in(window_b),
            fraction_b=rel_b.fraction_in(window_a),
        )
        candidates.append(("pq-index", est))
    if rel_a.tree is not None and rel_b.stream is not None:
        est = model.estimate_pq_mixed(
            rel_a.tree.page_count,
            rel_a.fraction_in(window_b),
            rel_b.data_bytes,
        )
        candidates.append(("pq-mixed-a", est))
    if rel_b.tree is not None and rel_a.stream is not None:
        est = model.estimate_pq_mixed(
            rel_b.tree.page_count,
            rel_b.fraction_in(window_a),
            rel_a.data_bytes,
        )
        candidates.append(("pq-mixed-b", est))
    if rel_a.stream is not None and rel_b.stream is not None:
        est = model.estimate_sssj(rel_a.data_bytes, rel_b.data_bytes)
        candidates.append(("sssj", est))
    return candidates


def choose_method(
    rel_a: Relation,
    rel_b: Relation,
    machine: MachineSpec,
    scale,
) -> Tuple[str, JoinCostEstimate]:
    """Pick the cheapest feasible strategy; returns (strategy, estimate).

    Ties are broken by candidate order (``min`` is stable), which lists
    the index paths before ``sssj`` — when the model cannot separate
    two strategies, the one touching fewer raw bytes wins.
    """
    candidates = candidate_estimates(rel_a, rel_b, machine, scale)
    if not candidates:
        raise ValueError("no feasible join strategy for these relations")
    return min(candidates, key=lambda c: c[1].io_seconds)


def unified_spatial_join(
    rel_a: Relation,
    rel_b: Relation,
    disk: Disk,
    machine: MachineSpec = MACHINE_3,
    collect_pairs: bool = False,
    force: Optional[str] = None,
) -> JoinResult:
    """Join two relations, choosing the strategy with the cost model.

    ``force`` overrides the decision ("pq-index", "pq-mixed-a",
    "pq-mixed-b", "sssj") — the ablation benches use it.  The chosen
    strategy and its estimate land in the result's ``detail``.
    """
    env = disk.env
    if force is None:
        strategy, estimate = choose_method(rel_a, rel_b, machine, env.scale)
    else:
        # Price the forced strategy with the real model so ablation
        # benches report estimates comparable with the planner's choice;
        # a strategy the relations cannot support stays unpriced (its
        # execution below fails anyway unless it is a known name).
        strategy = force
        priced = dict(
            candidate_estimates(rel_a, rel_b, machine, env.scale)
        )
        estimate = priced.get(
            force, JoinCostEstimate(force, float("nan"), "forced")
        )

    universe = None
    if rel_a.universe is not None and rel_b.universe is not None:
        universe = union_mbr(rel_a.universe, rel_b.universe)

    if strategy == "pq-index":
        result = pq_join(
            rel_a.tree, rel_b.tree, disk, universe=universe,
            config=PQConfig(prune=True), collect_pairs=collect_pairs,
            window_a=rel_a.universe, window_b=rel_b.universe,
        )
    elif strategy == "pq-mixed-a":
        result = pq_join(
            rel_a.tree, rel_b.stream, disk, universe=universe,
            config=PQConfig(prune=True), collect_pairs=collect_pairs,
            window_a=rel_a.universe, window_b=rel_b.universe,
        )
    elif strategy == "pq-mixed-b":
        result = pq_join(
            rel_a.stream, rel_b.tree, disk, universe=universe,
            config=PQConfig(prune=True), collect_pairs=collect_pairs,
            window_a=rel_a.universe, window_b=rel_b.universe,
        )
    elif strategy == "sssj":
        result = sssj_join(
            rel_a.stream, rel_b.stream, disk, universe=universe,
            collect_pairs=collect_pairs,
        )
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    result.detail["strategy"] = strategy
    result.detail["estimated_io_seconds"] = estimate.io_seconds
    result.detail["machine"] = machine.name
    return result
