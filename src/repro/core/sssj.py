"""Scalable Sweeping-based Spatial Join (Arge et al. [4], Section 3.1).

Structure: externally sort both inputs by lower y-coordinate, then run a
single plane sweep over the two sorted streams with Striped-Sweep as the
interval structure.  For the data sizes of the paper this is exactly
"two sequential read passes, one non-sequential read pass (while
merging), and two sequential write passes over the data" — our stream
and sort substrates produce precisely those passes, and a test pins
them.

The worst-case guarantee comes from a partitioning fallback (the
distribution-sweeping component of [4], simplified to one axis as the
paper describes): if the sweep's interval structures outgrow memory,
the x-range is split into vertical slabs, rectangles are distributed to
every slab they overlap (one extra read/write pass per level), each slab
is swept independently, and cross-slab duplicates are suppressed with
the reference-point rule.  The paper notes the fallback never fires on
real data ("the data structures were always significantly smaller than
the available internal memory"); tests exercise it with adversarial
inputs, and the experiments run with it armed but observe it never
triggering, exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.join_result import JoinResult
from repro.core.sweep import (
    DEFAULT_STRIPS,
    ForwardSweep,
    StripedSweep,
    auto_strips,
    sweep_join,
)
from repro.geom.rect import Rect
from repro.storage.disk import Disk
from repro.storage.sort import sort_stream_by_ylo
from repro.storage.stream import Stream

#: Slabs created per fallback level.
_FANOUT = 8
#: Beyond this depth no x-split can help (e.g. every rectangle stabs one
#: vertical line); the slab is swept without a memory limit, the only
#: remaining option — [4] handles this case with interval-structure
#: paging, which never matters at our scales.
_MAX_DEPTH = 3


@dataclass(frozen=True)
class SSSJConfig:
    """Knobs for SSSJ; defaults follow the paper's implementation."""

    structure: str = "striped"  # "striped" or "forward"
    nstrips: Optional[int] = None
    """Strip count for Striped-Sweep; ``None`` sizes strips from the
    average rectangle width sampled from the inputs (as in [4])."""
    memory_items: Optional[int] = None  # None = scale config budget


def sssj_join(
    stream_a: Stream,
    stream_b: Stream,
    disk: Disk,
    universe: Optional[Rect] = None,
    config: SSSJConfig = SSSJConfig(),
    collect_pairs: bool = False,
    sorted_a=None,
    sorted_b=None,
) -> JoinResult:
    """Join two (unsorted, closed) rectangle streams.

    ``universe`` bounds the x-range for Striped-Sweep and the fallback
    slabs; callers that know their dataset pass it (it is catalog
    metadata), otherwise it is derived with an uncharged scan.

    ``sorted_a``/``sorted_b`` are optional pre-sorted views of the
    corresponding input (any object whose ``scan()`` yields the
    relation in ascending ``ylo`` order — a sorted
    :class:`~repro.storage.stream.Stream`, or the engine's
    memory-resident
    :class:`~repro.core.columnar.SortedRunView`).  A provided side
    skips its external sort entirely — the warm path of the engine's
    sorted-run artifacts — and stays owned by the caller (it is not
    freed here).  The sweep asserts sortedness as it consumes the
    view, so a wrong order fails loudly rather than corrupting output.
    """
    env = disk.env
    if universe is None:
        universe = silent_universe(stream_a, stream_b)
    memory_items = (
        config.memory_items
        if config.memory_items is not None
        else env.scale.memory_rects
    )

    if config.structure == "striped" and config.nstrips is None:
        nstrips = auto_strips(
            universe.xhi - universe.xlo,
            _sample_avg_width(stream_a, stream_b),
        )
        config = SSSJConfig(
            structure=config.structure, nstrips=nstrips,
            memory_items=config.memory_items,
        )

    presorted = sum(1 for s in (sorted_a, sorted_b) if s is not None)
    run_a = (sorted_a if sorted_a is not None
             else sort_stream_by_ylo(stream_a, disk, name="sssj.a"))
    run_b = (sorted_b if sorted_b is not None
             else sort_stream_by_ylo(stream_b, disk, name="sssj.b"))

    pairs: Optional[List[Tuple[int, int]]] = [] if collect_pairs else None
    state = _State(pairs=pairs)
    _join_slab(
        run_a, run_b, disk, universe.xlo, universe.xhi, universe,
        config, memory_items, state, depth=0,
        accept=lambda ref_x: True,
    )
    if sorted_a is None and run_a is not stream_a:
        run_a.free()
    if sorted_b is None and run_b is not stream_b:
        run_b.free()
    return JoinResult(
        algorithm="SSSJ",
        n_pairs=state.n_pairs,
        pairs=pairs,
        max_memory_bytes=state.max_memory,
        detail={
            "fallback_depth": state.deepest,
            "memory_items": memory_items,
            "presorted_inputs": presorted,
        },
    )


# -- internals ---------------------------------------------------------------


@dataclass
class _State:
    """Accumulator threaded through the (rarely taken) slab recursion."""

    pairs: Optional[List[Tuple[int, int]]]
    n_pairs: int = 0
    max_memory: int = 0
    deepest: int = 0


def _join_slab(
    sorted_a: Stream,
    sorted_b: Stream,
    disk: Disk,
    xlo: float,
    xhi: float,
    universe: Rect,
    config: SSSJConfig,
    memory_items: int,
    state: _State,
    depth: int,
    accept: Callable[[float], bool],
) -> None:
    """Sweep one slab; on structure overflow, split it and recurse.

    ``accept`` is the dedup predicate on the pair's reference x — the
    left edge of the x-overlap.  The top-level call accepts everything;
    slab calls accept only reference points inside their own slab.
    """
    env = disk.env
    limit = None if depth >= _MAX_DEPTH else memory_items
    emitted_before = state.n_pairs

    def sink(ra: Rect, rb: Rect) -> None:
        ref_x = ra.xlo if ra.xlo >= rb.xlo else rb.xlo
        if accept(ref_x):
            state.n_pairs += 1
            if state.pairs is not None:
                state.pairs.append((ra.rid, rb.rid))

    stats = sweep_join(
        sorted_a.scan(),
        sorted_b.scan(),
        _structure_factory(config, xlo, xhi, config.nstrips),
        env,
        on_pair=sink,
        memory_items=limit,
    )
    if not stats.overflowed:
        if stats.max_active_bytes > state.max_memory:
            state.max_memory = stats.max_active_bytes
        if depth > state.deepest:
            state.deepest = depth
        return

    # Overflow: discard this slab's partial output and re-run split.
    state.n_pairs = emitted_before
    if state.pairs is not None:
        del state.pairs[emitted_before:]
    edges = [xlo + (xhi - xlo) * i / _FANOUT for i in range(_FANOUT + 1)]
    edges[-1] = xhi
    for i in range(_FANOUT):
        lo, hi = edges[i], edges[i + 1]
        sub_a = _filter_to_slab(sorted_a, disk, lo, hi, f"d{depth}a{i}")
        sub_b = _filter_to_slab(sorted_b, disk, lo, hi, f"d{depth}b{i}")
        last = i == _FANOUT - 1

        def sub_accept(ref_x: float, _lo=lo, _hi=hi, _last=last,
                       _outer=accept) -> bool:
            if not _outer(ref_x):
                return False
            if _last:
                return _lo <= ref_x <= _hi
            return _lo <= ref_x < _hi

        _join_slab(
            sub_a, sub_b, disk, lo, hi, universe, config, memory_items,
            state, depth + 1, sub_accept,
        )
        sub_a.free()
        sub_b.free()


def _structure_factory(config: SSSJConfig, xlo: float, xhi: float,
                       nstrips: Optional[int]):
    if config.structure == "forward":
        return ForwardSweep
    if config.structure == "striped":
        n = nstrips if nstrips is not None else DEFAULT_STRIPS
        return lambda: StripedSweep(xlo, xhi, n)
    raise ValueError(f"unknown sweep structure {config.structure!r}")


def _sample_avg_width(stream_a: Stream, stream_b: Stream,
                      limit: int = 512) -> float:
    """Average rectangle width from the first blocks of both inputs.

    Uncharged: a system would keep this in catalog statistics (the
    paper's cost model likewise assumes histogram metadata [1]).
    """
    total = 0.0
    count = 0
    for s in (stream_a, stream_b):
        for offset in s._block_offsets:
            for r in s.disk.read_silent(offset):
                total += r.xhi - r.xlo
                count += 1
                if count >= limit:
                    break
            if count >= limit:
                break
    return total / count if count else 0.0


def _filter_to_slab(source: Stream, disk: Disk, lo: float, hi: float,
                    tag: str) -> Stream:
    """Rectangles of ``source`` whose x-interval overlaps [lo, hi].

    The filter pass reads the source and writes the slab stream — this
    is the extra pass the fallback pays, and it is fully charged.
    """
    out = Stream(disk, name=f"sssj.slab.{tag}")
    for r in source.scan():
        if r.xlo <= hi and r.xhi >= lo:
            out.append(r)
    return out.close()


def silent_universe(stream_a: Stream, stream_b: Stream) -> Rect:
    """Dataset MBR via uncharged scans (catalog-metadata stand-in)."""
    xlo = ylo = math.inf
    xhi = yhi = -math.inf
    for s in (stream_a, stream_b):
        for offset in s._block_offsets:
            for r in s.disk.read_silent(offset):
                if r.xlo < xlo:
                    xlo = r.xlo
                if r.xhi > xhi:
                    xhi = r.xhi
                if r.ylo < ylo:
                    ylo = r.ylo
                if r.yhi > yhi:
                    yhi = r.yhi
    if xlo is math.inf:
        return Rect(0.0, 1.0, 0.0, 1.0, 0)
    return Rect(xlo, xhi, ylo, yhi, 0)
