"""Synchronized R-tree traversal (Brinkhoff, Kriegel & Seeger [8], §3.3).

A depth-first descent over *pairs* of nodes, one from each tree.  For a
pair whose bounding rectangles intersect, the children overlapping the
pair's intersection region are joined with Forward-Sweep (the paper's
recommended combination of the search-space restriction and
plane-sweep), and each resulting child pair is visited recursively;
pairs of data entries at the leaves are reported.

Trees of different heights are handled the standard way: the deeper
node keeps descending against the shallower node until levels align.

All page requests go through one shared LRU buffer pool (22 MB in the
paper, scaled here); re-requests of buffered pages cost no I/O.  Table 4
counts disk reads, i.e. pool misses — on inputs whose two indexes fit in
the pool every page is read at most once and the search-space
restriction can push reads *below* the page count of the two trees,
exactly the paper's NJ/NY observation.

Because the bulk loader writes each level's pages in allocation order,
the DFS touches leaf children of one parent consecutively — sequential
runs that the machine observers price as cheap I/O.  That layout effect
is the whole story of Figure 2(d)-(f).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.join_result import JoinResult
from repro.core.sweep import forward_sweep_pairs
from repro.geom.rect import Rect, intersection, intersects
from repro.rtree.node import Node
from repro.rtree.rtree import RTree
from repro.storage.buffer_pool import BufferPool


@dataclass(frozen=True)
class STConfig:
    """ST knobs; defaults follow Section 3.3."""

    buffer_pool_pages: Optional[int] = None  # None = scale config pool


def st_join(
    tree_a: RTree,
    tree_b: RTree,
    config: STConfig = STConfig(),
    collect_pairs: bool = False,
    pool: Optional[BufferPool] = None,
) -> JoinResult:
    """Join the data rectangles of two R-trees on the same store.

    ``pool`` lets a caller share one LRU pool across several joins (the
    query engine keeps a pool warm between queries); by default a fresh
    pool is created per join, as in the paper's one-shot experiments.
    """
    if tree_a.store is not tree_b.store:
        raise ValueError("ST expects both indexes on the same page store")
    store = tree_a.store
    env = store.disk.env
    if pool is None:
        pool_pages = config.buffer_pool_pages or env.scale.buffer_pool_pages
        pool = BufferPool(store, pool_pages)
    elif pool.store is not store:
        raise ValueError("shared buffer pool must sit on the trees' store")
    pool_pages = pool.capacity
    # Shared pools carry lifetime counters; report this join's delta.
    requests0, misses0, hits0 = pool.requests, pool.misses, pool.hits

    pairs: Optional[List[Tuple[int, int]]] = [] if collect_pairs else None
    n_pairs = 0

    def sink(ra: Rect, rb: Rect) -> None:
        nonlocal n_pairs
        n_pairs += 1
        if pairs is not None:
            pairs.append((ra.rid, rb.rid))

    root_a = tree_a.read_node_via(pool, tree_a.root_page_id)
    root_b = tree_b.read_node_via(pool, tree_b.root_page_id)
    if intersects(root_a.mbr(), root_b.mbr()):
        stack: List[Tuple[int, int]] = [
            (tree_a.root_page_id, tree_b.root_page_id)
        ]
        while stack:
            pid_a, pid_b = stack.pop()
            node_a = tree_a.read_node_via(pool, pid_a)
            node_b = tree_b.read_node_via(pool, pid_b)
            _join_nodes(node_a, node_b, stack, sink, env)

    return JoinResult(
        algorithm="ST",
        n_pairs=n_pairs,
        pairs=pairs,
        max_memory_bytes=pool_pages * store.page_bytes,
        detail={
            "page_requests": pool.requests - requests0,
            "disk_reads": pool.misses - misses0,
            "pool_hits": pool.hits - hits0,
            "pool_pages": pool_pages,
            "lower_bound_pages": tree_a.page_count + tree_b.page_count,
        },
    )


# -- internals ---------------------------------------------------------------


def _join_nodes(node_a: Node, node_b: Node,
                stack: List[Tuple[int, int]], sink, env) -> None:
    """Process one node pair, pushing child pairs / emitting data pairs."""
    region = intersection(node_a.mbr(), node_b.mbr())
    if region is None:
        return
    # Search-space restriction: only entries overlapping the pair's
    # intersection region can contribute (Brinkhoff et al.'s heuristic).
    live_a = [e for e in node_a.entries if intersects(e, region)]
    live_b = [e for e in node_b.entries if intersects(e, region)]
    # Two passes over the entries: the MBR recomputation above and the
    # restriction filter.  Both are real per-visit work in this
    # implementation, and a node pair is visited once per parent match.
    env.charge("st_filter", 2 * (len(node_a.entries) + len(node_b.entries)))
    if not live_a or not live_b:
        return

    if node_a.level == node_b.level:
        if node_a.is_leaf:
            forward_sweep_pairs(live_a, live_b, env, on_pair=sink)
        else:
            matches: List[Tuple[int, int]] = []

            def push(ea: Rect, eb: Rect) -> None:
                matches.append((ea.rid, eb.rid))

            forward_sweep_pairs(live_a, live_b, env, on_pair=push)
            # Brinkhoff et al. process node A's entries in their stored
            # order (the sweep only restricts the candidate set).  On a
            # Hilbert-packed tree, stored order == page-id order for
            # tree A, so its sibling leaves stream off the disk in
            # runs, while tree B's partners arrive in whatever order
            # the overlaps dictate and lean on the track cache — the
            # *partial* sequentiality Section 6.2 describes.  The stack
            # pops from the end, so push in descending A order.
            matches.sort(key=lambda p: p[0], reverse=True)
            stack.extend(matches)
    elif node_a.level > node_b.level:
        # Descend the deeper tree A against the whole node B.
        b_mbr = node_b.mbr()
        for ea in reversed(live_a):
            if intersects(ea, b_mbr):
                stack.append((ea.rid, node_b.page_id))
    else:
        a_mbr = node_a.mbr()
        for eb in reversed(live_b):
            if intersects(eb, a_mbr):
                stack.append((node_a.page_id, eb.rid))
