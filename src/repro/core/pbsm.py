"""Partition-Based Spatial Merge join (Patel & DeWitt [30], Section 3.2).

Two phases:

1. **Partitioning.**  The universe is cut into ``tiles_per_side^2``
   tiles; tiles are assigned to ``p`` partitions round-robin in
   row-major order (the paper's hash function).  Each input is scanned
   once and every rectangle is appended to the partition stream of
   *each* partition whose tiles it overlaps.  Because the 2p partition
   streams grow concurrently, their blocks interleave on disk — the
   "one non-sequential write pass" of the paper.

2. **Joining.**  Partition by partition, both sides are read into
   memory and joined with Forward-Sweep (the structure Patel & DeWitt
   used).  A pair replicated into several partitions is reported only
   in the partition owning the tile of its reference point.

The paper's implementation note — with 32x32 tiles several partitions
exceeded memory and page-faulted; 128x128 tiles fixed it — is
reproduced by the tile ablation bench: partition sizes are tracked and
reported in ``detail``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.columnar import ColumnarTile
from repro.core.join_result import JoinResult
from repro.core.sweep import forward_sweep_pairs
from repro.geom.rect import RECT_BYTES, Rect
from repro.storage.disk import Disk
from repro.storage.stream import Stream


@dataclass(frozen=True)
class PBSMConfig:
    """PBSM knobs; defaults are the paper's final choices."""

    tiles_per_side: int = 128
    partitions: Optional[int] = None  # None = size from the memory budget
    memory_bytes: Optional[int] = None  # None = scale config budget


def pbsm_join(
    stream_a: Stream,
    stream_b: Stream,
    disk: Disk,
    universe: Optional[Rect] = None,
    config: PBSMConfig = PBSMConfig(),
    collect_pairs: bool = False,
) -> JoinResult:
    """Join two (unsorted, closed) rectangle streams with PBSM."""
    env = disk.env
    if universe is None:
        from repro.core.sssj import silent_universe

        universe = silent_universe(stream_a, stream_b)
    memory_bytes = config.memory_bytes or env.scale.memory_bytes
    total_bytes = stream_a.data_bytes + stream_b.data_bytes
    p = config.partitions or max(1, math.ceil(total_bytes / memory_bytes))
    tiles = config.tiles_per_side
    if tiles * tiles < p:
        raise ValueError(
            f"{tiles}x{tiles} tiles cannot feed {p} partitions"
        )

    grid = TileGrid(universe, tiles, p)

    # -- Phase 1: partitioning (one read pass per input, interleaved
    # writes to the 2p partition streams).
    parts_a = [Stream(disk, name=f"pbsm.a{i}") for i in range(p)]
    parts_b = [Stream(disk, name=f"pbsm.b{i}") for i in range(p)]
    replicated_a = _distribute(stream_a, parts_a, grid, env)
    replicated_b = _distribute(stream_b, parts_b, grid, env)
    for s in parts_a:
        s.close()
    for s in parts_b:
        s.close()

    # -- Phase 2: per-partition sweep with reference-point dedup.
    pairs: Optional[List[Tuple[int, int]]] = [] if collect_pairs else None
    n_pairs = 0
    max_mem = 0
    max_partition_bytes = 0
    overfull = 0
    for i in range(p):
        side_a = list(parts_a[i].scan())
        side_b = list(parts_b[i].scan())
        part_bytes = (len(side_a) + len(side_b)) * RECT_BYTES
        max_partition_bytes = max(max_partition_bytes, part_bytes)
        if part_bytes > memory_bytes:
            overfull += 1
        if not side_a or not side_b:
            continue

        def sink(ra: Rect, rb: Rect, _i=i) -> None:
            nonlocal n_pairs
            if grid.partition_of_point(*ref_point(ra, rb)) == _i:
                n_pairs += 1
                if pairs is not None:
                    pairs.append((ra.rid, rb.rid))

        stats = forward_sweep_pairs(side_a, side_b, env, on_pair=sink)
        max_mem = max(max_mem, part_bytes + stats.max_active_bytes)
    for s in parts_a + parts_b:
        s.free()

    return JoinResult(
        algorithm="PBSM",
        n_pairs=n_pairs,
        pairs=pairs,
        max_memory_bytes=max_mem,
        detail={
            "partitions": p,
            "tiles_per_side": tiles,
            "replicated_a": replicated_a,
            "replicated_b": replicated_b,
            "max_partition_bytes": max_partition_bytes,
            "overfull_partitions": overfull,
            "memory_bytes": memory_bytes,
        },
    )


class TileAllowance:
    """A shared in-memory byte allowance for a set of tile partitions.

    PBSM-style tile distribution is skewed — a per-partition split of
    the memory grant would spill hot partitions while cold partitions
    waste their share.  All of one query's :class:`SpillablePartition`
    objects therefore draw from a single allowance, first come first
    served; spilling starts only once the partitions *collectively*
    exhaust it.

    The initial allowance is an estimate (boundary replication makes
    the true tile footprint unknowable before distribution), so when a
    grant is attached the allowance grows on demand — in chunks, via
    ``grant.try_extend`` — as long as the underlying budget has free
    bytes.  Spilling therefore means the *budget* is exhausted, not
    that the up-front estimate was short.  Single-threaded by design:
    distribution and spill re-reads happen on the thread that owns the
    I/O accounting.
    """

    #: Extension step: one chunk of rectangles per budget round-trip.
    EXTEND_BYTES = 256 * RECT_BYTES

    def __init__(self, total_bytes: int, grant=None) -> None:
        self.total_bytes = total_bytes
        self.remaining = total_bytes
        self._grant = grant

    def try_take(self, nbytes: int) -> bool:
        if nbytes <= self.remaining:
            self.remaining -= nbytes
            return True
        if self._grant is not None:
            step = max(nbytes, self.EXTEND_BYTES)
            if self._grant.try_extend(step):
                self.total_bytes += step
                self.remaining += step - nbytes
                return True
        return False


class SpillablePartition:
    """One partition's tiles: in memory up to an allowance, then on disk.

    The engine's partitioned executor materializes PBSM-style tile
    partitions in memory (classic ``pbsm_join`` writes them straight to
    partition streams).  Under a :class:`ResourceBudget` grant the
    partitions share a :class:`TileAllowance`; rectangles beyond it
    overflow to a ``Disk``-backed :class:`Stream` and are re-read
    during the join phase.  Stream writes and re-reads go through the
    simulated disk, so spilling is priced by the same ledger as every
    other I/O; the CPU side of moving a record to/from the spill stream
    is charged by the caller under ``"spill"`` using
    :attr:`spilled_rects`.

    ``allowance=None`` means unbudgeted (never spills), which keeps the
    pre-budget executor behaviour byte-identical.
    """

    def __init__(self, disk: Disk, name: str,
                 allowance: Optional[TileAllowance] = None) -> None:
        self.disk = disk
        self.name = name
        self.allowance = allowance
        self.in_memory: List[Rect] = []
        self._spill: Optional[Stream] = None
        self.spilled_rects = 0

    def append(self, r: Rect) -> None:
        if self.allowance is None or self.allowance.try_take(RECT_BYTES):
            self.in_memory.append(r)
            return
        if self._spill is None:
            self._spill = Stream(self.disk, name=f"{self.name}.spill")
        self._spill.append(r)
        self.spilled_rects += 1

    def __len__(self) -> int:
        return len(self.in_memory) + self.spilled_rects

    @property
    def spilled(self) -> bool:
        return self.spilled_rects > 0

    @property
    def memory_bytes(self) -> int:
        return len(self.in_memory) * RECT_BYTES

    @property
    def spilled_bytes(self) -> int:
        return self.spilled_rects * RECT_BYTES

    def materialize(self) -> List[Rect]:
        """All rectangles in append order, re-reading any spill stream.

        The spill re-read charges block reads on the shared disk — call
        this from the thread that owns the I/O accounting.
        """
        if self._spill is None:
            return self.in_memory
        self._spill.close()
        return self.in_memory + list(self._spill.scan())

    def materialize_columnar(self) -> "ColumnarTile":
        """The partition as one flat columnar tile, in append order.

        Same contents and same spill re-read accounting as
        :meth:`materialize` (the scan hits the same simulated disk), but
        packed as :class:`~repro.core.columnar.ColumnarTile` — the wire
        format the engine's process workers and partition-artifact
        cache consume, so spilled and resident tiles ship identically.
        """
        tile = ColumnarTile.from_rects(self.in_memory)
        if self._spill is not None:
            self._spill.close()
            tile.extend(self._spill.scan())
        return tile

    def free(self) -> None:
        """Drop the spill stream's disk payloads (temp-file deletion)."""
        if self._spill is not None:
            self._spill.close()
            self._spill.free()
            self._spill = None
        self.in_memory = []


# -- internals ---------------------------------------------------------------


class TileGrid:
    """Tile geometry plus the row-major round-robin partition map.

    Public contract: the engine's partitioned executor
    (:mod:`repro.engine.executor`) reuses this grid and
    :func:`ref_point` so its duplicate elimination stays bit-identical
    to PBSM's.
    """

    def __init__(self, universe: Rect, tiles_per_side: int,
                 partitions: int) -> None:
        self.universe = universe
        self.t = tiles_per_side
        self.p = partitions
        span_x = universe.xhi - universe.xlo
        span_y = universe.yhi - universe.ylo
        self.inv_x = self.t / span_x if span_x > 0 else 0.0
        self.inv_y = self.t / span_y if span_y > 0 else 0.0

    def _clamp(self, v: int) -> int:
        if v < 0:
            return 0
        if v >= self.t:
            return self.t - 1
        return v

    def tile_range(self, r: Rect) -> Tuple[int, int, int, int]:
        """Inclusive (col_lo, col_hi, row_lo, row_hi) of tiles r overlaps."""
        c0 = self._clamp(int((r.xlo - self.universe.xlo) * self.inv_x))
        c1 = self._clamp(int((r.xhi - self.universe.xlo) * self.inv_x))
        r0 = self._clamp(int((r.ylo - self.universe.ylo) * self.inv_y))
        r1 = self._clamp(int((r.yhi - self.universe.ylo) * self.inv_y))
        return c0, c1, r0, r1

    def partitions_of(self, r: Rect) -> set:
        c0, c1, r0, r1 = self.tile_range(r)
        out = set()
        for row in range(r0, r1 + 1):
            base = row * self.t
            for col in range(c0, c1 + 1):
                out.add((base + col) % self.p)
        return out

    def partition_of_point(self, x: float, y: float) -> int:
        col = self._clamp(int((x - self.universe.xlo) * self.inv_x))
        row = self._clamp(int((y - self.universe.ylo) * self.inv_y))
        return (row * self.t + col) % self.p


def ref_point(ra: Rect, rb: Rect) -> Tuple[float, float]:
    return (
        ra.xlo if ra.xlo >= rb.xlo else rb.xlo,
        ra.ylo if ra.ylo >= rb.ylo else rb.ylo,
    )


def _distribute(source: Stream, parts: List[Stream], grid: TileGrid,
                env) -> int:
    """Scan ``source`` and replicate each rectangle to its partitions.

    Returns the total number of copies written (the replication factor
    numerator for ``detail``).
    """
    copies = 0
    ops = 0
    for r in source.scan():
        targets = grid.partitions_of(r)
        ops += 1 + len(targets)
        for t in targets:
            parts[t].append(r)
        copies += len(targets)
    env.charge("partition", ops)
    return copies
