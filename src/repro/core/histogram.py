"""Grid-based spatial histograms for selectivity estimation.

Section 6.3 proposes deciding between the index-based and sort-based
paths with "a simple cost model", estimating the fraction of leaf pages
a join touches "using, e.g., the spatial histograms developed in [1]"
(Acharya, Poosala & Ramaswamy, SIGMOD'99).  This module implements the
grid flavour of those histograms: the universe is cut into a uniform
grid; each cell records how many rectangles have their center there and
the running average rectangle extent.  Two estimators are derived:

* :meth:`SpatialHistogram.estimate_join_pairs` — expected number of
  intersecting pairs against another histogram (per-cell density
  product, extended by the average-extent Minkowski term);
* :meth:`SpatialHistogram.leaf_fraction` — the fraction of this
  relation's *occupied* cells that fall inside a query window, a proxy
  for the fraction of index leaves a localized join would visit, which
  is exactly the quantity the paper's ~60% rule needs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.geom.rect import Rect

DEFAULT_GRID = 32


class SpatialHistogram:
    """Uniform-grid histogram of rectangle centers and extents."""

    def __init__(self, universe: Rect, grid: int = DEFAULT_GRID) -> None:
        if grid < 1:
            raise ValueError("grid must be at least 1")
        self.universe = universe
        self.grid = grid
        span_x = universe.xhi - universe.xlo
        span_y = universe.yhi - universe.ylo
        self.cell_w = span_x / grid if span_x > 0 else 1.0
        self.cell_h = span_y / grid if span_y > 0 else 1.0
        self.counts: List[int] = [0] * (grid * grid)
        self.sum_w: List[float] = [0.0] * (grid * grid)
        self.sum_h: List[float] = [0.0] * (grid * grid)
        self.total = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, rects: Iterable[Rect], universe: Rect,
              grid: int = DEFAULT_GRID) -> "SpatialHistogram":
        h = cls(universe, grid)
        for r in rects:
            h.add(r)
        return h

    def add(self, r: Rect) -> None:
        cx = (r.xlo + r.xhi) * 0.5
        cy = (r.ylo + r.yhi) * 0.5
        idx = self._cell_index(cx, cy)
        self.counts[idx] += 1
        self.sum_w[idx] += r.xhi - r.xlo
        self.sum_h[idx] += r.yhi - r.ylo
        self.total += 1

    # -- estimators -----------------------------------------------------------

    def estimate_join_pairs(self, other: "SpatialHistogram") -> float:
        """Expected intersecting pairs against ``other``.

        Requires both histograms on the same universe and grid (the
        planner builds them that way).  Per cell, the expected pairs are
        ``na * nb * P(overlap)`` with ``P`` the Minkowski-sum area of
        the average extents, clipped at 1 — the uniform-within-cell
        assumption of [1].
        """
        self._check_compatible(other)
        est = 0.0
        for i, na in enumerate(self.counts):
            nb = other.counts[i]
            if na == 0 or nb == 0:
                continue
            avg_wa = self.sum_w[i] / na
            avg_ha = self.sum_h[i] / na
            avg_wb = other.sum_w[i] / nb
            avg_hb = other.sum_h[i] / nb
            p_x = min(1.0, (avg_wa + avg_wb) / self.cell_w)
            p_y = min(1.0, (avg_ha + avg_hb) / self.cell_h)
            est += na * nb * p_x * p_y
        return est

    def leaf_fraction(self, window: Optional[Rect]) -> float:
        """Fraction of this relation's data (cell-weighted) inside ``window``.

        ``None`` means an unbounded window: fraction 1.  This stands in
        for "the fraction of leaf nodes involved in the join" of
        Section 6.3: leaves follow the data distribution, so the mass of
        occupied cells inside the window tracks the mass of leaves the
        pruned index traversal must visit.
        """
        if window is None:
            return 1.0
        if self.total == 0:
            return 0.0
        inside = 0
        g = self.grid
        for row in range(g):
            cell_ylo = self.universe.ylo + row * self.cell_h
            cell_yhi = cell_ylo + self.cell_h
            if cell_yhi < window.ylo or cell_ylo > window.yhi:
                continue
            base = row * g
            for col in range(g):
                n = self.counts[base + col]
                if n == 0:
                    continue
                cell_xlo = self.universe.xlo + col * self.cell_w
                cell_xhi = cell_xlo + self.cell_w
                if cell_xhi < window.xlo or cell_xlo > window.xhi:
                    continue
                inside += n
        return inside / self.total

    # -- plumbing ----------------------------------------------------------

    def occupied_cells(self) -> int:
        return sum(1 for c in self.counts if c)

    def _cell_index(self, x: float, y: float) -> int:
        col = int((x - self.universe.xlo) / self.cell_w)
        row = int((y - self.universe.ylo) / self.cell_h)
        col = min(max(col, 0), self.grid - 1)
        row = min(max(row, 0), self.grid - 1)
        return row * self.grid + col

    def _check_compatible(self, other: "SpatialHistogram") -> None:
        if self.grid != other.grid or self.universe != other.universe:
            raise ValueError(
                "histograms must share universe and grid for estimation"
            )
