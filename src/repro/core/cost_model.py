"""The paper's cost model: when is an index worth using? (Section 6.3.)

The argument, made concrete:  with the output excluded,

* the sort-based path (SSSJ) reads the data three times and writes it
  twice; with a write costing 1.5x a sequential read that is the
  equivalent of **6n sequential page reads** of data;
* the index path (PQ over indexes) touches each participating index
  page exactly once, but in sweep order — i.e. *random* reads.  With a
  random read costing ``r`` sequential reads, joining a fraction ``f``
  of the index costs **r·f·n** sequential-read equivalents.

The index wins iff ``r·f·n < 6n``, i.e. ``f < 6/r``; the paper's disks
have r ≈ 10, giving the quoted "use the index only when the join
involves less than 60% of the leaf nodes".

:class:`CostModel` computes these estimates from a
:class:`~repro.sim.machines.MachineSpec` and the active scale config, so
the crossover adapts to the machine — precisely what the paper's
"cost-based approach" asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.machines import MachineSpec
from repro.sim.scale import ScaleConfig

#: The paper's write-cost assumption (Section 6.3).
WRITE_FACTOR = 1.5
#: Read passes / write passes of the sort-based path (Section 3.1).
SSSJ_READ_PASSES = 3
SSSJ_WRITE_PASSES = 2


@dataclass(frozen=True)
class JoinCostEstimate:
    """Estimated I/O seconds for one strategy on one machine."""

    strategy: str
    io_seconds: float
    detail: str = ""

    def __lt__(self, other: "JoinCostEstimate") -> bool:
        return self.io_seconds < other.io_seconds


class CostModel:
    """I/O cost estimates for the competing join strategies."""

    def __init__(self, machine: MachineSpec, scale: ScaleConfig) -> None:
        self.machine = machine
        self.scale = scale

    # -- primitive costs -------------------------------------------------

    def sequential_read_seconds(self, nbytes: int) -> float:
        return self.machine.disk.transfer_seconds(nbytes)

    def random_page_read_seconds(self) -> float:
        page = self.scale.index_page_bytes
        latency = (self.machine.disk.avg_read_ms / 1e3) / (
            self.scale.latency_scale
        )
        return latency + self.machine.disk.transfer_seconds(page)

    @property
    def random_to_sequential_ratio(self) -> float:
        """r: cost of one random index-page read in sequential-page units."""
        page = self.scale.index_page_bytes
        return self.random_page_read_seconds() / (
            self.machine.disk.transfer_seconds(page)
        )

    def crossover_fraction(self) -> float:
        """The f* below which the index path beats sorting (paper: ~0.6)."""
        passes = SSSJ_READ_PASSES + SSSJ_WRITE_PASSES * WRITE_FACTOR
        return min(1.0, passes / self.random_to_sequential_ratio)

    # -- strategy estimates ----------------------------------------------------

    def estimate_sssj(self, bytes_a: int, bytes_b: int) -> JoinCostEstimate:
        """Sort both inputs sequentially, sweep once."""
        total = bytes_a + bytes_b
        passes = SSSJ_READ_PASSES + SSSJ_WRITE_PASSES * WRITE_FACTOR
        secs = passes * self.sequential_read_seconds(total)
        return JoinCostEstimate(
            "SSSJ", secs,
            detail=f"{passes:.1f} passes over {total} bytes",
        )

    def estimate_pq_indexed(
        self,
        pages_a: int,
        pages_b: int,
        fraction_a: float = 1.0,
        fraction_b: float = 1.0,
    ) -> JoinCostEstimate:
        """Random-read every participating index page exactly once."""
        pages = pages_a * fraction_a + pages_b * fraction_b
        secs = pages * self.random_page_read_seconds()
        return JoinCostEstimate(
            "PQ(index)", secs,
            detail=(
                f"{pages:.0f} random page reads "
                f"(fractions {fraction_a:.2f}/{fraction_b:.2f})"
            ),
        )

    def estimate_pq_mixed(
        self,
        pages_indexed: int,
        fraction: float,
        bytes_sorted: int,
    ) -> JoinCostEstimate:
        """One indexed input (traversed) plus one sorted stream input."""
        index_secs = (
            pages_indexed * fraction * self.random_page_read_seconds()
        )
        passes = SSSJ_READ_PASSES + SSSJ_WRITE_PASSES * WRITE_FACTOR
        sort_secs = passes * self.sequential_read_seconds(bytes_sorted)
        return JoinCostEstimate(
            "PQ(mixed)", index_secs + sort_secs,
            detail=(
                f"{pages_indexed * fraction:.0f} random pages + sorting "
                f"{bytes_sorted} bytes"
            ),
        )

    def estimate_st(
        self,
        pages_a: int,
        pages_b: int,
        reread_factor: float = 1.3,
        sequential_share: float = 0.7,
    ) -> JoinCostEstimate:
        """Synchronized traversal: re-reads plus partial sequentiality.

        ``reread_factor`` reflects Table 4's 1.14-1.63x page re-request
        range when the trees outgrow the pool; ``sequential_share`` the
        fraction of accesses that ride the bulk-loaded layout.  Both are
        observable from the buffer pool and layout, but for planning we
        use the paper-calibrated defaults.
        """
        pages = (pages_a + pages_b) * reread_factor
        page_bytes = self.scale.index_page_bytes
        seq = self.machine.disk.transfer_seconds(page_bytes)
        rand = self.random_page_read_seconds()
        secs = pages * (
            sequential_share * seq + (1.0 - sequential_share) * rand
        )
        return JoinCostEstimate(
            "ST", secs,
            detail=f"{pages:.0f} requests, {sequential_share:.0%} sequential",
        )
