"""The result record every join algorithm returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class JoinResult:
    """Outcome of one spatial join (filter step).

    Attributes
    ----------
    algorithm:
        Short name ("SSSJ", "PBSM", "ST", "PQ", ...).
    n_pairs:
        Number of intersecting MBR pairs reported.
    pairs:
        The (left id, right id) pairs themselves, present only when the
        caller asked to collect them (large experiments count only).
    max_memory_bytes:
        High-water mark of the algorithm's internal-memory structures
        (sweep actives + queues/partitions), the Table 3 measure.
    detail:
        Algorithm-specific metrics: page requests, partition counts,
        queue sizes, buffer-pool hit rates, ...
    """

    algorithm: str
    n_pairs: int
    pairs: Optional[List[Tuple[int, int]]] = None
    max_memory_bytes: int = 0
    detail: Dict[str, float] = field(default_factory=dict)

    def pair_set(self) -> set:
        """The result as a set, for equivalence checks between algorithms."""
        if self.pairs is None:
            raise ValueError(
                f"{self.algorithm} ran in count-only mode; "
                "re-run with collect_pairs=True"
            )
        return set(self.pairs)
