"""Breadth-first synchronized R-tree traversal (Huang et al. [16]).

Section 3.3 mentions the alternative the paper benchmarks ST against in
spirit: "Huang, Jing, and Rundensteiner proposed an algorithm based on
breadth-first traversal that is reported to take approximately the same
amount of CPU time as ST, while performing an almost optimal number of
I/O operations (if a sufficiently large buffer pool is available)."

The idea: instead of descending depth-first pair by pair, process the
tree *level by level*.  At each level the algorithm knows every node
pair that must be examined, so it can fetch the distinct pages of that
level in ascending page-id order — each page at most once per level,
and (on a bulk-loaded tree) in on-disk order, i.e. near-sequentially.
The price is the *intermediate join index*: the full list of matching
node pairs for the next level must be materialized, which is what the
paper's "sufficiently large buffer pool" caveat refers to; we track its
high-water mark in the result's ``max_memory_bytes``.

The per-pair computation (search-space restriction + Forward-Sweep) is
identical to ST's, so CPU comes out "approximately the same", as [16]
reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.join_result import JoinResult
from repro.core.sweep import forward_sweep_pairs
from repro.geom.rect import Rect, intersection, intersects
from repro.rtree.node import Node
from repro.rtree.rtree import RTree

#: Bytes per intermediate join-index entry: two page ids.
PAIR_BYTES = 8


def st_bfs_join(
    tree_a: RTree,
    tree_b: RTree,
    collect_pairs: bool = False,
) -> JoinResult:
    """Join two R-trees level by level with sorted page fetches."""
    if tree_a.store is not tree_b.store:
        raise ValueError("BFS join expects both indexes on one page store")
    env = tree_a.store.disk.env

    pairs: Optional[List[Tuple[int, int]]] = [] if collect_pairs else None
    n_pairs = 0

    def sink(ra: Rect, rb: Rect) -> None:
        nonlocal n_pairs
        n_pairs += 1
        if pairs is not None:
            pairs.append((ra.rid, rb.rid))

    disk_reads = 0
    max_join_index = 0
    # Current frontier: node-id pairs, one node per tree.  Levels may
    # differ while the taller tree descends against the other's root.
    frontier: List[Tuple[int, int]] = [
        (tree_a.root_page_id, tree_b.root_page_id)
    ]
    while frontier:
        max_join_index = max(max_join_index, len(frontier))
        # Fetch each distinct page of this round once, in page-id
        # order — ascending disk order on a bulk-loaded tree.
        ids_a = sorted({pa for pa, _ in frontier})
        ids_b = sorted({pb for _, pb in frontier})
        nodes_a = _fetch(tree_a, ids_a)
        nodes_b = _fetch(tree_b, ids_b)
        disk_reads += len(ids_a) + len(ids_b)

        next_frontier: List[Tuple[int, int]] = []
        for pa, pb in frontier:
            _match(nodes_a[pa], nodes_b[pb], next_frontier, sink, env)
        frontier = next_frontier

    return JoinResult(
        algorithm="ST-BFS",
        n_pairs=n_pairs,
        pairs=pairs,
        max_memory_bytes=max_join_index * PAIR_BYTES,
        detail={
            "disk_reads": disk_reads,
            "max_join_index_pairs": max_join_index,
            "lower_bound_pages": tree_a.page_count + tree_b.page_count,
        },
    )


def _fetch(tree: RTree, page_ids: List[int]) -> Dict[int, Node]:
    return {pid: tree.read_node(pid) for pid in page_ids}


def _match(node_a: Node, node_b: Node,
           next_frontier: List[Tuple[int, int]], sink, env) -> None:
    """ST's per-pair computation, emitting into the next frontier."""
    region = intersection(node_a.mbr(), node_b.mbr())
    if region is None:
        return
    live_a = [e for e in node_a.entries if intersects(e, region)]
    live_b = [e for e in node_b.entries if intersects(e, region)]
    env.charge("st_filter", 2 * (len(node_a.entries) + len(node_b.entries)))
    if not live_a or not live_b:
        return
    if node_a.level == node_b.level:
        if node_a.is_leaf:
            forward_sweep_pairs(live_a, live_b, env, on_pair=sink)
        else:
            forward_sweep_pairs(
                live_a, live_b, env,
                on_pair=lambda ea, eb: next_frontier.append(
                    (ea.rid, eb.rid)
                ),
            )
    elif node_a.level > node_b.level:
        b_mbr = node_b.mbr()
        for ea in live_a:
            if intersects(ea, b_mbr):
                next_frontier.append((ea.rid, node_b.page_id))
    else:
        a_mbr = node_a.mbr()
        for eb in live_b:
            if intersects(eb, a_mbr):
                next_frontier.append((node_a.page_id, eb.rid))
