"""Multi-way intersection joins by cascading PQ (end of Section 4).

"A 3-way intersection join can be performed by feeding the output of a
two-way join directly into another join with a third (indexed or
non-indexed) input."  The piece that makes this work is an invariant of
the sweep: a pair is discovered when the later of its two rectangles
arrives, so the intersection rectangles of the output stream are
themselves sorted by lower y-coordinate and need no re-sort before
entering the next sweep.

``multiway_join`` folds any number of inputs left-to-right.  Result
tuples carry one object id per input relation; an id tuple is reported
once per distinct combination of objects whose MBRs have a common
intersection... more precisely, whose left-fold of pairwise
intersections is non-empty — which for axis-parallel rectangles is
exactly the n-way common-intersection predicate, since
``(a ∩ b) ∩ c = a ∩ b ∩ c``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.join_result import JoinResult
from repro.core.pq_join import JoinInput, PQConfig, _as_source, _bounding_box
from repro.core.sources import JoinSource, SortedSource
from repro.core.sweep import (
    DEFAULT_STRIPS,
    ForwardSweep,
    StripedSweep,
    sweep_join_iter,
)
from repro.geom.rect import Rect, union_mbr
from repro.storage.disk import Disk


def multiway_join(
    inputs: Sequence[JoinInput],
    disk: Disk,
    universe: Optional[Rect] = None,
    config: PQConfig = PQConfig(),
    collect_tuples: bool = False,
) -> JoinResult:
    """N-way intersection join over any mix of representations.

    Returns a :class:`JoinResult` whose ``pairs`` field (when collected)
    holds n-ary id tuples rather than 2-tuples.
    """
    if len(inputs) < 2:
        raise ValueError("multiway_join needs at least two inputs")
    env = disk.env

    if universe is None:
        boxes = [b for b in (_bounding_box(i) for i in inputs) if b]
        if boxes:
            acc = boxes[0]
            for b in boxes[1:]:
                acc = union_mbr(acc, b)
            universe = acc

    nstrips = config.nstrips if config.nstrips is not None else DEFAULT_STRIPS

    def factory():
        if config.structure == "striped" and universe is not None:
            return StripedSweep(universe.xlo, universe.xhi, nstrips)
        return ForwardSweep()

    # Intersection rectangles flowing between stages carry synthetic
    # ids; this table maps them back to the tuple of original ids.
    provenance: Dict[int, Tuple[int, ...]] = {}
    next_synth = [1]

    def tag(rect: Rect, ids: Tuple[int, ...]) -> Rect:
        synth = next_synth[0]
        next_synth[0] += 1
        provenance[synth] = ids
        return Rect(rect.xlo, rect.xhi, rect.ylo, rect.yhi, synth)

    current: SortedSource = _as_source(inputs[0], disk, None, tag="mw0")
    stage = 0
    for nxt_input in inputs[1:]:
        stage += 1
        nxt = _as_source(nxt_input, disk, None, tag=f"mw{stage}")
        pair_iter = sweep_join_iter(
            iter(current), iter(nxt), factory, env
        )

        def tagged_intersections(pi=pair_iter, first=(stage == 1)):
            from repro.geom.rect import intersection

            for ra, rb in pi:
                inter = intersection(ra, rb)
                if inter is None:  # pragma: no cover
                    continue
                if first:
                    ids = (ra.rid, rb.rid)
                else:
                    # An intermediate rectangle can pair with several
                    # rectangles of the next input, so its provenance is
                    # read (not popped) here.
                    ids = provenance[ra.rid] + (rb.rid,)
                yield tag(inter, ids)

        current = _GenSource(tagged_intersections())

    tuples: Optional[List[Tuple[int, ...]]] = [] if collect_tuples else None
    n = 0
    max_id_width = stage + 1
    for rect in current:
        n += 1
        if tuples is not None:
            tuples.append(provenance[rect.rid])
    return JoinResult(
        algorithm=f"PQ-{max_id_width}way",
        n_pairs=n,
        pairs=tuples,
        max_memory_bytes=0,
        detail={"ways": max_id_width},
    )


class _GenSource(SortedSource):
    """Adapter: a generator of y-sorted rectangles as a SortedSource."""

    def __init__(self, gen) -> None:
        self.gen = gen
        self.max_memory_bytes = 0

    def __iter__(self):
        return self.gen
