"""Vectorized batched forward sweep over columnar inputs.

The pure-python kernel (:func:`repro.core.sweep.forward_sweep_pairs_batched`)
walks a merged event stream, probing a lazily-expired active list per
side.  This module computes the *same* output — same pairs, in the
same emit order, with the same op accounting — from whole-column numpy
arithmetic:

* **Merged event order.**  Each side is sorted by ``(ylo, xlo)``
  (stable, like the python sort); the merge loop takes from A on ties,
  which is exactly a stable argsort by ``ylo`` over ``[A; B]``.
* **Pairs.**  At the event of the later rectangle, the earlier one is
  in the opposite active list and pairs iff it is still alive
  (``earlier.yhi >= later.ylo``) and the x-intervals overlap.  The
  kernel evaluates that predicate in blocks: each block of events is
  tested against the (pruned) active arrays and against its own
  earlier events in two broadcasted masks, preserving the sweep's
  ``O(events x active)`` shape rather than degrading to all-pairs.
  The python kernel emits pairs grouped by the later event, in active
  list (= insertion) order — i.e. sorted by ``(later, earlier)`` event
  index — so one lexsort reproduces the exact emit order.
* **Op accounting.**  The python kernel's ops depend on the *raw*
  (live + lazily-dead) active sizes and its amortized compaction
  schedule.  Both derive from two vectorizable quantities: how many
  opposite events precede event *i*, and how many of them died before
  ``y_i`` (every rectangle with ``yhi < y_i`` was inserted before *i*,
  because ``ylo <= yhi``).  A cheap O(events) integer loop replays the
  probe/insert/compact schedule on those counts — no rectangle is
  touched — and lands on bit-identical ``cpu_ops`` and
  ``max_active_items``.

Inputs with inverted y-intervals (``yhi < ylo``) break the
"dead implies already inserted" identity; every entry point returns
``None`` for those, and the caller falls back to the python kernel.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.sweep import SweepStats
from repro.geom.rect import RECT_BYTES, Rect

#: Upper bound on candidate pairs materialized per chunk (see
#: :func:`_find_pairs`).  Bounds peak memory at roughly
#: ``24 bytes x CHUNK_CANDIDATES`` while keeping the number of numpy
#: passes per sweep near one for everything but pathological overlap.
CHUNK_CANDIDATES = 4_000_000

_EMPTY_I64 = np.empty(0, dtype=np.int64)


# -- column extraction -------------------------------------------------------


def _columns(side) -> Tuple[np.ndarray, ...]:
    """``(xlo, xhi, ylo, yhi, rid)`` arrays from a tile or Rect list.

    Columnar tiles (``array('d')`` columns or shared-memory
    memoryviews) convert zero-copy via ``frombuffer``; boxed Rect
    lists pay one bulk conversion.
    """
    if isinstance(side, (list, tuple)):
        if not side:
            e = np.empty(0, dtype=np.float64)
            return e, e, e, e, _EMPTY_I64
        arr = np.asarray(side, dtype=np.float64)
        return (
            np.ascontiguousarray(arr[:, 0]),
            np.ascontiguousarray(arr[:, 1]),
            np.ascontiguousarray(arr[:, 2]),
            np.ascontiguousarray(arr[:, 3]),
            arr[:, 4].astype(np.int64),
        )
    return (
        np.frombuffer(side.xlo, dtype=np.float64),
        np.frombuffer(side.xhi, dtype=np.float64),
        np.frombuffer(side.ylo, dtype=np.float64),
        np.frombuffer(side.yhi, dtype=np.float64),
        np.frombuffer(side.rid, dtype=np.int64),
    )


def _sort_side(cols: Tuple[np.ndarray, ...]) -> Tuple[np.ndarray, ...]:
    """Columns reordered by ``(ylo, xlo)``, stable — the python sort key."""
    xlo, xhi, ylo, yhi, rid = cols
    if len(ylo) <= 1:
        return cols
    order = np.lexsort((xlo, ylo))
    return (xlo[order], xhi[order], ylo[order], yhi[order], rid[order])


def _is_sorted_by_ylo(ylo: np.ndarray) -> bool:
    return len(ylo) <= 1 or bool(np.all(ylo[1:] >= ylo[:-1]))


# -- the vectorized sweep core -----------------------------------------------


def _find_pairs(ylo: np.ndarray, yhi: np.ndarray, xlo: np.ndarray,
                xhi: np.ndarray, is_a: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """All sweep pairs as ``(later, earlier)`` event indices, emit order.

    Because events are sorted by ``ylo``, the earlier rectangle *c* of
    a pair is alive at the later event *e* exactly when
    ``ylo[e] <= yhi[c]`` — i.e. *e* lies in the contiguous index range
    ``(c, hi_c)`` with ``hi_c = searchsorted(ylo, yhi[c], 'right')``.
    Candidates are enumerated one direction at a time (A-earlier with
    B-later, then B-earlier with A-later) through each side's compact
    index space, so only opposite-side candidates are ever
    materialized — their total count equals the live probe work the
    python kernel does — and the only per-candidate filter left is the
    x-overlap test.  Enumeration is chunked so peak memory stays
    bounded on pathologically overlapping inputs.
    """
    n = len(ylo)
    if n == 0:
        return _EMPTY_I64, _EMPTY_I64
    # hi[c]: first event index no longer alive for c (hi[c] >= c + 1).
    hi = np.searchsorted(ylo, yhi, side="right")
    # Inclusive per-side prefix counts: cnt_a[i] = #A events <= i.
    cnt_a = np.cumsum(is_a)
    cnt_b = np.arange(1, n + 1, dtype=cnt_a.dtype) - cnt_a
    idx_a = np.nonzero(is_a)[0]
    idx_b = np.nonzero(~is_a)[0]
    later_parts: List[np.ndarray] = []
    earlier_parts: List[np.ndarray] = []
    for c_side, e_side, cnt_e in (
        (idx_a, idx_b, cnt_b),
        (idx_b, idx_a, cnt_a),
    ):
        if not (len(c_side) and len(e_side)):
            continue
        # Later opposite-side events for c occupy the compact range
        # [cnt_e[c], cnt_e[hi[c] - 1]) of e_side.
        lo_j = cnt_e[c_side]
        hi_j = cnt_e[hi[c_side] - 1]
        counts = hi_j - lo_j
        cum = np.cumsum(counts)
        xlo_e = xlo[e_side]
        xhi_e = xhi[e_side]
        start = 0
        m = len(c_side)
        while start < m:
            base = int(cum[start - 1]) if start else 0
            stop = int(np.searchsorted(cum, base + CHUNK_CANDIDATES,
                                       side="left")) + 1
            stop = min(m, max(stop, start + 1))
            cc = counts[start:stop]
            total = int(cc.sum())
            if total:
                c_rep = np.repeat(c_side[start:stop], cc)
                c_starts = np.cumsum(cc) - cc
                j = (
                    np.arange(total, dtype=np.int64)
                    + np.repeat(lo_j[start:stop] - c_starts, cc)
                )
                keep = (
                    (np.repeat(xlo[c_side[start:stop]], cc) <= xhi_e[j])
                    & (xlo_e[j] <= np.repeat(xhi[c_side[start:stop]], cc))
                )
                later_parts.append(e_side[j[keep]])
                earlier_parts.append(c_rep[keep])
            start = stop
    if not later_parts:
        return _EMPTY_I64, _EMPTY_I64
    later = np.concatenate(later_parts)
    earlier = np.concatenate(earlier_parts)
    # The python kernel emits grouped by the later event, in active
    # list (= insertion = event) order: sort by (later, earlier).
    # Fused into one unique int64 key — cheaper than a lexsort.
    order = np.argsort(later * n + earlier)
    return later[order], earlier[order]


def _simulate_ops(is_a: np.ndarray, ylo: np.ndarray,
                  yhi: np.ndarray) -> Tuple[int, int]:
    """Replay the probe/insert/compact op schedule on merged events.

    Returns ``(cpu_ops, max_active_items)`` bit-identical to
    :func:`~repro.core.sweep.sweep_join_batched` over the same events.
    ``live_x[i]`` is the live size of side x's active list when event
    *i* probes/compacts: inserts before *i* minus deaths before
    ``y_i`` (validity ``ylo <= yhi`` guarantees every death happened
    after its insert).
    """
    ins_a = np.cumsum(is_a) - is_a
    not_a = ~is_a
    ins_b = np.cumsum(not_a) - not_a
    deaths_a = np.sort(yhi[is_a])
    deaths_b = np.sort(yhi[not_a])
    live_a = (ins_a - np.searchsorted(deaths_a, ylo, side="left")).tolist()
    live_b = (ins_b - np.searchsorted(deaths_b, ylo, side="left")).tolist()
    side_a = is_a.tolist()

    ops = 0
    raw_a = raw_b = 0
    compact_at = 64
    max_active = 0
    for i, a_event in enumerate(side_a):
        if a_event:
            ops += raw_b + 1  # probe the whole raw B list, insert into A
            raw_b = live_b[i]
            raw_a += 1
        else:
            ops += raw_a + 1
            raw_a = live_a[i]
            raw_b += 1
        total = raw_a + raw_b
        if total > compact_at:
            ops += total  # compact() scans both raw lists
            if a_event:
                raw_a = live_a[i] + 1  # the just-inserted rect is live
                raw_b = live_b[i]
            else:
                raw_a = live_a[i]
                raw_b = live_b[i] + 1
            total = raw_a + raw_b
            doubled = 2 * total
            compact_at = doubled if doubled > 64 else 64
            if total > max_active:
                max_active = total
        elif total <= 64 and total > max_active:
            max_active = total
    return ops, max_active


class _Merged:
    """Merged event columns of one sweep (sorted sides, A-first ties)."""

    __slots__ = ("xlo", "xhi", "ylo", "yhi", "rid", "is_a", "n")

    def __init__(self, sa: Tuple[np.ndarray, ...],
                 sb: Tuple[np.ndarray, ...]) -> None:
        na = len(sa[0])
        nb = len(sb[0])
        self.n = na + nb
        is_a = np.zeros(self.n, dtype=bool)
        is_a[:na] = True
        ylo_cat = np.concatenate((sa[2], sb[2]))
        order = np.argsort(ylo_cat, kind="stable")
        self.xlo = np.concatenate((sa[0], sb[0]))[order]
        self.xhi = np.concatenate((sa[1], sb[1]))[order]
        self.ylo = ylo_cat[order]
        self.yhi = np.concatenate((sa[3], sb[3]))[order]
        self.rid = np.concatenate((sa[4], sb[4]))[order]
        self.is_a = is_a[order]


def _sweep_merged(m: _Merged) -> Tuple[np.ndarray, np.ndarray, SweepStats]:
    """Pairs (as merged-event ``a_idx``/``b_idx``) plus kernel stats."""
    later, earlier = _find_pairs(m.ylo, m.yhi, m.xlo, m.xhi, m.is_a)
    ops, max_active = _simulate_ops(m.is_a, m.ylo, m.yhi)
    stats = SweepStats(
        pairs=int(later.size),
        cpu_ops=ops,
        max_active_items=max_active,
        max_active_bytes=max_active * RECT_BYTES,
    )
    if later.size:
        a_later = m.is_a[later]
        a_idx = np.where(a_later, later, earlier)
        b_idx = np.where(a_later, earlier, later)
    else:
        a_idx = b_idx = _EMPTY_I64
    return a_idx, b_idx, stats


def _charge_sort(env, n: int) -> int:
    """The python kernel's sort charge: ``int(n * log2(n))`` for n > 1."""
    if n > 1:
        ops = int(n * math.log2(n))
        env.charge("sweep", ops)
        return ops
    return 0


# -- public entry points -----------------------------------------------------


def sweep_pairs_batched(
    rects_a, rects_b, env, presorted: bool = False,
) -> Optional[Tuple[List[Tuple[Rect, Rect]], SweepStats]]:
    """Vectorized :func:`~repro.core.sweep.forward_sweep_pairs_batched`.

    Accepts Rect lists or columnar tiles on either side.  Returns
    ``None`` when the input is outside the kernel's model (inverted
    y-intervals) — the caller falls back to the python kernel.
    """
    ca = _columns(rects_a)
    cb = ca if rects_b is rects_a else _columns(rects_b)
    if np.any(ca[3] < ca[2]) or np.any(cb[3] < cb[2]):
        return None
    if presorted:
        # The python merge loop raises on the first out-of-order event;
        # an unsorted presorted=True input is a caller bug either way.
        if not _is_sorted_by_ylo(ca[2]):
            raise ValueError("source A is not sorted by ylo")
        if not _is_sorted_by_ylo(cb[2]):
            raise ValueError("source B is not sorted by ylo")
        sa, sb = ca, cb
    else:
        sa = _sort_side(ca)
        sb = sa if cb is ca else _sort_side(cb)
        _charge_sort(env, len(sa[0]) + len(sb[0]))
    m = _Merged(sa, sb)
    a_idx, b_idx, stats = _sweep_merged(m)
    env.charge("sweep", stats.cpu_ops)
    events = list(map(Rect, m.xlo.tolist(), m.xhi.tolist(),
                      m.ylo.tolist(), m.yhi.tolist(), m.rid.tolist()))
    pairs = [
        (events[a], events[b])
        for a, b in zip(a_idx.tolist(), b_idx.tolist())
    ]
    return pairs, stats


def sweep_tile(
    side_a, side_b, self_join: bool, grid_spec: tuple, part_id: int,
    window, collect: bool,
) -> Optional[Tuple[int, Optional[List[Tuple[int, int]]], int, int]]:
    """The whole tile task, vectorized: sweep + ownership + dedup.

    Mirrors :func:`repro.engine.executor.sweep_tile_task`'s python
    body — window pruning, the batched sweep (sort charge included),
    reference-point ownership against the PBSM grid, self-join dedup —
    without boxing a single ``Rect``.  Returns the task outcome
    ``(count, owned pairs or None, cpu_ops, dups)``, or ``None`` when
    the input is outside the kernel's model.
    """
    ca = _columns(side_a)
    cb = ca if (side_b is None or side_b is side_a) else _columns(side_b)
    if np.any(ca[3] < ca[2]) or (cb is not ca and np.any(cb[3] < cb[2])):
        return None
    if window is not None:
        ca = _window_filter(ca, window)
        cb = ca if (self_join or cb is ca) else _window_filter(cb, window)
    sa = _sort_side(ca)
    sb = sa if cb is ca else _sort_side(cb)
    ops = _charge_sort_count(len(sa[0]) + len(sb[0]))
    m = _Merged(sa, sb)
    a_idx, b_idx, stats = _sweep_merged(m)
    ops += stats.cpu_ops

    if a_idx.size:
        rid_a = m.rid[a_idx]
        rid_b = m.rid[b_idx]
        x_ref = np.maximum(m.xlo[a_idx], m.xlo[b_idx])
        y_ref = np.maximum(m.ylo[a_idx], m.ylo[b_idx])
        own = _partition_of_points(x_ref, y_ref, grid_spec) == part_id
        if self_join:
            own &= rid_a < rid_b
        count = int(np.count_nonzero(own))
        dups = int(a_idx.size) - count
        pairs: Optional[List[Tuple[int, int]]] = (
            list(zip(rid_a[own].tolist(), rid_b[own].tolist()))
            if collect else None
        )
    else:
        count = dups = 0
        pairs = [] if collect else None
    return (count, pairs, ops, dups)


def _charge_sort_count(n: int) -> int:
    return int(n * math.log2(n)) if n > 1 else 0


def _window_filter(cols: Tuple[np.ndarray, ...],
                   window) -> Tuple[np.ndarray, ...]:
    """Closed-interval ``Rect.intersects`` pruning over whole columns."""
    xlo, xhi, ylo, yhi, rid = cols
    keep = (
        (xlo <= window.xhi) & (window.xlo <= xhi)
        & (ylo <= window.yhi) & (window.ylo <= yhi)
    )
    if bool(np.all(keep)):
        return cols
    return (xlo[keep], xhi[keep], ylo[keep], yhi[keep], rid[keep])


def _partition_of_points(x: np.ndarray, y: np.ndarray,
                         grid_spec: tuple) -> np.ndarray:
    """Vectorized :meth:`~repro.core.pbsm.TileGrid.partition_of_point`.

    Same arithmetic, same order of operations: the scale factors are
    computed exactly as ``TileGrid.__init__`` does (python floats),
    truncation toward zero matches ``int()``, and clamping matches
    ``_clamp`` — bit-identical partition ids.
    """
    uxlo, uxhi, uylo, uyhi, t, p = grid_spec
    span_x = uxhi - uxlo
    span_y = uyhi - uylo
    inv_x = t / span_x if span_x > 0 else 0.0
    inv_y = t / span_y if span_y > 0 else 0.0
    col = ((x - uxlo) * inv_x).astype(np.int64)
    row = ((y - uylo) * inv_y).astype(np.int64)
    np.clip(col, 0, t - 1, out=col)
    np.clip(row, 0, t - 1, out=row)
    return (row * t + col) % p
