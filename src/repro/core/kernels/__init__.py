"""Runtime-selected sweep kernels.

The batched forward sweep (:func:`repro.core.sweep.forward_sweep_pairs_batched`)
exists in two implementations:

* ``python`` — the pure-python :class:`~repro.core.sweep.ForwardSweep`
  list-scan the repo has always used.  Always available; the reference
  for correctness *and* accounting.
* ``numpy`` — a vectorized kernel (:mod:`repro.core.kernels.np_sweep`)
  that runs the y-interval filter and x-overlap test over whole
  columns.  Bit-identical to the python kernel in the pairs it emits
  (same pairs, same order) and in op accounting (same ``cpu_ops``,
  same ``max_active_items``), so simulated numbers stay comparable
  across kernels; only wall-clock changes.

Selection is by name:

* ``"auto"`` — numpy if importable, python otherwise.  The
  ``REPRO_KERNEL`` environment variable overrides auto-resolution
  (``REPRO_KERNEL=python`` forces the fallback without touching call
  sites — the CI leg that keeps the fallback from rotting), but never
  an explicit kernel choice.
* ``"numpy"`` — explicit; raises if numpy is not importable.
* ``"python"`` — explicit fallback.

``resolve_kernel`` happens once, on the coordinator (engine/executor
construction); workers receive the resolved name inside each task
payload and obey it.  If a worker cannot honour a ``numpy`` request
(or the input contains rectangles the vectorized kernel does not
model, e.g. ``yhi < ylo``), the task falls back to the python kernel
for that task only — the results are identical by contract, so the
fallback is invisible except in wall time.
"""

from __future__ import annotations

import os
from typing import Optional

#: Every acceptable kernel *request*; resolution maps "auto" onto one
#: of the two implementations.
KERNEL_NAMES = ("auto", "numpy", "python")

#: Environment override for ``"auto"`` resolution only.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_numpy_available: Optional[bool] = None


def numpy_available() -> bool:
    """True when the numpy kernel is importable (memoized)."""
    global _numpy_available
    if _numpy_available is None:
        try:
            import numpy  # noqa: F401

            _numpy_available = True
        except ImportError:
            _numpy_available = False
    return _numpy_available


def resolve_kernel(name: str) -> str:
    """Map a kernel request onto ``"numpy"`` or ``"python"``.

    ``"auto"`` resolves to numpy when importable, honouring
    ``REPRO_KERNEL`` (a forced ``numpy`` that is unavailable is
    ignored rather than fatal — the env var is a preference, not an
    API).  An explicit ``"numpy"`` request with no numpy raises: the
    caller asked for something this interpreter cannot provide.
    """
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"kernel must be one of {KERNEL_NAMES}, got {name!r}"
        )
    if name == "auto":
        forced = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
        if forced == "python":
            return "python"
        if forced == "numpy" and numpy_available():
            return "numpy"
        return "numpy" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        raise ValueError(
            "kernel='numpy' requested but numpy is not importable; "
            "use kernel='auto' to fall back silently"
        )
    return name


def sweep_pairs_batched(kernel: str, rects_a, rects_b, env,
                        presorted: bool = False):
    """Dispatch the batched forward sweep to the named kernel.

    The rect-list-level entry point (the tile tasks use the columnar
    entry points in :mod:`np_sweep` directly, skipping Rect boxing).
    Returns ``(pairs, stats)`` exactly like
    :func:`~repro.core.sweep.forward_sweep_pairs_batched`.
    """
    if kernel == "numpy":
        from repro.core.kernels import np_sweep

        out = np_sweep.sweep_pairs_batched(rects_a, rects_b, env,
                                           presorted=presorted)
        if out is not None:
            return out
        # Inputs outside the vectorized kernel's model (e.g. inverted
        # y-intervals): identical results via the reference kernel.
    from repro.core.sweep import forward_sweep_pairs_batched

    return forward_sweep_pairs_batched(rects_a, rects_b, env,
                                       presorted=presorted)
