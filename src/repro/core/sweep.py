"""Internal-memory plane-sweep kernel and its interval structures.

Every join in the paper bottoms out in the same internal computation: a
horizontal sweep-line moves up the y-axis; rectangles currently cut by
the line form two *active sets* (one per input); each arriving rectangle
is tested for x-interval intersection against the opposite active set
(Section 3.1).  The paper's implementations use two structures from
Arge et al. [4]:

* :class:`ForwardSweep` — the classic list-scan used by previous joins
  (Brinkhoff et al., Patel & DeWitt): probe the whole opposite active
  list, lazily evicting dead entries as they are encountered;
* :class:`StripedSweep` — the x-axis is cut into fixed-width strips and
  each active rectangle is registered in every strip it overlaps, so a
  probe touches only the strips the probing rectangle spans.  [4]
  measured it 2-5x faster than the alternatives on real data; the
  ablation bench reproduces that factor via the kernel's operation
  counts.

Both structures count their comparisons locally and flush them to the
environment in one call per join, keeping the accounting off the inner
loop.  They also track their maximum resident size in bytes — the
"Sweep Structure" row of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.geom.rect import RECT_BYTES, Rect

#: Fallback strip count for Striped-Sweep when nothing is known about
#: rectangle widths.  Prefer :func:`auto_strips`, which sizes strips
#: relative to the average rectangle width as in [4].
DEFAULT_STRIPS = 256

#: Upper bound on automatic strip counts (beyond this, strip overhead
#: and replication dominate any probe savings).
MAX_AUTO_STRIPS = 2048

PairSink = Callable[[Rect, Rect], None]


def auto_strips(universe_xspan: float, avg_width: float,
                cap: int = MAX_AUTO_STRIPS) -> int:
    """Strip count such that an average rectangle spans ~1-2 strips.

    [4] sizes strips relative to the data: too-fine strips replicate
    every rectangle into many strips (hurting memory and inserts),
    too-coarse strips degenerate to Forward-Sweep.  ``avg_width == 0``
    (points) gets the cap.
    """
    if universe_xspan <= 0:
        return 1
    if avg_width <= 0:
        return cap
    return max(1, min(cap, int(universe_xspan / (2.0 * avg_width))))


class ForwardSweep:
    """Active set as a single list with lazy expiry during probes."""

    __slots__ = ("items", "ops", "size_items")

    def __init__(self) -> None:
        self.items: List[Rect] = []
        self.ops = 0
        self.size_items = 0

    def insert(self, r: Rect) -> None:
        self.items.append(r)
        self.size_items += 1
        self.ops += 1

    def probe(self, r: Rect, sweep_y: float, emit: PairSink,
              probe_is_left: bool) -> None:
        """Emit pairs with every live x-overlapping entry; evict dead ones.

        ``probe_is_left`` fixes the output orientation: pairs are always
        emitted as (left-input rect, right-input rect).
        """
        items = self.items
        write = 0
        ops = 0
        rxlo = r.xlo
        rxhi = r.xhi
        for cand in items:
            ops += 1
            if cand.yhi < sweep_y:
                continue
            items[write] = cand
            write += 1
            if cand.xlo <= rxhi and rxlo <= cand.xhi:
                if probe_is_left:
                    emit(r, cand)
                else:
                    emit(cand, r)
        removed = len(items) - write
        if removed:
            del items[write:]
            self.size_items -= removed
        self.ops += ops

    def probe_batch(self, r: Rect, sweep_y: float,
                    out: List[Tuple[Rect, Rect]],
                    probe_is_left: bool) -> None:
        """Batched :meth:`probe`: append oriented pairs straight to ``out``.

        The zero-callback twin of :meth:`probe` — no ``PairSink``
        invocation per pair, just a C-level ``list.append`` — with
        bit-identical comparison counting and lazy expiry.  Consumers
        (the partitioned executor's workers) post-filter the batch in
        one tight loop instead of paying a Python closure per pair.
        """
        items = self.items
        write = 0
        ops = 0
        rxlo = r.xlo
        rxhi = r.xhi
        append = out.append
        for cand in items:
            ops += 1
            if cand.yhi < sweep_y:
                continue
            items[write] = cand
            write += 1
            if cand.xlo <= rxhi and rxlo <= cand.xhi:
                append((r, cand) if probe_is_left else (cand, r))
        removed = len(items) - write
        if removed:
            del items[write:]
            self.size_items -= removed
        self.ops += ops

    def compact(self, sweep_y: float) -> None:
        """Evict every entry dead at ``sweep_y`` (pre-overflow GC)."""
        items = self.items
        ops = len(items)
        live = [r for r in items if r.yhi >= sweep_y]
        self.items = live
        self.size_items = len(live)
        self.ops += ops

    @property
    def resident_bytes(self) -> int:
        return self.size_items * RECT_BYTES


class StripedSweep:
    """Active set partitioned into fixed-width x-strips.

    A rectangle is registered in every strip its x-interval overlaps; a
    probe only scans the strips the probing rectangle spans.  A pair
    spanning several common strips would be seen repeatedly, so it is
    emitted only in the strip containing the left edge of the x-overlap
    (the same reference-point idea PBSM uses across partitions).
    """

    __slots__ = ("xlo", "inv_width", "nstrips", "strips", "ops",
                 "size_items")

    def __init__(self, xlo: float, xhi: float,
                 nstrips: int = DEFAULT_STRIPS) -> None:
        if nstrips < 1:
            raise ValueError("need at least one strip")
        span = xhi - xlo
        if span <= 0:
            # Degenerate universe: everything lands in one strip.
            nstrips = 1
            span = 1.0
        self.xlo = xlo
        self.nstrips = nstrips
        self.inv_width = nstrips / span
        self.strips: List[List[Rect]] = [[] for _ in range(nstrips)]
        self.ops = 0
        self.size_items = 0

    def _strip_of(self, x: float) -> int:
        s = int((x - self.xlo) * self.inv_width)
        if s < 0:
            return 0
        if s >= self.nstrips:
            return self.nstrips - 1
        return s

    def insert(self, r: Rect) -> None:
        lo = self._strip_of(r.xlo)
        hi = self._strip_of(r.xhi)
        for s in range(lo, hi + 1):
            self.strips[s].append(r)
        n = hi - lo + 1
        self.size_items += n
        self.ops += n

    def probe(self, r: Rect, sweep_y: float, emit: PairSink,
              probe_is_left: bool) -> None:
        lo = self._strip_of(r.xlo)
        hi = self._strip_of(r.xhi)
        ops = 0
        rxlo = r.xlo
        rxhi = r.xhi
        for s in range(lo, hi + 1):
            strip = self.strips[s]
            write = 0
            for cand in strip:
                ops += 1
                if cand.yhi < sweep_y:
                    continue
                strip[write] = cand
                write += 1
                if cand.xlo <= rxhi and rxlo <= cand.xhi:
                    # Dedup across strips: emit only in the strip that
                    # contains the left edge of the x-overlap.
                    edge = rxlo if rxlo >= cand.xlo else cand.xlo
                    if self._strip_of(edge) == s:
                        if probe_is_left:
                            emit(r, cand)
                        else:
                            emit(cand, r)
            removed = len(strip) - write
            if removed:
                del strip[write:]
                self.size_items -= removed
        self.ops += ops

    def probe_batch(self, r: Rect, sweep_y: float,
                    out: List[Tuple[Rect, Rect]],
                    probe_is_left: bool) -> None:
        """Batched :meth:`probe` (see :meth:`ForwardSweep.probe_batch`).

        The cross-strip dedup (emit only in the strip holding the left
        edge of the x-overlap) is applied inline, so the batch carries
        exactly the pairs the callback mode would have emitted.
        """
        lo = self._strip_of(r.xlo)
        hi = self._strip_of(r.xhi)
        ops = 0
        rxlo = r.xlo
        rxhi = r.xhi
        append = out.append
        for s in range(lo, hi + 1):
            strip = self.strips[s]
            write = 0
            for cand in strip:
                ops += 1
                if cand.yhi < sweep_y:
                    continue
                strip[write] = cand
                write += 1
                if cand.xlo <= rxhi and rxlo <= cand.xhi:
                    edge = rxlo if rxlo >= cand.xlo else cand.xlo
                    if self._strip_of(edge) == s:
                        append((r, cand) if probe_is_left else (cand, r))
            removed = len(strip) - write
            if removed:
                del strip[write:]
                self.size_items -= removed
        self.ops += ops

    def compact(self, sweep_y: float) -> None:
        """Evict dead entries from every strip.

        Strips expire lazily only when probed, so long-unprobed strips
        accumulate garbage; the driver compacts before concluding that
        the structure genuinely exceeds memory (only *live* rectangles
        count against the budget — dead ones are an implementation
        artifact a real system would reclaim the same way).
        """
        ops = 0
        total = 0
        for strip in self.strips:
            ops += len(strip)
            live = [r for r in strip if r.yhi >= sweep_y]
            strip[:] = live
            total += len(live)
        self.size_items = total
        self.ops += ops

    @property
    def resident_bytes(self) -> int:
        return self.size_items * RECT_BYTES


SweepStructureFactory = Callable[[], object]


@dataclass
class SweepStats:
    """Kernel-level outcome of one sweep join."""

    pairs: int = 0
    cpu_ops: int = 0
    max_active_items: int = 0
    max_active_bytes: int = 0
    overflowed: bool = False


def sweep_join(
    source_a: Iterator[Rect],
    source_b: Iterator[Rect],
    make_structure: SweepStructureFactory,
    env,
    on_pair: Optional[PairSink] = None,
    memory_items: Optional[int] = None,
) -> SweepStats:
    """Run the plane sweep over two y-sorted rectangle iterators.

    ``make_structure`` builds one active-set structure; it is called
    twice (one active set per input).  ``on_pair`` receives every
    intersecting pair oriented (a-rect, b-rect); pass ``None`` to count
    only.  If ``memory_items`` is given and the combined active sets
    ever exceed it, the sweep sets ``overflowed`` in its stats — SSSJ
    uses this to trigger its partitioning fallback.

    The iterators must be sorted by ascending ``ylo``; this is asserted
    as the sweep advances, because feeding an unsorted stream silently
    produces garbage results otherwise.
    """
    active_a = make_structure()
    active_b = make_structure()
    stats = SweepStats()

    if on_pair is None:
        def emit(ra: Rect, rb: Rect) -> None:
            stats.pairs += 1
    else:
        inner = on_pair

        def emit(ra: Rect, rb: Rect) -> None:
            stats.pairs += 1
            inner(ra, rb)

    head_a = next(source_a, None)
    head_b = next(source_b, None)
    last_y = float("-inf")
    compact_at = 64
    while head_a is not None or head_b is not None:
        take_a = head_b is None or (
            head_a is not None and head_a.ylo <= head_b.ylo
        )
        if take_a:
            r = head_a
            head_a = next(source_a, None)
            if r.ylo < last_y:
                raise ValueError("source A is not sorted by ylo")
            last_y = r.ylo
            active_b.probe(r, r.ylo, emit, probe_is_left=True)
            active_a.insert(r)
        else:
            r = head_b
            head_b = next(source_b, None)
            if r.ylo < last_y:
                raise ValueError("source B is not sorted by ylo")
            last_y = r.ylo
            active_a.probe(r, r.ylo, emit, probe_is_left=False)
            active_b.insert(r)
        total_items = active_a.size_items + active_b.size_items
        # Lazily-expired garbage inflates the raw count.  Compact (an
        # amortized-O(1) GC: whenever the raw count doubles since the
        # last collection) and record the high-water mark over *live*
        # sizes sampled at compaction points — dead entries are an
        # implementation artifact, not memory the algorithm needs.
        # Live size between samples is bounded by 2x the last sample.
        over_limit = (
            memory_items is not None
            and not stats.overflowed
            and total_items > memory_items
        )
        if total_items > compact_at or over_limit:
            active_a.compact(last_y)
            active_b.compact(last_y)
            total_items = active_a.size_items + active_b.size_items
            compact_at = max(64, 2 * total_items)
            if memory_items is not None and total_items > memory_items:
                stats.overflowed = True
            if total_items > stats.max_active_items:
                stats.max_active_items = total_items
        elif total_items <= 64 and total_items > stats.max_active_items:
            # Below the first compaction threshold the raw count is
            # (nearly) exact; record it so tiny joins report a size.
            stats.max_active_items = total_items

    stats.cpu_ops = active_a.ops + active_b.ops
    stats.max_active_bytes = stats.max_active_items * RECT_BYTES
    env.charge("sweep", stats.cpu_ops)
    return stats


def sweep_join_batched(
    source_a: Iterator[Rect],
    source_b: Iterator[Rect],
    make_structure: SweepStructureFactory,
    env,
) -> Tuple[List[Tuple[Rect, Rect]], SweepStats]:
    """Zero-callback :func:`sweep_join`: collect pairs, don't call sinks.

    Identical merge loop, compaction schedule and accounting as
    :func:`sweep_join` — comparisons are counted by the structures,
    flushed to ``env`` in one ``charge`` call, and the live high-water
    mark is sampled at the same points — but intersecting pairs are
    appended to a local batch via :meth:`probe_batch` instead of
    invoking a ``PairSink`` per pair.  Returns the oriented
    ``(a-rect, b-rect)`` batch (in emit order) alongside the stats; the
    caller applies any per-pair policy (reference-point ownership,
    self-join dedup) in its own tight loop.
    """
    active_a = make_structure()
    active_b = make_structure()
    stats = SweepStats()
    out: List[Tuple[Rect, Rect]] = []

    head_a = next(source_a, None)
    head_b = next(source_b, None)
    last_y = float("-inf")
    compact_at = 64
    while head_a is not None or head_b is not None:
        take_a = head_b is None or (
            head_a is not None and head_a.ylo <= head_b.ylo
        )
        if take_a:
            r = head_a
            head_a = next(source_a, None)
            if r.ylo < last_y:
                raise ValueError("source A is not sorted by ylo")
            last_y = r.ylo
            active_b.probe_batch(r, r.ylo, out, probe_is_left=True)
            active_a.insert(r)
        else:
            r = head_b
            head_b = next(source_b, None)
            if r.ylo < last_y:
                raise ValueError("source B is not sorted by ylo")
            last_y = r.ylo
            active_a.probe_batch(r, r.ylo, out, probe_is_left=False)
            active_b.insert(r)
        total_items = active_a.size_items + active_b.size_items
        if total_items > compact_at:
            active_a.compact(last_y)
            active_b.compact(last_y)
            total_items = active_a.size_items + active_b.size_items
            compact_at = max(64, 2 * total_items)
            if total_items > stats.max_active_items:
                stats.max_active_items = total_items
        elif total_items <= 64 and total_items > stats.max_active_items:
            stats.max_active_items = total_items

    stats.pairs = len(out)
    stats.cpu_ops = active_a.ops + active_b.ops
    stats.max_active_bytes = stats.max_active_items * RECT_BYTES
    env.charge("sweep", stats.cpu_ops)
    return out, stats


def sweep_join_iter(
    source_a: Iterator[Rect],
    source_b: Iterator[Rect],
    make_structure: SweepStructureFactory,
    env,
) -> Iterator[Tuple[Rect, Rect]]:
    """Generator form of :func:`sweep_join`, yielding oriented pairs.

    Pairs stream out in sweep order: the y-position at which a pair is
    discovered is ``max(a.ylo, b.ylo)``, which is exactly the sweep-line
    position — so the *intersection rectangles* of the output are
    themselves sorted by ``ylo``.  That property is what lets Section 4
    feed the output of a two-way join straight into another join
    (:class:`repro.core.sources.JoinSource`).
    """
    active_a = make_structure()
    active_b = make_structure()
    buf: List[Tuple[Rect, Rect]] = []

    def emit(ra: Rect, rb: Rect) -> None:
        buf.append((ra, rb))

    head_a = next(source_a, None)
    head_b = next(source_b, None)
    last_y = float("-inf")
    while head_a is not None or head_b is not None:
        take_a = head_b is None or (
            head_a is not None and head_a.ylo <= head_b.ylo
        )
        if take_a:
            r = head_a
            head_a = next(source_a, None)
            if r.ylo < last_y:
                raise ValueError("source A is not sorted by ylo")
            last_y = r.ylo
            active_b.probe(r, r.ylo, emit, probe_is_left=True)
            active_a.insert(r)
        else:
            r = head_b
            head_b = next(source_b, None)
            if r.ylo < last_y:
                raise ValueError("source B is not sorted by ylo")
            last_y = r.ylo
            active_a.probe(r, r.ylo, emit, probe_is_left=False)
            active_b.insert(r)
        if buf:
            yield from buf
            buf.clear()
    env.charge("sweep", active_a.ops + active_b.ops)


def _sorted_inputs_charged(
    rects_a: Iterable[Rect],
    rects_b: Iterable[Rect],
    env,
    presorted: bool,
) -> Tuple[List[Rect], List[Rect]]:
    """Copy-and-sort both inputs by ``(ylo, xlo)``, charging the sort.

    Shared by the callback and batched forward sweeps so their op
    accounting can never desynchronize: one formula, one place.
    """
    import math

    list_a = list(rects_a)
    list_b = list(rects_b)
    if not presorted:
        list_a.sort(key=_ylo_key)
        list_b.sort(key=_ylo_key)
        n = len(list_a) + len(list_b)
        if n > 1:
            env.charge("sweep", int(n * math.log2(n)))
    return list_a, list_b


def forward_sweep_pairs(
    rects_a: Iterable[Rect],
    rects_b: Iterable[Rect],
    env,
    on_pair: Optional[PairSink] = None,
    presorted: bool = False,
) -> SweepStats:
    """Forward-sweep two in-memory sets (ST's per-node-pair computation).

    Sorting cost (when needed) is charged under ``sweep``; the paper's
    tree join sorts each node's surviving entries before sweeping.
    """
    list_a, list_b = _sorted_inputs_charged(rects_a, rects_b, env,
                                            presorted)
    return sweep_join(
        iter(list_a), iter(list_b), ForwardSweep, env, on_pair=on_pair
    )


def forward_sweep_pairs_batched(
    rects_a: Iterable[Rect],
    rects_b: Iterable[Rect],
    env,
    presorted: bool = False,
) -> Tuple[List[Tuple[Rect, Rect]], SweepStats]:
    """Batched :func:`forward_sweep_pairs`: same accounting, no sinks.

    Sort cost (when sorting is needed) is charged under ``sweep`` via
    the same shared preamble as the callback path, so op totals are
    bit-identical between the two modes; only the pair-delivery
    mechanism differs.
    """
    list_a, list_b = _sorted_inputs_charged(rects_a, rects_b, env,
                                            presorted)
    return sweep_join_batched(iter(list_a), iter(list_b), ForwardSweep,
                              env)


def _ylo_key(r: Rect) -> Tuple[float, float]:
    return (r.ylo, r.xlo)
