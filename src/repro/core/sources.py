"""Sorted rectangle sources — the unification at the heart of PQ.

Section 4's key idea: a join input, whatever its physical
representation, can be presented as *a stream of MBRs sorted by lower
y-coordinate*, and then a single plane-sweep joins any combination of
representations.  The representations:

* :class:`ListSource` — an in-memory list (sorted on construction);
* :class:`StreamSource` — a disk stream that is already y-sorted
  (SSSJ's path: external sort, then scan);
* :class:`IndexSource` — the paper's *index adapter*: extracts data
  rectangles from an R-tree in sorted order with a priority-queue-driven
  traversal that touches every node at most once (Figure 1 of the
  paper);
* :class:`JoinSource` — the output of another PQ join (the intersection
  rectangles stream out in sweep order), enabling the multi-way joins
  of Section 4.

:class:`IndexSource` implements both paper refinements:

1. **two queues** — internal nodes are queued as 12-byte
   ``(y, page id)`` tuples, data rectangles as full 20-byte records, and
   the next item is whichever queue head is smaller;
2. **per-leaf feeding** — when a leaf is read, its rectangles are sorted
   once and only the head enters the data queue; each pop pushes that
   leaf's next rectangle, keeping the data queue small (the heap-cost
   optimization at the end of Section 4).

It also implements the "slightly more complicated version" the paper
sketches: an optional *prune window* restricts the traversal to subtrees
intersecting the window, which is what makes indexed joins win on
localized inputs (Section 6.3's Minnesota example).  And it implements
the paper's overflow note — "PQ can be modified to handle overflow
gracefully by using an external priority queue [2, 9]" — via
``queue_memory_items``: when set, both queues become
:class:`repro.storage.pqueue.ExternalHeap` instances that spill their
largest half to disk instead of growing without bound.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.geom.rect import RECT_BYTES, Rect, intersects
from repro.rtree.rtree import RTree
from repro.storage.pqueue import ExternalHeap
from repro.storage.stream import Stream

#: Bytes per internal-node queue entry: lower y (float32 would do, the
#: paper stores (y, page ID)) — 8 bytes of key + 4 of page id.
NODE_ENTRY_BYTES = 12


class SortedSource:
    """Protocol: iterable of rectangles in nondecreasing ``ylo`` order.

    Concrete sources expose ``__iter__`` plus a ``max_memory_bytes``
    attribute (populated after iteration) so PQ can report Table 3
    numbers for any input mix.
    """

    max_memory_bytes: int = 0

    def __iter__(self) -> Iterator[Rect]:  # pragma: no cover - protocol
        raise NotImplementedError


class ListSource(SortedSource):
    """In-memory rectangles, sorted here unless the caller vouches."""

    def __init__(self, rects: Iterable[Rect], env=None,
                 presorted: bool = False) -> None:
        self.rects = list(rects)
        if not presorted:
            self.rects.sort(key=lambda r: (r.ylo, r.xlo, r.rid))
            if env is not None and len(self.rects) > 1:
                env.charge(
                    "sort", int(len(self.rects) * math.log2(len(self.rects)))
                )
        self.max_memory_bytes = len(self.rects) * RECT_BYTES

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects)


class StreamSource(SortedSource):
    """A y-sorted disk stream; scanning charges sequential block reads."""

    def __init__(self, stream: Stream) -> None:
        if not stream.closed:
            raise ValueError("stream must be closed before it can be a source")
        self.stream = stream
        # One block of lookahead is all the memory a stream source needs.
        self.max_memory_bytes = (
            min(len(stream), stream.block_capacity) * RECT_BYTES
        )

    def __iter__(self) -> Iterator[Rect]:
        return self.stream.scan()


class IndexSource(SortedSource):
    """Priority-queue-driven sorted extraction from an R-tree (Figure 1).

    Parameters
    ----------
    tree:
        The index to traverse.
    prune_window:
        If given, subtrees and data rectangles not intersecting this
        window are skipped — the modified PQ of Sections 4/6.3.  The
        default (``None``) is the paper's measured version, which always
        touches every node exactly once.
    """

    def __init__(self, tree: RTree,
                 prune_window: Optional[Rect] = None,
                 queue_memory_items: Optional[int] = None) -> None:
        self.tree = tree
        self.prune_window = prune_window
        self.queue_memory_items = queue_memory_items
        self.pages_read = 0
        self.max_memory_bytes = 0
        self.max_node_queue = 0
        self.max_data_queue = 0
        self.queue_spills = 0
        self._heap_ops = 0

    def _make_queue(self):
        if self.queue_memory_items is not None:
            return _ExternalQueue(
                ExternalHeap(self.tree.store.disk,
                             memory_items=self.queue_memory_items)
            )
        return _InMemoryQueue()

    def __iter__(self) -> Iterator[Rect]:
        tree = self.tree
        env = tree.store.disk.env
        prune = self.prune_window

        root_mbr = tree.root_mbr()
        if prune is not None and not intersects(root_mbr, prune):
            return
        # Internal-node queue: keys are (ylo, page_id).
        node_q = self._make_queue()
        node_q.push((root_mbr.ylo, tree.root_page_id), None)
        # Data queue: keys are (ylo, tiebreak); values carry the rect
        # and its leaf continuation (sorted leaf list, next index).
        data_q = self._make_queue()
        seq = 0
        buffered = 0  # rectangles held in open leaf buffers
        heap_ops = 0

        while len(node_q) or len(data_q):
            take_data = len(data_q) and (
                not len(node_q) or data_q.peek_key() <= node_q.peek_key()
            )
            if take_data:
                _, (rect, leaf_rects, nxt) = data_q.pop()
                heap_ops += _log2(len(data_q) + 1)
                buffered -= 1
                if nxt < len(leaf_rects):
                    succ = leaf_rects[nxt]
                    data_q.push((succ.ylo, seq),
                                (succ, leaf_rects, nxt + 1))
                    seq += 1
                    heap_ops += _log2(len(data_q))
                yield rect
                continue

            (_, page_id), _ = node_q.pop()
            heap_ops += _log2(len(node_q) + 1)
            node = tree.read_node(page_id)
            self.pages_read += 1
            if node.is_leaf:
                if prune is None:
                    live = list(node.entries)
                else:
                    live = [e for e in node.entries if intersects(e, prune)]
                if not live:
                    continue
                live.sort(key=lambda r: (r.ylo, r.xlo, r.rid))
                env.charge(
                    "pq_leaf_sort",
                    int(len(live) * max(1.0, math.log2(len(live)))),
                )
                head = live[0]
                data_q.push((head.ylo, seq), (head, live, 1))
                seq += 1
                buffered += len(live)
                heap_ops += _log2(len(data_q))
            else:
                for entry in node.entries:
                    if prune is None or intersects(entry, prune):
                        node_q.push((entry.ylo, entry.rid), None)
                        heap_ops += _log2(len(node_q))
            # Memory high-water: node queue entries at 12 bytes, data
            # queue entries plus buffered leaf rects at 20 bytes.
            mem = (
                node_q.memory_items() * NODE_ENTRY_BYTES
                + (data_q.memory_items() + buffered) * RECT_BYTES
            )
            if mem > self.max_memory_bytes:
                self.max_memory_bytes = mem
            if len(node_q) > self.max_node_queue:
                self.max_node_queue = len(node_q)
            if len(data_q) > self.max_data_queue:
                self.max_data_queue = len(data_q)

        self.queue_spills = node_q.spills() + data_q.spills()
        self._heap_ops = heap_ops
        env.charge("pqueue", heap_ops)


class JoinSource(SortedSource):
    """The intersection rectangles of a running join, as a source.

    Feeding one join's output into another is how Section 4 builds
    multi-way intersection joins.  The pair stream arrives in sweep
    order, so the intersection rectangles are ``ylo``-sorted by
    construction; each carries ``rid=0`` and the constituent ids are
    forwarded to ``on_pair`` if provided.
    """

    def __init__(self, pair_iter: Iterator[Tuple[Rect, Rect]],
                 on_pair=None) -> None:
        self.pair_iter = pair_iter
        self.on_pair = on_pair
        self.n_pairs = 0

    def __iter__(self) -> Iterator[Rect]:
        from repro.geom.rect import intersection

        for ra, rb in self.pair_iter:
            inter = intersection(ra, rb)
            if inter is None:  # pragma: no cover - emitted pairs intersect
                continue
            self.n_pairs += 1
            if self.on_pair is not None:
                self.on_pair(ra, rb)
            yield inter


class _InMemoryQueue:
    """Thin heapq adapter with the interface both queue kinds share."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, Any]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, key, value) -> None:
        heapq.heappush(self._heap, (key, value))

    def pop(self):
        return heapq.heappop(self._heap)

    def peek_key(self):
        return self._heap[0][0]

    def memory_items(self) -> int:
        return len(self._heap)

    def spills(self) -> int:
        return 0


class _ExternalQueue:
    """Adapter over :class:`ExternalHeap` (the overflow-graceful queue)."""

    __slots__ = ("_heap",)

    def __init__(self, heap: ExternalHeap) -> None:
        self._heap = heap

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, key, value) -> None:
        self._heap.push(key, value)

    def pop(self):
        return self._heap.pop()

    def peek_key(self):
        return self._heap.peek_key()

    def memory_items(self) -> int:
        # Only the in-memory portion counts against Table 3's budget.
        return min(len(self._heap), self._heap.memory_items)

    def spills(self) -> int:
        return self._heap.spills


def _log2(n: int) -> int:
    return n.bit_length() if n > 0 else 1
