"""The spatial-join algorithms and the unified planner.

Four joins from the paper, all built on the same internal sweep kernel:

* :mod:`repro.core.sssj`  — Scalable Sweeping-based Spatial Join [4];
* :mod:`repro.core.pbsm`  — Partition-Based Spatial Merge join [30];
* :mod:`repro.core.st_join` — synchronized R-tree traversal [8]
  (plus the breadth-first variant of Huang et al. [16] in
  :mod:`repro.core.st_bfs`);
* :mod:`repro.core.pq_join` — **Priority-Queue-Driven Traversal**, the
  paper's contribution (Section 4).

Plus the supporting cast: sorted sources (:mod:`repro.core.sources`),
sweep structures (:mod:`repro.core.sweep`), multi-way joins
(:mod:`repro.core.multiway`), spatial histograms
(:mod:`repro.core.histogram`), and the cost model / planner that decides
when an index is worth using (:mod:`repro.core.cost_model`,
:mod:`repro.core.planner`).
"""

from repro.core.sweep import (
    ForwardSweep,
    StripedSweep,
    SweepStats,
    sweep_join,
    forward_sweep_pairs,
)
from repro.core.sources import (
    SortedSource,
    ListSource,
    StreamSource,
    IndexSource,
    JoinSource,
)
from repro.core.join_result import JoinResult
from repro.core.sssj import sssj_join
from repro.core.pbsm import pbsm_join, PBSMConfig
from repro.core.st_join import st_join
from repro.core.st_bfs import st_bfs_join
from repro.core.pq_join import pq_join, PQConfig
from repro.core.multiway import multiway_join
from repro.core.histogram import SpatialHistogram
from repro.core.cost_model import CostModel, JoinCostEstimate
from repro.core.planner import unified_spatial_join, choose_method
from repro.core.brute import brute_force_pairs

__all__ = [
    "ForwardSweep",
    "StripedSweep",
    "SweepStats",
    "sweep_join",
    "forward_sweep_pairs",
    "SortedSource",
    "ListSource",
    "StreamSource",
    "IndexSource",
    "JoinSource",
    "JoinResult",
    "sssj_join",
    "pbsm_join",
    "PBSMConfig",
    "st_join",
    "st_bfs_join",
    "pq_join",
    "PQConfig",
    "multiway_join",
    "SpatialHistogram",
    "CostModel",
    "JoinCostEstimate",
    "unified_spatial_join",
    "choose_method",
    "brute_force_pairs",
]
