"""Columnar rectangle tiles: the flat wire format for worker shipping.

A partitioned parallel join ships tiles of rectangles to pool workers.
Pickling a Python list of :class:`~repro.geom.rect.Rect` NamedTuples
costs one object header, five boxed fields and a memo entry per
rectangle; a :class:`ColumnarTile` holds the same tile as five flat
``array`` columns (four ``'d'`` coordinate columns plus one ``'q'``
identifier column), which pickle as raw buffers — a single memcpy per
column instead of per-rectangle object traversal.  Workers decode a
tile once into a local ``List[Rect]`` and sweep over the locals, so the
per-rectangle cost is paid exactly once per side of the process
boundary.

The codec is exact: coordinates travel as the same IEEE-754 doubles the
in-memory ``Rect`` holds (``array('d')`` is a lossless round-trip for
Python floats), and identifiers as signed 64-bit integers.  A decoded
tile is therefore element-for-element equal to the encoded input, in
the same order — the property the partitioned executor's pair-set
equality with serial execution rests on.

The same format backs the engine's partition-artifact cache: a cached
distribution retained as columnar tiles costs ~40 bytes per rectangle
(plus replication) instead of the several hundred a boxed ``Rect`` list
would, and re-shipping it to a process worker needs no re-encode.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List

from repro.geom.rect import Rect

#: Per-rectangle payload of the columnar format: four float64 corner
#: coordinates plus one int64 identifier.
COLUMN_BYTES_PER_RECT = 4 * 8 + 8


class ColumnarTile:
    """One tile of rectangles as five flat columns.

    Construction is append-oriented (the distribute phase feeds tiles
    one rectangle at a time); :meth:`decode` rebuilds the boxed ``Rect``
    list on the far side.  Instances pickle efficiently — each column
    is one contiguous buffer.
    """

    __slots__ = ("xlo", "xhi", "ylo", "yhi", "rid", "_sorted_cache")

    def __init__(self) -> None:
        self.xlo = array("d")
        self.xhi = array("d")
        self.ylo = array("d")
        self.yhi = array("d")
        self.rid = array("q")
        self._sorted_cache = None

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "ColumnarTile":
        tile = cls()
        tile.extend(rects)
        return tile

    def append(self, r: Rect) -> None:
        self._sorted_cache = None
        self.xlo.append(r.xlo)
        self.xhi.append(r.xhi)
        self.ylo.append(r.ylo)
        self.yhi.append(r.yhi)
        self.rid.append(r.rid)

    def extend(self, rects: Iterable[Rect]) -> None:
        # Column-at-a-time bulk append beats per-rect append for the
        # common encode-a-whole-list case, but needs a second pass per
        # column; a materialized sequence makes those passes cheap.
        self._sorted_cache = None
        rects = rects if isinstance(rects, (list, tuple)) else list(rects)
        self.xlo.extend(r.xlo for r in rects)
        self.xhi.extend(r.xhi for r in rects)
        self.ylo.extend(r.ylo for r in rects)
        self.yhi.extend(r.yhi for r in rects)
        self.rid.extend(r.rid for r in rects)

    def decode(self) -> List[Rect]:
        """The boxed rectangle list, element-for-element, in order."""
        return list(map(Rect, self.xlo, self.xhi, self.ylo, self.yhi,
                        self.rid))

    def decode_sorted_cached(self) -> List[Rect]:
        """Decoded rectangles sorted by ``(ylo, xlo)``, memoized.

        The sweep kernel sorts its inputs by that key anyway; handing
        it an already-sorted list keeps the output bit-identical (the
        sort is stable and keyed the same) while the re-sort collapses
        to a linear scan.  The memo makes repeated coordinator-side
        sweeps of a cached tile decode-and-sort once, not per query;
        it never crosses the pickle boundary (``__reduce__`` ships the
        raw columns only), so process workers are unaffected.  Callers
        must not mutate the returned list.
        """
        if self._sorted_cache is None:
            decoded = self.decode()
            decoded.sort(key=lambda r: (r.ylo, r.xlo))
            self._sorted_cache = decoded
        return self._sorted_cache

    def __len__(self) -> int:
        return len(self.rid)

    @property
    def nbytes(self) -> int:
        """Resident payload bytes of the five columns."""
        return (
            self.xlo.itemsize * len(self.xlo)
            + self.xhi.itemsize * len(self.xhi)
            + self.ylo.itemsize * len(self.ylo)
            + self.yhi.itemsize * len(self.yhi)
            + self.rid.itemsize * len(self.rid)
        )

    # Pickle via __reduce__ keeps the arrays as raw buffers and stays
    # independent of __slots__ defaults.
    def __reduce__(self):
        return (_rebuild_tile,
                (self.xlo, self.xhi, self.ylo, self.yhi, self.rid))


def _rebuild_tile(xlo, xhi, ylo, yhi, rid) -> ColumnarTile:
    tile = ColumnarTile.__new__(ColumnarTile)
    tile.xlo = xlo
    tile.xhi = xhi
    tile.ylo = ylo
    tile.yhi = yhi
    tile.rid = rid
    tile._sorted_cache = None
    return tile
