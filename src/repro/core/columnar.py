"""Columnar rectangle tiles: the flat wire format for worker shipping.

A partitioned parallel join ships tiles of rectangles to pool workers.
Pickling a Python list of :class:`~repro.geom.rect.Rect` NamedTuples
costs one object header, five boxed fields and a memo entry per
rectangle; a :class:`ColumnarTile` holds the same tile as five flat
``array`` columns (four ``'d'`` coordinate columns plus one ``'q'``
identifier column), which pickle as raw buffers — a single memcpy per
column instead of per-rectangle object traversal.  Workers decode a
tile once into a local ``List[Rect]`` and sweep over the locals, so the
per-rectangle cost is paid exactly once per side of the process
boundary.

The codec is exact: coordinates travel as the same IEEE-754 doubles the
in-memory ``Rect`` holds (``array('d')`` is a lossless round-trip for
Python floats), and identifiers as signed 64-bit integers.  A decoded
tile is therefore element-for-element equal to the encoded input, in
the same order — the property the partitioned executor's pair-set
equality with serial execution rests on.

The same format backs the engine's partition-artifact cache: a cached
distribution retained as columnar tiles costs ~40 bytes per rectangle
(plus replication) instead of the several hundred a boxed ``Rect`` list
would, and re-shipping it to a process worker needs no re-encode.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from collections import OrderedDict
from typing import Iterable, Iterator, List

from repro.geom.rect import RECT_BYTES, Rect

#: Per-rectangle payload of the columnar format: four float64 corner
#: coordinates plus one int64 identifier.
COLUMN_BYTES_PER_RECT = 4 * 8 + 8

#: Bound on how many tiles may hold a decoded ``decode_sorted_cached``
#: list at once, per process.  The memo used to be unbounded: a
#: long-lived worker (or a coordinator holding a large artifact cache)
#: would accumulate one boxed ``List[Rect]`` per tile it ever decoded.
#: The registry below evicts the *decoded list* of the
#: least-recently-used tile — the flat columns are untouched, so an
#: evicted tile just decodes again on its next sweep.
DECODE_CACHE_TILES = 128

#: LRU registry of tiles currently holding a decoded list.  Values are
#: weak references: the registry must never keep a dead tile (and its
#: decoded rectangles) alive — it only bounds memos of *live* tiles.
#: Thread pools decode tiles concurrently, so all registry mutation
#: (and the cross-object memo eviction it performs) happens under one
#: lock; readers of ``_sorted_cache`` hold a local reference, so an
#: eviction landing mid-call can never turn their result into None.
_decode_lru: "OrderedDict[int, weakref.ref]" = OrderedDict()
#: Reentrant: dropping a strong reference inside the locked eviction
#: loop can fire a tile's death callback on the same thread, which
#: itself takes the lock.
_decode_lock = threading.RLock()


def _register_decode(tile: "ColumnarTile") -> None:
    """Note that ``tile`` holds a decoded list; evict the LRU beyond cap."""
    key = id(tile)

    def on_death(ref) -> None:
        # Purge the dead tile's entry — but only if the slot still
        # holds *this* ref (the id may have been reused as a key by a
        # newer tile's registration before the callback ran).
        with _decode_lock:
            if _decode_lru.get(key) is ref:
                del _decode_lru[key]

    with _decode_lock:
        _decode_lru.pop(key, None)  # re-registration refreshes recency
        _decode_lru[key] = weakref.ref(tile, on_death)
        while len(_decode_lru) > DECODE_CACHE_TILES:
            _, ref = _decode_lru.popitem(last=False)
            victim = ref()
            if victim is not None:
                victim._sorted_cache = None


def _unregister_decode(tile: "ColumnarTile") -> None:
    with _decode_lock:
        _decode_lru.pop(id(tile), None)


class ColumnarTile:
    """One tile of rectangles as five flat columns.

    Construction is append-oriented (the distribute phase feeds tiles
    one rectangle at a time); :meth:`decode` rebuilds the boxed ``Rect``
    list on the far side.  Instances pickle efficiently — each column
    is one contiguous buffer.
    """

    __slots__ = ("xlo", "xhi", "ylo", "yhi", "rid", "_sorted_cache",
                 "__weakref__")

    def __init__(self) -> None:
        self.xlo = array("d")
        self.xhi = array("d")
        self.ylo = array("d")
        self.yhi = array("d")
        self.rid = array("q")
        self._sorted_cache = None

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "ColumnarTile":
        tile = cls()
        tile.extend(rects)
        return tile

    def append(self, r: Rect) -> None:
        if self._sorted_cache is not None:
            self._sorted_cache = None
            _unregister_decode(self)
        self.xlo.append(r.xlo)
        self.xhi.append(r.xhi)
        self.ylo.append(r.ylo)
        self.yhi.append(r.yhi)
        self.rid.append(r.rid)

    def extend(self, rects: Iterable[Rect]) -> None:
        # Column-at-a-time bulk append beats per-rect append for the
        # common encode-a-whole-list case, but needs a second pass per
        # column; a materialized sequence makes those passes cheap.
        if self._sorted_cache is not None:
            self._sorted_cache = None
            _unregister_decode(self)
        rects = rects if isinstance(rects, (list, tuple)) else list(rects)
        self.xlo.extend(r.xlo for r in rects)
        self.xhi.extend(r.xhi for r in rects)
        self.ylo.extend(r.ylo for r in rects)
        self.yhi.extend(r.yhi for r in rects)
        self.rid.extend(r.rid for r in rects)

    def decode(self) -> List[Rect]:
        """The boxed rectangle list, element-for-element, in order."""
        return list(map(Rect, self.xlo, self.xhi, self.ylo, self.yhi,
                        self.rid))

    def decode_sorted_cached(self) -> List[Rect]:
        """Decoded rectangles sorted by ``(ylo, xlo)``, memoized.

        The sweep kernel sorts its inputs by that key anyway; handing
        it an already-sorted list keeps the output bit-identical (the
        sort is stable and keyed the same) while the re-sort collapses
        to a linear scan.  The memo makes repeated coordinator-side
        sweeps of a cached tile decode-and-sort once, not per query;
        it never crosses the pickle boundary (``__reduce__`` ships the
        raw columns only), so process workers are unaffected.  Callers
        must not mutate the returned list.

        The memo is bounded per process: at most
        :data:`DECODE_CACHE_TILES` tiles hold a decoded list at once
        (LRU over tiles, tracked by a module-level weak registry).
        Beyond the bound the oldest tile's decoded list is dropped —
        its columns are untouched, so it simply decodes again next
        time it is swept.
        """
        decoded = self._sorted_cache
        if decoded is None:
            decoded = self.decode()
            decoded.sort(key=lambda r: (r.ylo, r.xlo))
            self._sorted_cache = decoded
        _register_decode(self)
        return decoded

    def __len__(self) -> int:
        return len(self.rid)

    @property
    def nbytes(self) -> int:
        """Resident payload bytes of the five columns."""
        return (
            self.xlo.itemsize * len(self.xlo)
            + self.xhi.itemsize * len(self.xhi)
            + self.ylo.itemsize * len(self.ylo)
            + self.yhi.itemsize * len(self.yhi)
            + self.rid.itemsize * len(self.rid)
        )

    # -- shared-memory packing -------------------------------------------
    #
    # The zero-copy shipping path writes a tile's five columns
    # contiguously into a shared-memory buffer (``pack_into``) and
    # reconstructs them on the far side as memoryview casts over the
    # same buffer (``view_over``) — no pickle, no memcpy on the read
    # side.  A view tile supports everything a worker does with a tile
    # (len, decode, iteration over columns, ``nbytes``) but is
    # read-only: ``append``/``extend`` on it raise, which is the
    # contract — shared segments are immutable once published.

    def pack_into(self, buf, offset: int) -> int:
        """Write the five columns contiguously at ``buf[offset:]``.

        Layout: ``xlo | xhi | ylo | yhi`` as float64 runs, then ``rid``
        as an int64 run — :data:`COLUMN_BYTES_PER_RECT` bytes per
        rectangle.  Returns the number of bytes written.
        """
        mv = memoryview(buf)
        o = offset
        for col in (self.xlo, self.xhi, self.ylo, self.yhi, self.rid):
            raw = memoryview(col).cast("B")
            mv[o:o + raw.nbytes] = raw
            o += raw.nbytes
        return o - offset

    @classmethod
    def view_over(cls, buf, offset: int, count: int) -> "ColumnarTile":
        """A zero-copy tile whose columns are views into ``buf``.

        The inverse of :meth:`pack_into`: ``buf`` is typically a
        shared-memory segment mapped by a pool worker, and the returned
        tile reads the coordinator's bytes in place.  The caller owns
        the buffer's lifetime — every column view must be dead before
        the segment can be closed (the ``BufferError`` contract of
        ``memoryview``).
        """
        mv = memoryview(buf)
        tile = cls.__new__(cls)
        o = offset
        stride = 8 * count
        for name in ("xlo", "xhi", "ylo", "yhi"):
            setattr(tile, name, mv[o:o + stride].cast("d"))
            o += stride
        tile.rid = mv[o:o + stride].cast("q")
        tile._sorted_cache = None
        return tile

    # Pickle via __reduce__ keeps the arrays as raw buffers and stays
    # independent of __slots__ defaults.  A shm *view* tile pickles by
    # copying its columns back into real arrays — crossing a pickle
    # boundary forfeits zero-copy, never correctness.
    def __reduce__(self):
        return (_rebuild_tile, tuple(
            col if isinstance(col, array) else array(code, col)
            for col, code in (
                (self.xlo, "d"), (self.xhi, "d"), (self.ylo, "d"),
                (self.yhi, "d"), (self.rid, "q"),
            )
        ))


def _rebuild_tile(xlo, xhi, ylo, yhi, rid) -> ColumnarTile:
    tile = ColumnarTile.__new__(ColumnarTile)
    tile.xlo = xlo
    tile.xhi = xhi
    tile.ylo = ylo
    tile.yhi = yhi
    tile.rid = rid
    tile._sorted_cache = None
    return tile


class SortedRunView:
    """A memory-resident sorted relation behind a stream-like ``scan()``.

    The engine's artifact layer retains the *output* of an external
    sort (a relation in ``(ylo, xlo, ...)`` order) as one columnar
    tile; this view makes that tile consumable by everything that
    expects a :class:`~repro.storage.stream.Stream` — the SSSJ sweep,
    its slab fallback — without touching the simulated disk at all.
    ``scan()`` decodes through the bounded memo
    (:meth:`ColumnarTile.decode_sorted_cached`; stable re-sort of an
    already-sorted run is the identity), so repeated sweeps of a warm
    run decode once, and ``free()`` is a no-op: the artifact cache owns
    the tile's lifetime.
    """

    __slots__ = ("tile", "name")

    def __init__(self, tile: ColumnarTile, name: str = "") -> None:
        self.tile = tile
        self.name = name

    def scan(self) -> Iterator[Rect]:
        return iter(self.tile.decode_sorted_cached())

    def free(self) -> None:
        """Nothing to release — the backing tile is cache-owned."""

    def __len__(self) -> int:
        return len(self.tile)

    @property
    def data_bytes(self) -> int:
        """Logical payload at the repo's 20-byte record convention."""
        return len(self.tile) * RECT_BYTES
