"""Reference join: quadratic nested loop.

Not in the paper — it exists so the test suite has an obviously-correct
oracle to compare all four algorithms against (including on degenerate
inputs where sweep order or tiling could hide bugs).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.geom.rect import Rect


def brute_force_pairs(
    rects_a: Iterable[Rect], rects_b: Iterable[Rect]
) -> Set[Tuple[int, int]]:
    """All (id_a, id_b) with intersecting MBRs, by exhaustive comparison."""
    list_b: List[Rect] = list(rects_b)
    out: Set[Tuple[int, int]] = set()
    for a in rects_a:
        for b in list_b:
            if (
                a.xlo <= b.xhi
                and b.xlo <= a.xhi
                and a.ylo <= b.yhi
                and b.ylo <= a.yhi
            ):
                out.add((a.rid, b.rid))
    return out
