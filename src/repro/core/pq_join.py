"""Priority-Queue-Driven Traversal — the paper's algorithm (Section 4).

PQ unifies the indexed and non-indexed approaches: every input is
presented as a y-sorted rectangle source and a single plane sweep joins
them.

* A non-indexed input is externally sorted, as in SSSJ.
* An indexed input is unpacked lazily by the priority-queue traversal of
  :class:`repro.core.sources.IndexSource` (Figure 1 of the paper): the
  queue starts with the root's bounding rectangle; extracting an
  internal node loads its children into the queue; extracting a data
  rectangle feeds it to the sweep.  Every index page is touched at most
  once, so page accesses are "optimal" (Table 4) — but they arrive in
  sweep order, i.e. essentially randomly with respect to the disk
  layout, which is the performance story of Figure 2(d)-(f).
* The output of another join works too (:class:`JoinSource`), giving
  multi-way joins (see :mod:`repro.core.multiway`).

The sweep uses the same internal components as SSSJ (Striped-Sweep by
default).  ``max_memory_bytes`` of the result is the Table 3 measure:
sweep structures plus priority queues plus the per-leaf sorted buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.join_result import JoinResult
from repro.core.sources import (
    IndexSource,
    ListSource,
    SortedSource,
    StreamSource,
)
from repro.core.sweep import (
    DEFAULT_STRIPS,
    ForwardSweep,
    StripedSweep,
    auto_strips,
    sweep_join,
)
from repro.geom.rect import Rect, union_mbr
from repro.rtree.rtree import RTree
from repro.storage.disk import Disk
from repro.storage.sort import sort_stream_by_ylo
from repro.storage.stream import Stream

#: Anything pq_join can turn into a sorted source.
JoinInput = Union[SortedSource, RTree, Stream]


@dataclass(frozen=True)
class PQConfig:
    """PQ knobs; defaults follow Section 4's implementation notes."""

    structure: str = "striped"  # "striped" or "forward"
    nstrips: Optional[int] = None
    """Strip count for Striped-Sweep; ``None`` sizes strips from the
    average rectangle width sampled from the inputs (as in [4])."""
    prune: bool = False
    """Enable the "slightly more complicated version" that skips
    subtrees which cannot intersect the other input's bounding box —
    no effect on the paper's dense experiments, decisive on localized
    joins (Section 6.3)."""
    queue_memory_items: Optional[int] = None
    """In-memory bound for the index-adapter priority queues; when set,
    queues spill to disk through an external heap (the Section 4
    overflow mechanism).  ``None`` (the default, and what the paper
    measures) keeps the queues fully in memory — Table 3 shows they
    stay tiny on real data."""


def pq_join(
    input_a: JoinInput,
    input_b: JoinInput,
    disk: Disk,
    universe: Optional[Rect] = None,
    config: PQConfig = PQConfig(),
    collect_pairs: bool = False,
    window_a: Optional[Rect] = None,
    window_b: Optional[Rect] = None,
) -> JoinResult:
    """Join two inputs of any representation (index, stream, source).

    ``universe`` bounds Striped-Sweep's strips; when omitted it is taken
    from index root MBRs where available, falling back to Forward-Sweep
    if neither input is an index and no universe is given.
    ``window_a``/``window_b`` override the bounding boxes used for
    pruning (by default an index's root MBR; streams have none) —
    the planner passes catalog universes here so a pruned traversal
    works even against a non-indexed opposite input.
    """
    env = disk.env
    if window_a is None:
        window_a = _bounding_box(input_a)
    if window_b is None:
        window_b = _bounding_box(input_b)
    source_a = _as_source(
        input_a, disk, prune_window=window_b if config.prune else None,
        tag="a", queue_memory_items=config.queue_memory_items,
    )
    source_b = _as_source(
        input_b, disk, prune_window=window_a if config.prune else None,
        tag="b", queue_memory_items=config.queue_memory_items,
    )

    if universe is None:
        if window_a is not None and window_b is not None:
            universe = union_mbr(window_a, window_b)
        elif window_a is not None:
            universe = window_a
        elif window_b is not None:
            universe = window_b

    pairs: Optional[List[Tuple[int, int]]] = [] if collect_pairs else None

    def sink(ra: Rect, rb: Rect) -> None:
        if pairs is not None:
            pairs.append((ra.rid, rb.rid))

    nstrips = config.nstrips
    if (config.structure == "striped" and nstrips is None
            and universe is not None):
        avg_w = _sample_avg_width(input_a, input_b)
        nstrips = auto_strips(universe.xhi - universe.xlo, avg_w)

    stats = sweep_join(
        iter(source_a),
        iter(source_b),
        _structure_factory(config, universe, nstrips),
        env,
        on_pair=sink if pairs is not None else None,
    )

    queue_bytes = source_a.max_memory_bytes + source_b.max_memory_bytes
    detail = {
        "sweep_bytes": stats.max_active_bytes,
        "queue_bytes": queue_bytes,
        "max_active_items": stats.max_active_items,
    }
    for side, src in (("a", source_a), ("b", source_b)):
        if isinstance(src, IndexSource):
            detail[f"pages_read_{side}"] = src.pages_read
            detail[f"max_node_queue_{side}"] = src.max_node_queue
            detail[f"max_data_queue_{side}"] = src.max_data_queue
            detail[f"queue_spills_{side}"] = src.queue_spills
    return JoinResult(
        algorithm="PQ",
        n_pairs=stats.pairs,
        pairs=pairs,
        max_memory_bytes=stats.max_active_bytes + queue_bytes,
        detail=detail,
    )


# -- internals ---------------------------------------------------------------


def _as_source(
    inp: JoinInput, disk: Disk, prune_window: Optional[Rect], tag: str,
    queue_memory_items: Optional[int] = None,
) -> SortedSource:
    if isinstance(inp, RTree):
        return IndexSource(inp, prune_window=prune_window,
                           queue_memory_items=queue_memory_items)
    if isinstance(inp, Stream):
        sorted_stream = sort_stream_by_ylo(inp, disk, name=f"pq.{tag}")
        return StreamSource(sorted_stream)
    if isinstance(inp, SortedSource):
        return inp
    raise TypeError(
        f"cannot join input of type {type(inp).__name__}; expected an "
        "RTree, a Stream, or a SortedSource"
    )


def _bounding_box(inp: JoinInput) -> Optional[Rect]:
    if isinstance(inp, RTree):
        return inp.root_mbr()
    return None


def _structure_factory(config: PQConfig, universe: Optional[Rect],
                       nstrips: Optional[int]):
    if config.structure == "forward" or universe is None:
        return ForwardSweep
    if config.structure == "striped":
        n = nstrips if nstrips is not None else DEFAULT_STRIPS
        return lambda: StripedSweep(universe.xlo, universe.xhi, n)
    raise ValueError(f"unknown sweep structure {config.structure!r}")


def _sample_avg_width(input_a: JoinInput, input_b: JoinInput,
                      limit: int = 512) -> float:
    """Average rectangle width sampled (uncharged) from both inputs.

    Stands in for catalog statistics, like the histograms of [1] the
    paper's cost model assumes.  Index inputs sample their first leaf
    pages; streams their first blocks; list sources their head.
    """
    total = 0.0
    count = 0
    for inp in (input_a, input_b):
        for r in _sample_rects(inp, limit):
            total += r.xhi - r.xlo
            count += 1
    return total / count if count else 0.0


def _sample_rects(inp: JoinInput, limit: int):
    from repro.core.sources import ListSource

    if isinstance(inp, RTree):
        taken = 0
        for pid in inp.leaf_page_ids:
            node = inp.read_node_silent(pid)
            for e in node.entries:
                yield e
                taken += 1
                if taken >= limit:
                    return
    elif isinstance(inp, Stream):
        taken = 0
        for offset in inp._block_offsets:
            for r in inp.disk.read_silent(offset):
                yield r
                taken += 1
                if taken >= limit:
                    return
    elif isinstance(inp, ListSource):
        yield from inp.rects[:limit]
