"""Command-line experiment runner.

Reproduce any cell of the paper's evaluation from a shell::

    python -m repro.experiments --dataset NY --algorithms SSSJ PQ ST
    python -m repro.experiments --dataset DISK1-6 --scale quick
    python -m repro.experiments --all

Prints the per-machine observed/estimated costs and the page-request
accounting for each run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.data.datasets import DATASET_ORDER
from repro.experiments.report import fmt_seconds, format_table
from repro.experiments.runner import (
    ALGORITHMS,
    prepare_experiment,
    run_algorithm,
)
from repro.sim.scale import DEFAULT_SCALE, QUICK_SCALE, ScaleConfig


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Run the paper's spatial-join experiments on the simulated "
            "machine trio."
        ),
    )
    parser.add_argument(
        "--dataset", choices=DATASET_ORDER, default=None,
        help="one Table 2 dataset (default: NY; see also --all)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run every Table 2 dataset",
    )
    parser.add_argument(
        "--algorithms", nargs="+", choices=ALGORITHMS,
        default=list(ALGORITHMS), metavar="ALGO",
        help=f"subset of {', '.join(ALGORITHMS)} (default: all four)",
    )
    parser.add_argument(
        "--scale", choices=("default", "quick"), default="default",
        help="1/256 of the paper's sizes (default) or 1/1024 (quick)",
    )
    return parser.parse_args(argv)


def _scale(name: str) -> ScaleConfig:
    return QUICK_SCALE if name == "quick" else DEFAULT_SCALE


def run_dataset(name: str, algorithms: List[str],
                scale: ScaleConfig) -> str:
    setup = prepare_experiment(name, scale=scale)
    rows = []
    for algo in algorithms:
        out = run_algorithm(algo, setup)
        res = out["result"]
        for snap in out["machines"]:
            rows.append(
                [
                    algo,
                    snap["machine"].split("(")[0].strip(),
                    fmt_seconds(snap["observed_seconds"]),
                    fmt_seconds(snap["cpu_seconds"]),
                    fmt_seconds(snap["io_seconds"]),
                    fmt_seconds(snap["estimated_seconds"]),
                    out["page_reads"],
                    res.n_pairs,
                ]
            )
    ds = setup.dataset
    title = (
        f"{name} (scale {scale.name}): {len(ds.roads):,} roads x "
        f"{len(ds.hydro):,} hydro, indexes "
        f"{setup.lower_bound_pages:,} pages"
    )
    return format_table(
        ["Algorithm", "Machine", "Observed s", "CPU s", "I/O s",
         "Estimated s", "Page reads", "Pairs"],
        rows,
        title=title,
    )


def main(argv: List[str] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    scale = _scale(args.scale)
    datasets = (
        list(DATASET_ORDER) if args.all
        else [args.dataset or "NY"]
    )
    for name in datasets:
        print(run_dataset(name, args.algorithms, scale))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
