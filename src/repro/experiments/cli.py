"""Command-line experiment runner.

Reproduce any cell of the paper's evaluation from a shell::

    python -m repro.experiments --dataset NY --algorithms SSSJ PQ ST
    python -m repro.experiments --dataset DISK1-6 --scale quick
    python -m repro.experiments --all --json

Prints the per-machine observed/estimated costs and the page-request
accounting for each run; ``--json`` emits one JSON object per
algorithm x machine row instead, so CI and the throughput bench can
diff results mechanically.

The ``serve-bench`` subcommand replays a mixed query workload against
the persistent :class:`~repro.engine.engine.SpatialQueryEngine`::

    python -m repro.experiments serve-bench --dataset NY --queries 40 \
        --workers 4 --scale quick --json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from repro.data.datasets import DATASET_ORDER
from repro.experiments.report import fmt_seconds, format_table
from repro.experiments.runner import (
    ALGORITHMS,
    prepare_experiment,
    run_algorithm,
)
from repro.sim.scale import DEFAULT_SCALE, QUICK_SCALE, ScaleConfig


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Run the paper's spatial-join experiments on the simulated "
            "machine trio."
        ),
    )
    parser.add_argument(
        "--dataset", choices=DATASET_ORDER, default=None,
        help="one Table 2 dataset (default: NY; see also --all)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run every Table 2 dataset",
    )
    parser.add_argument(
        "--algorithms", nargs="+", choices=ALGORITHMS,
        default=list(ALGORITHMS), metavar="ALGO",
        help=f"subset of {', '.join(ALGORITHMS)} (default: all four)",
    )
    parser.add_argument(
        "--scale", choices=("default", "quick"), default="default",
        help="1/256 of the paper's sizes (default) or 1/1024 (quick)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON object per algorithm x machine row",
    )
    return parser.parse_args(argv)


def _parse_serve_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve-bench",
        description=(
            "Replay a mixed query workload against the persistent "
            "spatial query engine."
        ),
    )
    parser.add_argument(
        "--dataset", choices=DATASET_ORDER, default="NJ",
        help="Table 2 dataset registered as roads/hydro (default: NJ)",
    )
    parser.add_argument(
        "--queries", type=int, default=30,
        help="workload length (default: 30)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="executor worker-pool size (default: 1)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help=(
            "catalog shards served scatter/gather-style; >1 partitions "
            "each relation across this many engines sharing one worker "
            "pool (default: 1, a single engine)"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help=(
            "replica engines per shard (sharded runs only); scatter "
            "picks a healthy replica and fails over to the survivors "
            "when one dies mid-query (default: 1)"
        ),
    )
    parser.add_argument(
        "--faults", default=None, metavar="JSON",
        help=(
            "fault-injection plan: a JSON list of rule objects "
            '(e.g. \'[{"site": "pool.task", "kind": "crash"}]\'); '
            "see repro.engine.faults.FaultPlan.from_json"
        ),
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for probabilistic fault rules (default: 0)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="workload seed (default: 7)",
    )
    parser.add_argument(
        "--scale", choices=("default", "quick"), default="default",
        help="1/256 of the paper's sizes (default) or 1/1024 (quick)",
    )
    parser.add_argument(
        "--memory-bytes", type=int, default=None,
        help=(
            "engine memory budget in bytes (default: the scaled paper "
            "budget); small budgets force partitioned tiles to spill"
        ),
    )
    parser.add_argument(
        "--pool-kind", choices=("process", "thread", "serial"),
        default="process",
        help=(
            "worker pool flavour for partitioned plans (default: "
            "process — a persistent process pool shared by all queries)"
        ),
    )
    parser.add_argument(
        "--min-ship-rects", type=int, default=None,
        help=(
            "smallest tile (rects) worth shipping to a pool worker; "
            "smaller tiles sweep inline on the coordinator"
        ),
    )
    parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="disable artifact reuse (distributions and sorted runs)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help=(
            "persist artifacts to this directory (content-keyed "
            "sidecar); a restarted serve-bench pointed at the same "
            "directory restores its warm state lazily; with --shards "
            "the root holds per-shard/per-replica subdirectories plus "
            "a shared result store"
        ),
    )
    parser.add_argument(
        "--tile-batch-bytes", type=int, default=None,
        help=(
            "target logical payload of one multi-tile pool task; "
            "small tiles coalesce into batches up to this size "
            "(0 disables batching and restores the inline cutoff)"
        ),
    )
    parser.add_argument(
        "--kernel", choices=("auto", "numpy", "python"), default="auto",
        help=(
            "sweep kernel: 'numpy' (vectorized, errors if numpy is "
            "missing), 'python' (pure-python reference), or 'auto' "
            "(numpy when importable; default)"
        ),
    )
    parser.add_argument(
        "--shm-min-bytes", type=int, default=None,
        help=(
            "smallest logical tile payload shipped via shared memory "
            "instead of pickling (process pools only; default 16 KiB)"
        ),
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help="disable shared-memory tile shipping (always pickle)",
    )
    parser.add_argument(
        "--spill-report", action="store_true",
        help="append budget/spill/cache-bytes rows to the report table",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help=(
            "record a span tree per query (admission -> plan -> "
            "scatter -> worker tasks -> gather); the last query's tree "
            "lands in the JSON report under 'trace'"
        ),
    )
    parser.add_argument(
        "--slow-log", type=int, default=None, metavar="N",
        help=(
            "keep the N slowest queries (with traces when --trace); "
            "they land in the JSON report under 'slow_queries'"
        ),
    )
    parser.add_argument(
        "--slow-threshold-ms", type=float, default=0.0,
        help="ignore queries faster than this for the slow log",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help=(
            "also write the metrics snapshot to PATH — Prometheus "
            "text exposition format, or structured JSON when PATH "
            "ends in .json"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the serving report as one JSON object",
    )
    _add_serve_args(parser)
    parser.add_argument(
        "--clients", type=int, default=1,
        help=(
            "concurrent closed-loop clients driving the workload "
            "through the admission front-end (default: 1, the classic "
            "serial driver with no front-end)"
        ),
    )
    parser.add_argument(
        "--open-loop-qps", type=float, default=None,
        help=(
            "drive the workload open-loop at this arrival rate instead "
            "of closed-loop clients (saturation testing; implies the "
            "concurrent front-end)"
        ),
    )
    parser.add_argument(
        "--batch-share", type=float, default=0.25,
        help=(
            "share of queries submitted in the 'batch' class "
            "(concurrent driver only; default: 0.25)"
        ),
    )
    return parser.parse_args(argv)


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    """Front-end knobs shared by serve-bench and the serve endpoint."""
    parser.add_argument(
        "--queue-depth", type=int, default=None,
        help=(
            "admission queue bound; past it the front-end load-sheds "
            "oldest-batch-first (default: 64)"
        ),
    )
    parser.add_argument(
        "--admission-bytes", type=int, default=None,
        help=(
            "serve-level admission budget in bytes; per-class grants "
            "are taken from it and queries park when none are free "
            "(default: 8 MiB)"
        ),
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help=(
            "per-query deadline; expired queries free their grant and "
            "pool slots at the next cancellation checkpoint "
            "(default: none)"
        ),
    )
    parser.add_argument(
        "--max-concurrency", type=int, default=None,
        help=(
            "threads executing admitted queries on the engine "
            "(default: the client count for serve-bench, 8 for serve)"
        ),
    )
    parser.add_argument(
        "--result-store-bytes", type=int, default=None,
        help=(
            "byte cap per shard result store (with --shards and "
            "--artifact-dir); oldest entries evict LRU past it "
            "(default: unbounded)"
        ),
    )
    parser.add_argument(
        "--aging-seconds", type=float, default=None,
        help=(
            "queue age after which a parked batch query is promoted "
            "and no longer load-shed ahead of interactive work; 0 "
            "disables aging (default: 0.5)"
        ),
    )
    parser.add_argument(
        "--adaptive-admission", action="store_true",
        help=(
            "size per-class admission grants from the observed "
            "per-class memory high-water instead of fixed bytes"
        ),
    )


def _parse_http_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Serve the engine over HTTP through the concurrent "
            "admission front-end (POST /query, GET /metrics, "
            "GET /healthz)."
        ),
    )
    parser.add_argument(
        "--dataset", choices=DATASET_ORDER, default="NJ",
        help="Table 2 dataset registered as roads/hydro (default: NJ)",
    )
    parser.add_argument(
        "--scale", choices=("default", "quick"), default="default",
        help="1/256 of the paper's sizes (default) or 1/1024 (quick)",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument(
        "--pool-kind", choices=("process", "thread", "serial"),
        default="process",
    )
    parser.add_argument("--artifact-dir", default=None)
    parser.add_argument("--faults", default=None, metavar="JSON")
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listen port (default: 8642; 0 picks a free port)",
    )
    _add_serve_args(parser)
    return parser.parse_args(argv)


def _parse_metrics_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments metrics",
        description=(
            "Re-render a serve-bench JSON report (or raw metrics "
            "snapshot) as Prometheus text or structured JSON."
        ),
    )
    parser.add_argument(
        "--from", dest="source", default="-", metavar="FILE",
        help="serve-bench --json output or a bare snapshot ('-': stdin)",
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write here instead of stdout",
    )
    return parser.parse_args(argv)


def _scale(name: str) -> ScaleConfig:
    return QUICK_SCALE if name == "quick" else DEFAULT_SCALE


def _collect(name: str, algorithms: List[str], scale: ScaleConfig):
    """Run the experiment once; return (setup, per-row dicts)."""
    setup = prepare_experiment(name, scale=scale)
    rows = []
    for algo in algorithms:
        out = run_algorithm(algo, setup)
        res = out["result"]
        for snap in out["machines"]:
            rows.append({
                "dataset": name,
                "scale": scale.name,
                "algorithm": algo,
                "machine": snap["machine"].split("(")[0].strip(),
                "observed_seconds": snap["observed_seconds"],
                "cpu_seconds": snap["cpu_seconds"],
                "io_seconds": snap["io_seconds"],
                "estimated_seconds": snap["estimated_seconds"],
                "page_reads": out["page_reads"],
                "pairs": res.n_pairs,
            })
    return setup, rows


def dataset_rows(name: str, algorithms: List[str],
                 scale: ScaleConfig) -> List[Dict]:
    """Machine-readable rows: one dict per algorithm x machine."""
    return _collect(name, algorithms, scale)[1]


def run_dataset(name: str, algorithms: List[str],
                scale: ScaleConfig) -> str:
    setup, rows = _collect(name, algorithms, scale)
    table_rows = [
        [
            r["algorithm"],
            r["machine"],
            fmt_seconds(r["observed_seconds"]),
            fmt_seconds(r["cpu_seconds"]),
            fmt_seconds(r["io_seconds"]),
            fmt_seconds(r["estimated_seconds"]),
            r["page_reads"],
            r["pairs"],
        ]
        for r in rows
    ]
    ds = setup.dataset
    title = (
        f"{name} (scale {scale.name}): {len(ds.roads):,} roads x "
        f"{len(ds.hydro):,} hydro, indexes "
        f"{setup.lower_bound_pages:,} pages"
    )
    return format_table(
        ["Algorithm", "Machine", "Observed s", "CPU s", "I/O s",
         "Estimated s", "Page reads", "Pairs"],
        table_rows,
        title=title,
    )


def serve_bench(args: argparse.Namespace) -> int:
    # Imported here so the classic experiment path stays importable
    # even if the engine package is being bisected.
    from repro.engine.workload import (
        engine_for_dataset,
        make_workload,
        run_concurrent_workload,
        run_workload,
        sharded_engine_for_dataset,
    )

    scale = _scale(args.scale)
    faults = None
    if args.faults:
        from repro.engine.faults import FaultPlan

        try:
            faults = FaultPlan.from_json(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}")
    obs_kwargs = {
        "trace": args.trace,
        "slow_log_capacity": args.slow_log,
        "slow_threshold_seconds": args.slow_threshold_ms / 1000.0,
        "kernel": args.kernel,
        "shm_min_bytes": -1 if args.no_shm else args.shm_min_bytes,
        "faults": faults,
    }
    if args.shards > 1:
        engine = sharded_engine_for_dataset(
            args.dataset, scale, shards=args.shards,
            workers=max(1, args.workers),
            memory_bytes=args.memory_bytes,
            pool_kind=args.pool_kind,
            min_ship_rects=args.min_ship_rects,
            artifact_cache_bytes=0 if args.no_artifact_cache else None,
            tile_batch_bytes=args.tile_batch_bytes,
            replicas=max(1, args.replicas),
            artifact_dir=args.artifact_dir,
            result_store_bytes=args.result_store_bytes,
            **obs_kwargs,
        )
    else:
        engine = engine_for_dataset(
            args.dataset, scale, workers=max(1, args.workers),
            memory_bytes=args.memory_bytes,
            pool_kind=args.pool_kind,
            min_ship_rects=args.min_ship_rects,
            artifact_cache_bytes=0 if args.no_artifact_cache else None,
            artifact_dir=args.artifact_dir,
            tile_batch_bytes=args.tile_batch_bytes,
            **obs_kwargs,
        )
    queries = make_workload(
        engine.universe_of("roads"), args.queries, seed=args.seed,
    )
    concurrent = args.clients > 1 or args.open_loop_qps is not None
    if concurrent:
        report = run_concurrent_workload(
            engine, queries,
            clients=max(1, args.clients),
            batch_share=args.batch_share,
            deadline_seconds=(
                args.deadline_ms / 1e3
                if args.deadline_ms is not None else None
            ),
            open_loop_qps=args.open_loop_qps,
            queue_depth=args.queue_depth,
            admission_bytes=args.admission_bytes,
            max_concurrency=args.max_concurrency,
            aging_seconds=args.aging_seconds,
            adaptive_grants=args.adaptive_admission,
            faults=faults,
        )
    else:
        report = run_workload(engine, queries)
    engine.close()
    if args.metrics_out:
        _write_metrics(report["metrics"], args.metrics_out)
    if args.json:
        print(json.dumps(report, default=str, sort_keys=True))
        return 0
    m = report["metrics"]
    rows = [
        ["queries served", report["queries"]],
        ["pairs returned", report["pairs_returned"]],
        ["cache hits", m["cache_hits"]],
        ["cache hit rate", f"{m['cache_hit_rate']:.0%}"],
        ["pages read", m["pages_read"]],
        ["wall seconds", fmt_seconds(report["wall_seconds"])],
        ["simulated seconds", fmt_seconds(report["sim_wall_seconds"])],
        ["queries/s (wall)", f"{report['queries_per_sec_wall']:.1f}"],
        ["queries/s (simulated)", f"{report['queries_per_sec_sim']:.1f}"],
        ["latency p50 / p95", (
            f"{fmt_seconds(report['latency_p50_seconds'])} / "
            f"{fmt_seconds(report['latency_p95_seconds'])}"
        )],
        ["worker pool", (
            f"{report['pool']['kind']} x{report['pool']['workers']}, "
            f"{report['pool']['tasks_dispatched']} shipped / "
            f"{report['pool']['tasks_inline']} inline"
        )],
        ["kernel / shm", (
            f"{m.get('kernel', 'python')}, "
            f"{report['pool']['shm']['segments_created']} segments, "
            f"{report['pool']['shm']['tile_refs_reused']} tile refs "
            f"reused"
        )],
        ["artifact cache", (
            f"{report['artifacts']['hits']} hits, "
            f"{report['artifacts']['entries']} entries, "
            f"{report['artifacts']['bytes']} B, "
            f"{report['artifacts']['disk_restores']} disk restores"
        )],
        ["strategies", ", ".join(
            f"{k}x{v}" for k, v in sorted(m["per_strategy"].items())
        )],
    ]
    if args.shards > 1:
        rows.append(["shards", (
            f"{m['shards']}, "
            f"{m['duplicates_eliminated']} boundary dups removed, "
            f"{m['shards_pruned_total']} shard-queries pruned"
        )])
        rows.append(["replicas", (
            f"{m['replicas']} per shard, "
            f"{m['failovers']} failovers, "
            f"{m['retries']} retries, "
            f"{m['unhealthy_replicas']} unhealthy"
        )])
        if m.get("result_store") is not None:
            rows.append(["result store", (
                f"{m['result_disk_restores']} disk restores, "
                f"{m['result_store']['saves']} saves, "
                f"{m['result_store']['corrupt_drops']} corrupt dropped"
            )])
    if "serve" in report:
        s = report["serve"]
        rows.append(["front-end", (
            f"{report['clients']} clients"
            + (f" (open loop {report['open_loop_qps']:g} q/s)"
               if report.get("open_loop_qps") else "")
            + f", {s['queued_total']} queued "
            f"(peak {s['queue_high_water']}), {s['shed']} shed, "
            f"{s['expired']} expired, {s['rejected']} rejected, "
            f"{s['errors']} errors, {s['served_degraded']} degraded"
        )])
        rows.append(["admission", (
            f"{s['admission']['in_use_bytes']} B in use of "
            f"{s['admission']['total_bytes']} B, "
            f"{s['admission']['grants_issued']} grants issued"
            + (" (adaptive)" if s.get("adaptive_grants") else "")
        )])
        ages = s.get("queue_age_max_seconds", {})
        rows.append(["queue aging", (
            f"{s.get('aged_promotions', 0)} batch promotions, "
            "max queue age "
            + "/".join(f"{ages.get(c, 0.0) * 1e3:.0f}ms"
                       for c in ("interactive", "batch"))
            + " (interactive/batch)"
        )])
    if args.spill_report:
        budget = report["budget"]
        rows += [
            ["budget total bytes", budget["total_bytes"]],
            ["budget high-water bytes", budget["high_water_bytes"]],
            ["budget overcommits", budget["overcommits"]],
            ["spilled rects", m["spilled_rects"]],
            ["spilled bytes", m["spilled_bytes"]],
            ["queries that spilled", m["spill_queries"]],
            ["queries rejected", m["queries_rejected"]],
            ["result cache bytes", m["result_cache_bytes"]],
        ]
    title = (
        f"serve-bench {args.dataset} (scale {scale.name}): "
        f"{args.queries} queries, {max(1, args.workers)} workers"
        + (f", {args.shards} shards" if args.shards > 1 else "")
    )
    print(format_table(["Metric", "Value"], rows, title=title))
    return 0


def serve_cmd(args: argparse.Namespace) -> int:
    """Run the HTTP serving endpoint until interrupted."""
    import asyncio

    from repro.engine.serve import ServingFrontend, serve_http
    from repro.engine.workload import (
        engine_for_dataset,
        sharded_engine_for_dataset,
    )

    scale = _scale(args.scale)
    faults = None
    if args.faults:
        from repro.engine.faults import FaultPlan

        try:
            faults = FaultPlan.from_json(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}")
    if args.shards > 1:
        engine = sharded_engine_for_dataset(
            args.dataset, scale, shards=args.shards,
            workers=max(1, args.workers), pool_kind=args.pool_kind,
            replicas=max(1, args.replicas),
            artifact_dir=args.artifact_dir,
            result_store_bytes=args.result_store_bytes,
            faults=faults,
        )
    else:
        engine = engine_for_dataset(
            args.dataset, scale, workers=max(1, args.workers),
            pool_kind=args.pool_kind, artifact_dir=args.artifact_dir,
            faults=faults,
        )
    fe_kwargs = {"faults": faults}
    if args.queue_depth is not None:
        fe_kwargs["queue_depth"] = args.queue_depth
    if args.admission_bytes is not None:
        fe_kwargs["admission_bytes"] = args.admission_bytes
    if args.max_concurrency is not None:
        fe_kwargs["max_concurrency"] = args.max_concurrency
    if args.deadline_ms is not None:
        fe_kwargs["default_deadline_seconds"] = args.deadline_ms / 1e3
    if args.aging_seconds is not None:
        fe_kwargs["aging_seconds"] = args.aging_seconds
    if args.adaptive_admission:
        fe_kwargs["adaptive_grants"] = True
    frontend = ServingFrontend(engine, **fe_kwargs)

    async def run() -> None:
        server = await serve_http(frontend, args.host, args.port)
        addr = server.sockets[0].getsockname()
        print(f"serving {args.dataset} on http://{addr[0]}:{addr[1]} "
              f"(POST /query, GET /metrics, GET /healthz)")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        frontend.close()
        engine.close()
    return 0


def _write_metrics(snapshot: Dict, path: str) -> None:
    """Export one metrics snapshot to ``path`` (format by extension)."""
    from repro.engine.obs import render_json, render_prometheus

    if path.endswith(".json"):
        text = render_json(snapshot)
    else:
        text = render_prometheus(snapshot)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def metrics_cmd(args: argparse.Namespace) -> int:
    """Re-render a saved report/snapshot as Prometheus text or JSON."""
    from repro.engine.obs import render_json, render_prometheus

    if args.source == "-":
        data = json.load(sys.stdin)
    else:
        with open(args.source, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    # Accept either a full serve-bench report (snapshot under
    # "metrics") or a bare snapshot dict.
    snapshot = data.get("metrics", data) if isinstance(data, dict) else data
    if not isinstance(snapshot, dict):
        print("metrics: input is not a report or snapshot object",
              file=sys.stderr)
        return 2
    text = (render_json(snapshot) if args.format == "json"
            else render_prometheus(snapshot))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve-bench":
        return serve_bench(_parse_serve_args(argv[1:]))
    if argv and argv[0] == "serve":
        return serve_cmd(_parse_http_args(argv[1:]))
    if argv and argv[0] == "metrics":
        return metrics_cmd(_parse_metrics_args(argv[1:]))
    args = _parse_args(argv)
    scale = _scale(args.scale)
    datasets = (
        list(DATASET_ORDER) if args.all
        else [args.dataset or "NY"]
    )
    for name in datasets:
        if args.json:
            for row in dataset_rows(name, args.algorithms, scale):
                print(json.dumps(row, sort_keys=True))
        else:
            print(run_dataset(name, args.algorithms, scale))
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
