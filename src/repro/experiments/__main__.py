"""Entry point: ``python -m repro.experiments``."""

from repro.experiments.cli import main

raise SystemExit(main())
