"""Plain-text table formatting for the benchmark reports."""

from __future__ import annotations

import math
from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table; numeric columns right-aligned."""
    str_rows: List[List[str]] = [
        [_cell(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric(row[i]) for row in str_rows if i < len(row))
        for i in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i] and i > 0:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def fmt_seconds(s: float) -> str:
    """Seconds with sensible precision across magnitudes."""
    if s != s:  # NaN
        return "-"
    if s >= 100:
        return f"{s:.0f}"
    if s >= 1:
        return f"{s:.2f}"
    return f"{s:.4f}"


def fmt_ratio(measured: float, reference: float) -> str:
    """measured/reference as "x.xx", "-" when the reference is 0/NaN."""
    if not reference or reference != reference or measured != measured:
        return "-"
    return f"{measured / reference:.2f}"


def _cell(v) -> str:
    if isinstance(v, float):
        if v != v:
            return "-"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def _is_numeric(s: str) -> bool:
    if s in ("-", ""):
        return True
    try:
        float(s.replace(",", "").replace("%", "").replace("x", ""))
        return True
    except ValueError:
        return False
