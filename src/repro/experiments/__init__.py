"""Experiment harness: set up a dataset on a simulated machine trio,
run an algorithm with fresh counters, and format paper-style tables."""

from repro.experiments.runner import (
    ExperimentSetup,
    prepare_experiment,
    run_algorithm,
    ALGORITHMS,
)
from repro.experiments.report import format_table, fmt_seconds, fmt_ratio

__all__ = [
    "ExperimentSetup",
    "prepare_experiment",
    "run_algorithm",
    "ALGORITHMS",
    "format_table",
    "fmt_seconds",
    "fmt_ratio",
]
