"""Build-once, measure-many experiment setups.

The paper excludes index construction from join costs (it discusses the
amortization question separately in Section 6.3), so the runner builds
streams and trees first, then **resets all counters**; each algorithm
run starts from a cold, zeroed machine trio on the already-built data.

Because a run charges abstract events and the observers price them per
machine, a single run of an algorithm yields Figure 2/3 numbers for all
three machines at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.join_result import JoinResult
from repro.core.pbsm import PBSMConfig, pbsm_join
from repro.core.pq_join import PQConfig, pq_join
from repro.core.sssj import SSSJConfig, sssj_join
from repro.core.st_join import STConfig, st_join
from repro.data.datasets import Dataset, build_dataset
from repro.geom.rect import Rect
from repro.rtree.bulk_load import BulkLoadConfig, DEFAULT_CONFIG, bulk_load
from repro.rtree.rtree import RTree
from repro.sim.env import SimEnv
from repro.sim.machines import ALL_MACHINES, MachineSpec
from repro.sim.scale import DEFAULT_SCALE, ScaleConfig
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

#: Algorithm names accepted by :func:`run_algorithm`, in Figure 3 order.
ALGORITHMS = ("SSSJ", "PBSM", "PQ", "ST")


@dataclass
class ExperimentSetup:
    """Everything one dataset experiment needs, pre-built."""

    dataset: Dataset
    env: SimEnv
    disk: Disk
    store: PageStore
    roads_stream: Stream
    hydro_stream: Stream
    roads_tree: Optional[RTree]
    hydro_tree: Optional[RTree]

    @property
    def universe(self) -> Rect:
        return self.dataset.universe

    @property
    def lower_bound_pages(self) -> int:
        """Pages of both indexes — Table 4's "lower bound" row."""
        if self.roads_tree is None or self.hydro_tree is None:
            raise ValueError("experiment was prepared without indexes")
        return self.roads_tree.page_count + self.hydro_tree.page_count


def prepare_experiment(
    dataset_name: str,
    scale: ScaleConfig = DEFAULT_SCALE,
    machines: Sequence[MachineSpec] = ALL_MACHINES,
    build_trees: bool = True,
    tree_config: BulkLoadConfig = DEFAULT_CONFIG,
) -> ExperimentSetup:
    """Materialize a dataset, its streams and (optionally) its indexes.

    Counters are reset after construction: the returned setup is ready
    for measured join runs.
    """
    dataset = build_dataset(dataset_name, scale)
    env = SimEnv(scale=scale, machines=machines)
    disk = Disk(env)
    store = PageStore(disk, scale.index_page_bytes)

    roads_stream = Stream.from_rects(disk, dataset.roads, name="roads")
    hydro_stream = Stream.from_rects(disk, dataset.hydro, name="hydro")
    roads_tree = hydro_tree = None
    if build_trees:
        roads_tree = bulk_load(
            store, dataset.roads, config=tree_config, name="roads"
        )
        hydro_tree = bulk_load(
            store, dataset.hydro, config=tree_config, name="hydro"
        )
    env.reset_counters()
    return ExperimentSetup(
        dataset=dataset,
        env=env,
        disk=disk,
        store=store,
        roads_stream=roads_stream,
        hydro_stream=hydro_stream,
        roads_tree=roads_tree,
        hydro_tree=hydro_tree,
    )


def run_algorithm(
    name: str,
    setup: ExperimentSetup,
    collect_pairs: bool = False,
) -> Dict:
    """Run one algorithm with fresh counters; return result + snapshots.

    The returned dict has ``result`` (:class:`JoinResult`),
    ``machines`` (list of observer snapshots), and the raw
    machine-independent counters (``page_reads`` etc.).
    """
    setup.env.reset_counters()
    ds = setup.dataset
    if name == "SSSJ":
        result = sssj_join(
            setup.roads_stream, setup.hydro_stream, setup.disk,
            universe=ds.universe, collect_pairs=collect_pairs,
        )
    elif name == "PBSM":
        result = pbsm_join(
            setup.roads_stream, setup.hydro_stream, setup.disk,
            universe=ds.universe, collect_pairs=collect_pairs,
        )
    elif name == "PQ":
        if setup.roads_tree is None or setup.hydro_tree is None:
            raise ValueError("PQ needs indexes; prepare with build_trees")
        result = pq_join(
            setup.roads_tree, setup.hydro_tree, setup.disk,
            universe=ds.universe, collect_pairs=collect_pairs,
        )
    elif name == "ST":
        if setup.roads_tree is None or setup.hydro_tree is None:
            raise ValueError("ST needs indexes; prepare with build_trees")
        result = st_join(
            setup.roads_tree, setup.hydro_tree,
            collect_pairs=collect_pairs,
        )
    else:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of {ALGORITHMS}"
        )
    return {
        "result": result,
        "machines": setup.env.snapshots(),
        "page_reads": setup.env.page_reads,
        "page_writes": setup.env.page_writes,
        "bytes_read": setup.env.bytes_read,
        "bytes_written": setup.env.bytes_written,
        "cpu_ops": setup.env.cpu_ops,
    }
