"""Observability surfaces: slow-query log and metrics exporters.

Three small tools that turn the engine's internal state into things an
operator can actually consume:

* :class:`SlowQueryLog` — a bounded keep-the-worst log of served
  queries (with their trace trees when tracing is on), dumpable as
  JSON.  The N worst queries by wall latency are retained however long
  the engine lives; a threshold filters out the noise floor.
* :func:`render_prometheus` — any engine/sharded metrics snapshot as
  Prometheus text exposition format.  The renderer is generic over the
  snapshot's shape: numeric leaves become gauges, well-known dicts
  (per-strategy counts, artifact kinds, budget categories) become
  labelled series, per-shard/per-client lists become indexed series.
  A counter added to the snapshot shows up in the scrape without
  touching this module — which is how the availability counters
  (``failovers``, ``retries``, ``replica_failures``, per-shard
  ``disk_restores``) reached the exposition without new code here.
* :func:`validate_prometheus` / :func:`validate_trace` — structural
  validators for the two exported formats, shared between the test
  suite and the CI checker scripts so "valid" means one thing.
"""

from __future__ import annotations

import heapq
import json
import re
from typing import Dict, List, Optional, Tuple

from repro.engine.trace import SPAN_METRIC_FIELDS, Span

#: Dict-valued snapshot keys whose *keys* are label values, with the
#: Prometheus label name to use.  Their values are numbers (one series
#: per key) or nested numeric dicts (one series per inner counter).
_LABELLED_DICTS = {
    "per_strategy": "strategy",
    "estimate_errors": "strategy",
    "kinds": "kind",
    "artifact_kinds": "kind",
    "high_water_by_category": "category",
    "budget_high_water_by_category": "category",
    "observed_high_water_by_category": "category",
    "shard_pairs": "shard",
    "shard_strategies": "shard",
    "shard_replicas": "shard",
}

#: List-of-dict snapshot keys rendered as indexed series.
_LABELLED_LISTS = {
    "per_shard": "shard",
    "per_client": "client",
}

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: One exposition line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf)$"
)


class SlowQueryLog:
    """Keep the N worst served queries by wall latency.

    A min-heap of ``(wall_seconds, seq, entry)`` keeps eviction O(log
    N): once full, a new query displaces the current *fastest* logged
    entry only if it is slower.  ``threshold_seconds`` drops queries
    below the noise floor before they ever touch the heap.  Entries
    carry the query description, latencies, and the trace tree as a
    JSON-ready dict when the engine traced the query.
    """

    def __init__(self, capacity: int = 8,
                 threshold_seconds: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("slow-query log capacity must be positive")
        self.capacity = capacity
        self.threshold_seconds = threshold_seconds
        self.offered = 0
        self.admitted = 0
        self._seq = 0
        self._heap: List[Tuple[float, int, Dict[str, object]]] = []

    def offer(self, query: str, wall_seconds: float,
              sim_wall_seconds: float = 0.0,
              trace: Optional[Span] = None,
              from_cache: bool = False) -> bool:
        """Consider one served query; returns True when retained."""
        self.offered += 1
        if wall_seconds < self.threshold_seconds:
            return False
        if (len(self._heap) >= self.capacity
                and wall_seconds <= self._heap[0][0]):
            return False
        entry = {
            "query": query,
            "wall_seconds": wall_seconds,
            "sim_wall_seconds": sim_wall_seconds,
            "from_cache": from_cache,
            "trace": trace.to_dict() if trace is not None else None,
        }
        self._seq += 1
        heapq.heappush(self._heap, (wall_seconds, self._seq, entry))
        if len(self._heap) > self.capacity:
            heapq.heappop(self._heap)
        self.admitted += 1
        return True

    def entries(self) -> List[Dict[str, object]]:
        """Logged queries, worst first."""
        return [
            entry for _, _, entry in
            sorted(self._heap, key=lambda item: (-item[0], item[1]))
        ]

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.entries(), indent=indent, default=str)

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "threshold_seconds": self.threshold_seconds,
            "offered": self.offered,
            "admitted": self.admitted,
            "entries": len(self._heap),
        }

    def __len__(self) -> int:
        return len(self._heap)


# -- Prometheus exposition ---------------------------------------------------


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _fmt_value(value) -> Optional[str]:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN has no useful gauge form
            return None
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return None


def prometheus_lines(snapshot: Dict[str, object],
                     prefix: str = "repro_engine") -> List[str]:
    """Flatten one metrics snapshot into exposition-format lines.

    Strings are skipped (Prometheus has no string samples; they stay in
    the JSON export), unknown dicts flatten with ``_``-joined names,
    and the well-known label shapes (:data:`_LABELLED_DICTS`,
    :data:`_LABELLED_LISTS`) become labelled series.
    """
    lines: List[str] = []
    typed: set = set()

    def emit(name: str, labels: List[Tuple[str, str]], value) -> None:
        rendered = _fmt_value(value)
        if rendered is None:
            return
        name = _sanitize(name)
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} gauge")
        label_s = ""
        if labels:
            inner = ",".join(
                f'{_sanitize(k)}="{v}"' for k, v in labels
            )
            label_s = "{" + inner + "}"
        lines.append(f"{name}{label_s} {rendered}")

    def walk_labelled(name: str, label: str, mapping: Dict,
                      labels: List[Tuple[str, str]]) -> None:
        for key, value in mapping.items():
            tagged = labels + [(label, str(key))]
            if isinstance(value, dict):
                for inner, iv in value.items():
                    emit(f"{name}_{inner}", tagged, iv)
            else:
                emit(name, tagged, value)

    def walk(name: str, value, labels: List[Tuple[str, str]],
             leaf: str) -> None:
        if isinstance(value, dict):
            if leaf in _LABELLED_DICTS:
                walk_labelled(name, _LABELLED_DICTS[leaf], value, labels)
                return
            for key, inner in value.items():
                walk(f"{name}_{key}", inner, labels, str(key))
        elif isinstance(value, list):
            if leaf in _LABELLED_LISTS:
                label = _LABELLED_LISTS[leaf]
                for idx, item in enumerate(value):
                    if isinstance(item, dict):
                        for key, inner in item.items():
                            emit(f"{name}_{key}",
                                 labels + [(label, str(idx))], inner)
            # Other lists (relation names, shard cuts) stay JSON-only.
        else:
            emit(name, labels, value)

    for key, value in snapshot.items():
        walk(f"{prefix}_{key}", value, [], key)
    return lines


def render_prometheus(snapshot: Dict[str, object],
                      prefix: str = "repro_engine") -> str:
    """One snapshot as Prometheus text format (trailing newline)."""
    return "\n".join(prometheus_lines(snapshot, prefix)) + "\n"


def render_json(snapshot: Dict[str, object],
                indent: Optional[int] = 2) -> str:
    """One snapshot as structured JSON (the machine-diffable export)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True,
                      default=str)


def validate_prometheus(text: str,
                        prefix: Optional[str] = None) -> List[str]:
    """Structural errors in exposition-format ``text`` (empty == valid).

    With ``prefix`` given, every sample name must start with
    ``<prefix>_`` — pinning the namespace an exporter actually emits
    (the engine's is ``repro_engine``, so serve counters surface as
    ``repro_engine_serve_*``), so documentation claims about metric
    names are checkable instead of aspirational.
    """
    errors: List[str] = []
    seen_samples = 0
    for n, line in enumerate(text.splitlines(), start=1):
        if not line:
            errors.append(f"line {n}: empty line inside exposition")
            continue
        if line.startswith("#"):
            if not (line.startswith("# TYPE ")
                    or line.startswith("# HELP ")):
                errors.append(f"line {n}: unknown comment form: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            errors.append(f"line {n}: malformed sample: {line!r}")
            continue
        if prefix is not None and not line.startswith(prefix + "_"):
            errors.append(
                f"line {n}: sample outside the {prefix!r} namespace: "
                f"{line!r}"
            )
            continue
        seen_samples += 1
    if seen_samples == 0:
        errors.append("no samples found")
    return errors


# -- trace JSON schema -------------------------------------------------------


def validate_trace(span: Dict[str, object],
                   path: str = "$") -> List[str]:
    """Structural errors in one trace dict (empty list == valid).

    Checks the shape :meth:`repro.engine.trace.Span.to_dict` promises:
    a ``name`` string, every metric field numeric and non-negative, an
    ``attrs`` dict, and ``children`` recursively valid.
    """
    errors: List[str] = []
    if not isinstance(span, dict):
        return [f"{path}: span is not an object"]
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{path}: missing or empty span name")
    for f in SPAN_METRIC_FIELDS:
        v = span.get(f)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            errors.append(f"{path}: field {f!r} is not a number")
        elif v != v or v < 0:
            errors.append(f"{path}: field {f!r} is negative or NaN")
    if not isinstance(span.get("attrs"), dict):
        errors.append(f"{path}: attrs is not an object")
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{path}: children is not a list")
    else:
        for i, c in enumerate(children):
            errors.extend(
                validate_trace(c, path=f"{path}.children[{i}]")
            )
    return errors
