"""Physical plan execution, including partitioned parallel joins.

Direct plans delegate to the algorithms the repo already trusts
(:func:`unified_spatial_join`, :func:`st_join`, :func:`multiway_join`).
The engine-only path is **partitioned execution**: both inputs are
scanned once, cut into PBSM-style tiles (reusing PBSM's tile grid and
reference-point arithmetic), and the per-partition sweeps are fanned
out over a ``concurrent.futures`` thread pool.  Duplicate pairs — a
pair is replicated into every partition its rectangles straddle — are
eliminated exactly as in PBSM: a pair is reported only by the
partition owning the tile of its reference point, so the merge is pure
concatenation.

Worker tasks touch no shared simulation state: each sweeps in-memory
rectangle lists against a private op counter, and the merged op total
is charged to the environment once.  Alongside the total the executor
computes the *critical path* (the busiest worker's ops under a greedy
longest-processing-time assignment), from which the engine derives the
simulated parallel wall time.

Partitioned execution runs under the engine's shared
:class:`~repro.engine.resources.ResourceBudget`: the executor acquires
a grant for its tiles (category ``"tiles"``) and splits it evenly over
the partitions; a partition that outgrows its share overflows into a
disk-backed :class:`~repro.core.pbsm.SpillablePartition` stream and is
re-read before its sweep, with the spill traffic priced by the same
simulated-disk ledger as every other I/O.  Self-joins ride the same
path: the single input is distributed once, each partition is swept
against itself, and the symmetric/identity pairs are deduplicated at
the sink (only ``rid_a < rid_b`` survives).

Window and refinement predicates are applied as post-filters on the
collected pairs, using the catalog's id -> rectangle / geometry maps.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.join_result import JoinResult
from repro.core.multiway import multiway_join
from repro.core.pbsm import (
    SpillablePartition,
    TileAllowance,
    TileGrid,
    ref_point,
)
from repro.core.planner import unified_spatial_join
from repro.core.st_join import st_join
from repro.core.sweep import forward_sweep_pairs
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.optimizer import PhysicalPlan
from repro.engine.resources import ResourceBudget
from repro.geom.rect import RECT_BYTES, Rect, intersection, union_mbr
from repro.geom.refine import polylines_intersect
from repro.sim.machines import MachineSpec
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk

#: Tile grid resolution for partitioned plans.  Coarser than PBSM's
#: 128x128 because partitions here number workers x 4, not hundreds.
DEFAULT_TILES_PER_SIDE = 32


class Executor:
    """Runs :class:`PhysicalPlan` objects against the catalog."""

    def __init__(
        self,
        disk: Disk,
        machine: MachineSpec,
        pool: Optional[BufferPool] = None,
        tiles_per_side: int = DEFAULT_TILES_PER_SIDE,
        budget: Optional[ResourceBudget] = None,
    ) -> None:
        self.disk = disk
        self.machine = machine
        self.pool = pool
        self.tiles_per_side = tiles_per_side
        self.budget = budget

    # -- public ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan, catalog: Catalog) -> JoinResult:
        query = plan.query
        entries = [catalog.get(n) for n in query.relations]
        if plan.mode == "empty":
            result = JoinResult(
                algorithm="empty", n_pairs=0,
                pairs=[] if query.collect_pairs else None,
                detail={"strategy": "empty"},
            )
        elif plan.mode == "multiway":
            result = self._execute_multiway(plan, entries)
        elif plan.mode == "partitioned":
            result = self._execute_partitioned(plan, entries)
        else:
            result = self._execute_pairwise(plan, entries)

        if query.window is not None and result.pairs is not None:
            result = _filter_window(result, entries, query.window)
        if query.refine and result.pairs is not None:
            result = _refine_pairs(result, entries)
        result.detail.setdefault("strategy", plan.strategy)
        return result

    # -- direct paths ----------------------------------------------------

    def _execute_pairwise(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        query = plan.query
        if plan.strategy == "st":
            result = st_join(
                entries[0].tree, entries[1].tree,
                collect_pairs=query.collect_pairs, pool=self.pool,
            )
            result.detail["strategy"] = "st"
            result.detail["estimated_io_seconds"] = plan.estimate.io_seconds
            return result
        # Materialize only the representations the chosen strategy
        # touches: a plan that priced the stream paths (auto_index off,
        # or sssj simply winning) must not trigger lazy index builds.
        rel_a = entries[0].relation(
            universe=plan.regions[0],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-a"),
        )
        rel_b = entries[1].relation(
            universe=plan.regions[1],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-b"),
        )
        return unified_spatial_join(
            rel_a, rel_b, self.disk, self.machine,
            collect_pairs=query.collect_pairs, force=plan.strategy,
        )

    def _execute_multiway(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        inputs = [
            e.tree if e.has_tree else e.stream for e in entries
        ]
        return multiway_join(
            inputs, self.disk,
            collect_tuples=plan.query.collect_pairs,
        )

    # -- partitioned parallel path ---------------------------------------

    def _execute_partitioned(self, plan: PhysicalPlan,
                             entries: List[CatalogEntry]) -> JoinResult:
        env = self.disk.env
        query = plan.query
        self_join = query.is_self_join
        universe = union_mbr(plan.regions[0], plan.regions[1])
        n_parts = max(1, plan.partitions)
        tiles = self.tiles_per_side
        while tiles * tiles < n_parts:
            tiles *= 2
        grid = TileGrid(universe, tiles, n_parts)

        # One grant for all in-memory tiles, drawn down first come
        # first served by every partition (a per-partition split would
        # spill hot partitions while cold ones waste their share).
        # Requested at the scan size and extended on demand while the
        # budget has free bytes (boundary replication makes the true
        # footprint unknowable up front), so tiles spill only when the
        # budget is genuinely exhausted.  The minimum keeps at least
        # one resident rectangle per partition — admission control has
        # already refused anything that could not run even at that
        # floor.
        grant = allowance = None
        if self.budget is not None:
            want = sum(
                e.stream.data_bytes
                for e in (entries[:1] if self_join else entries)
            )
            grant = self.budget.acquire(
                "tiles", want, minimum=n_parts * RECT_BYTES
            )
            allowance = TileAllowance(grant.bytes, grant=grant)

        parts_a = [
            SpillablePartition(self.disk, f"tiles.a{i}",
                               allowance=allowance)
            for i in range(n_parts)
        ]
        parts_b = parts_a
        try:
            ops = _distribute(entries[0].stream, parts_a, grid,
                              query.window)
            if not self_join:
                parts_b = [
                    SpillablePartition(self.disk, f"tiles.b{i}",
                                       allowance=allowance)
                    for i in range(n_parts)
                ]
                ops += _distribute(entries[1].stream, parts_b, grid,
                                   query.window)
            env.charge("partition", ops)

            all_parts = (
                parts_a if self_join else parts_a + parts_b
            )
            spilled_rects = sum(p.spilled_rects for p in all_parts)
            spill_partitions = sum(1 for p in all_parts if p.spilled)
            # The write side of the spill, one op per record; the
            # streams charged the block I/O as they flushed.
            env.charge("spill", spilled_rects)

            # Materialize on this thread (spill re-reads hit the shared
            # simulated disk, whose counters are not thread-safe);
            # workers then sweep private in-memory lists.  A self-join
            # partition is materialized once and swept against itself —
            # re-reading its spill stream twice would double-charge the
            # one-write-one-reread model the optimizer priced.  Only
            # partitions that actually join are re-read, and their
            # spilled bytes are charged back to the grant: the sweep
            # phase holds them resident again, and the high-water mark
            # must say so rather than pretend the spill kept it flat.
            tasks = []
            reread_rects = 0
            for i in range(n_parts):
                if not (len(parts_a[i]) and len(parts_b[i])):
                    continue
                active = (
                    (parts_a[i],) if self_join
                    else (parts_a[i], parts_b[i])
                )
                reread_rects += sum(p.spilled_rects for p in active)
                side_a = parts_a[i].materialize()
                side_b = (
                    side_a if self_join else parts_b[i].materialize()
                )
                tasks.append((i, side_a, side_b))
            env.charge("spill", reread_rects)
            if grant is not None:
                grant.charge(reread_rects * RECT_BYTES)

            if plan.workers > 1 and len(tasks) > 1:
                with ThreadPoolExecutor(max_workers=plan.workers) as tp:
                    outcomes = list(
                        tp.map(
                            lambda t: _join_partition(
                                grid, *t, self_join=self_join
                            ),
                            tasks,
                        )
                    )
            else:
                outcomes = [
                    _join_partition(grid, *t, self_join=self_join)
                    for t in tasks
                ]
        finally:
            for p in parts_a:
                p.free()
            if not self_join:
                for p in parts_b:
                    p.free()
            if grant is not None:
                grant.release()

        pairs: Optional[List[Tuple[int, int]]] = (
            [] if query.collect_pairs else None
        )
        n_pairs = 0
        total_ops = 0
        duplicates = 0
        part_ops: List[int] = []
        for count, part_pairs, task_ops, dups in outcomes:
            n_pairs += count
            total_ops += task_ops
            duplicates += dups
            part_ops.append(task_ops)
            if pairs is not None:
                pairs.extend(part_pairs)
        env.charge("sweep", total_ops)

        critical = _critical_path_ops(part_ops, plan.workers)
        saved_seconds = (
            (total_ops - critical) * self.machine.cpu.seconds_per_op
        )
        return JoinResult(
            algorithm="PBSM-grid",
            n_pairs=n_pairs,
            pairs=pairs,
            max_memory_bytes=max(
                ((len(a) + len(b)) * RECT_BYTES for _, a, b in tasks),
                default=0,
            ),
            detail={
                "strategy": "pbsm-grid",
                "estimated_io_seconds": plan.estimate.io_seconds,
                "workers": plan.workers,
                "partitions": n_parts,
                "active_partitions": len(tasks),
                "tiles_per_side": tiles,
                "sweep_ops_total": total_ops,
                "sweep_ops_critical": critical,
                "parallel_cpu_seconds_saved": saved_seconds,
                "duplicates_eliminated": duplicates,
                "self_join": self_join,
                "tile_grant_bytes": grant.bytes if grant else 0,
                "spilled_rects": spilled_rects,
                "spilled_bytes": spilled_rects * RECT_BYTES,
                "spill_partitions": spill_partitions,
            },
        )


# -- helpers -----------------------------------------------------------------


class _OpCounter:
    """Minimal env stand-in for worker-local sweeps: counts CPU ops."""

    def __init__(self) -> None:
        self.cpu_ops = 0

    def charge(self, category: str, ops: int) -> None:
        if ops > 0:
            self.cpu_ops += ops


def _distribute(stream, parts: List[SpillablePartition], grid: TileGrid,
                window: Optional[Rect]) -> int:
    """Scan a base stream into tile partitions (spillable).

    The scan charges one sequential read pass on the shared disk (the
    partition pass the optimizer priced); partitions hold tiles in
    memory up to their allowance and overflow to disk streams beyond
    it.  Returns abstract partitioning ops.
    """
    ops = 0
    for r in stream.scan():
        if window is not None and not r.intersects(window):
            ops += 1
            continue
        targets = grid.partitions_of(r)
        ops += 1 + len(targets)
        for t in targets:
            parts[t].append(r)
    return ops


def _join_partition(
    grid: TileGrid, part_id: int,
    side_a: Sequence[Rect], side_b: Sequence[Rect],
    self_join: bool = False,
) -> Tuple[int, List[Tuple[int, int]], int, int]:
    """Sweep one partition; runs on a worker thread, no shared state.

    For self-joins both sides are the same list; the sweep then emits
    every pair in both orientations plus each rectangle against itself,
    and the sink keeps exactly the ``rid_a < rid_b`` representative.
    Returns (owned pair count, owned pairs, cpu ops, duplicates
    suppressed by the reference-point test and self-join dedup).
    """
    local = _OpCounter()
    owned: List[Tuple[int, int]] = []
    dups = 0

    def sink(ra: Rect, rb: Rect) -> None:
        nonlocal dups
        if self_join and not ra.rid < rb.rid:
            dups += 1
            return
        if grid.partition_of_point(*ref_point(ra, rb)) == part_id:
            owned.append((ra.rid, rb.rid))
        else:
            dups += 1

    forward_sweep_pairs(side_a, side_b, local, on_pair=sink)
    return len(owned), owned, local.cpu_ops, dups


def _critical_path_ops(part_ops: List[int], workers: int) -> int:
    """Busiest worker's ops under greedy LPT assignment of partitions."""
    if not part_ops:
        return 0
    loads = [0] * max(1, workers)
    for w in sorted(part_ops, reverse=True):
        loads[loads.index(min(loads))] += w
    return max(loads)


def _filter_window(result: JoinResult, entries: List[CatalogEntry],
                   window: Rect) -> JoinResult:
    """Keep pairs/tuples whose common MBR intersection meets the window."""
    kept = []
    for ids in result.pairs:
        rects = [entries[i].by_id[rid] for i, rid in enumerate(ids)]
        acc: Optional[Rect] = rects[0]
        for r in rects[1:]:
            acc = intersection(acc, r)
            if acc is None:
                break
        if acc is not None and acc.intersects(window):
            kept.append(ids)
    result.detail["window_filtered"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result


def _refine_pairs(result: JoinResult,
                  entries: List[CatalogEntry]) -> JoinResult:
    """Exact-geometry refinement where both sides registered geometry."""
    geom_a = entries[0].geometries
    geom_b = entries[1].geometries
    if geom_a is None and geom_b is None:
        result.detail["refined_out"] = 0
        return result
    kept = []
    for ida, idb in result.pairs:
        ga = geom_a.get(ida) if geom_a else None
        gb = geom_b.get(idb) if geom_b else None
        if ga is not None and gb is not None:
            if polylines_intersect(ga, gb):
                kept.append((ida, idb))
        else:
            # No exact geometry on one side: the MBR filter verdict
            # stands (refinement can only confirm what it can see).
            kept.append((ida, idb))
    result.detail["refined_out"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result
