"""Physical plan execution, including partitioned parallel joins.

Direct plans delegate to the algorithms the repo already trusts
(:func:`unified_spatial_join`, :func:`st_join`, :func:`multiway_join`).
The engine-only path is **partitioned execution**: both inputs are
scanned once, cut into PBSM-style tiles (reusing PBSM's tile grid and
reference-point arithmetic), and the per-partition sweeps are fanned
out over the engine's persistent :class:`~repro.engine.pool.WorkerPool`
— process-based by default, so the sweeps run on separate interpreters
instead of serializing on the GIL.  Duplicate pairs — a pair is
replicated into every partition its rectangles straddle — are
eliminated exactly as in PBSM: a pair is reported only by the partition
owning the tile of its reference point, so the merge is pure
concatenation.

The hot path is built around four cooperating mechanisms:

* **Persistent pool** — the pool outlives queries; the plan's
  ``workers`` count is a scheduling hint for the simulated critical
  path, not a pool size.  Tasks smaller than ``min_ship_rects`` run
  inline on the coordinator (shipping them would cost more than the
  sweep), and a broken process pool degrades to threads without losing
  a query.
* **Columnar shipping** — tiles cross the process boundary as
  :class:`~repro.core.columnar.ColumnarTile` flat arrays, not lists of
  ``Rect`` NamedTuples; a worker decodes each tile once and sweeps over
  locals.  Spilled partitions materialize into the same format
  (:meth:`SpillablePartition.materialize_columnar`).
* **Zero-callback sweep** — workers run
  :func:`~repro.core.sweep.forward_sweep_pairs_batched`, which appends
  intersecting pairs to a local batch instead of invoking a
  ``PairSink`` per pair; reference-point ownership and self-join dedup
  are applied in one tight loop over the batch.  Comparison counting is
  bit-identical to the callback mode and flushed once per tile.
* **Artifact layer** — reusable execution intermediates are retained
  (budget-charged, LRU by bytes) in the engine's
  :class:`~repro.engine.cache.ArtifactCache`: distributed tile sets
  (a warm repeated query skips the scan + distribute + spill phases
  entirely) and *sorted runs* (a warm ``sssj`` plan skips both
  external sorts and sweeps straight out of memory).  With an
  :class:`~repro.engine.artifacts.ArtifactStore` attached, both kinds
  also persist to a spill-directory sidecar keyed by relation content
  fingerprints, so a restarted engine restores its warm state lazily
  on first touch — the restore is priced as one sequential read of
  the artifact's logical bytes on the simulated disk.
* **Batched tile shipping** — tiles big enough to be worth a pool
  round-trip on their own (``min_ship_rects``) ship individually;
  smaller tiles coalesce into multi-tile batch tasks under a byte
  target (``tile_batch_bytes``), so a skewed grid with thousands of
  tiny tiles costs a handful of pool round-trips instead of thousands
  (or, before batching, a serial inline sweep of everything small on
  the coordinator).  A worker decodes each batch once and returns the
  merged pair set; op accounting is bit-identical to per-tile
  execution, and a batch is one scheduling unit on the simulated
  critical path — as it is on the real pool.
* **Cost-aware dispatch** — the executor remembers each partitioned
  plan's measured sweep cost (total simulated ops, keyed by artifact
  key).  A repeat of a plan whose whole sweep measured at or under
  ``inline_plan_ops`` keeps every tile on the coordinator: with warm
  cached tiles a small sweep runs in microseconds, while a pool
  round-trip costs milliseconds of submit/gather overhead.  Simulated
  op/byte accounting is placement-independent, so this changes wall
  clock only; big plans (and all first executions) ship as before.

Worker tasks touch no shared simulation state: each sweeps local
rectangle lists against a private op counter, and the merged op total
is charged to the environment once.  Alongside the total the executor
computes the *critical path* (the busiest worker's ops under a greedy
longest-processing-time assignment), from which the engine derives the
simulated parallel wall time.

Partitioned execution runs under the engine's shared
:class:`~repro.engine.resources.ResourceBudget`: the executor acquires
a grant for its tiles (category ``"tiles"``) — evicting cached
artifacts first if the budget is short — and a partition that outgrows
the shared allowance overflows into a disk-backed
:class:`~repro.core.pbsm.SpillablePartition` stream, re-read before its
sweep, with the spill traffic priced by the same simulated-disk ledger
as every other I/O.  Coordinator-side materialization streams: each
partition is handed to the pool the moment it materializes, so workers
sweep early partitions while the coordinator re-reads later ones.
Self-joins ride the same path: the single input is distributed once,
each partition is swept against itself, and the symmetric/identity
pairs are deduplicated in the batch filter (only ``rid_a < rid_b``
survives).

Window and refinement predicates are applied as post-filters on the
collected pairs, using the catalog's id -> rectangle / geometry maps.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.columnar import ColumnarTile, SortedRunView
from repro.core.join_result import JoinResult
from repro.core.kernels import resolve_kernel
from repro.core.multiway import multiway_join
from repro.core.pbsm import (
    SpillablePartition,
    TileAllowance,
    TileGrid,
)
from repro.core.planner import unified_spatial_join
from repro.core.sssj import sssj_join
from repro.core.st_join import st_join
from repro.core.sweep import forward_sweep_pairs_batched
from repro.engine.artifacts import (
    ArtifactStore,
    charge_restore,
    partition_token,
    sorted_run_token,
)
from repro.engine.cache import (
    PARTITION_KIND,
    SORTED_RUN_KIND,
    ArtifactCache,
    artifact_key,
    grid_tiles,
    sorted_run_key,
)
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.optimizer import PhysicalPlan
from repro.engine.pool import (
    CancelToken,
    DeadlineExceeded,
    PoolClient,
    ShmTileRef,
    WorkerPool,
    resolve_shm_tile,
)
from repro.engine.resources import ResourceBudget
from repro.engine.trace import EnvMeter, Span, span_meter
from repro.geom.rect import RECT_BYTES, Rect, intersection, union_mbr
from repro.geom.refine import polylines_intersect
from repro.sim.machines import MachineSpec
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk
from repro.storage.sort import sort_stream_by_ylo

#: Tile grid resolution for partitioned plans.  Coarser than PBSM's
#: 128x128 because partitions here number workers x 4, not hundreds.
DEFAULT_TILES_PER_SIDE = 32

#: Tasks below this many rectangles (both sides) are too small to be
#: worth a pool round-trip *on their own*: pickling a tile across the
#: process boundary costs more than a small sweep saves.  Small tasks
#: coalesce into batches (below); tests force solo shipping with 0.
DEFAULT_MIN_SHIP_RECTS = 2048

#: Target logical payload of one multi-tile batch task, in bytes
#: (records x ``RECT_BYTES``).  Small tiles accumulate until the batch
#: reaches this target, then ship as one pool task — one round-trip
#: for many tiles, the IPC-amortization answer to skewed grids.  A
#: trailing batch smaller than ``min_ship_rects`` still sweeps inline
#: (shipping it would cost more than it saves); ``0`` disables
#: batching and restores the blunt inline cutoff.
DEFAULT_TILE_BATCH_BYTES = 64 * 1024

#: Tasks whose logical payload (records x ``RECT_BYTES``) is at least
#: this large ship their tiles as shared-memory refs instead of
#: pickled columns when the pool is process-based and shared memory
#: works; smaller tasks keep pickling (a tiny payload's pickle beats a
#: segment's syscalls).  Negative disables shm shipping outright.
DEFAULT_SHM_MIN_BYTES = 16 * 1024

#: A repeat plan whose *measured* sweep came in at or under this many
#: simulated ops keeps every tile on the coordinator.  The executor
#: remembers each partitioned plan's total sweep ops from its last
#: execution (keyed by the plan's artifact key); when the same plan
#: comes back and the whole sweep is known to cost less than a couple
#: of pool round-trips, shipping is pure overhead — submit+gather on a
#: process pool runs milliseconds while a warm sub-64k-op sweep runs
#: microseconds.  Simulated accounting is placement-independent (ops
#: and bytes are charged identically wherever a sweep runs), so this
#: is a wall-clock policy, not a semantic one.  First executions have
#: no measurement and ship as before; ``0`` disables the memo.
DEFAULT_INLINE_PLAN_OPS = 64 * 1024

#: Below this many rectangles (both sides), a tile's sweep dispatches
#: to the python kernel even when the engine selected numpy: the
#: vectorized kernel's fixed per-call cost exceeds the whole sweep,
#: and repeated sweeps of a cached tile amortize the python path's
#: decode+sort memo while numpy re-sorts every call.  The pair set
#: and op accounting are identical either way — this is a wall-clock
#: cutoff, not a semantic switch.
NUMPY_MIN_TILE_RECTS = 512
NUMPY_MIN_LIST_RECTS = 512


class Executor:
    """Runs :class:`PhysicalPlan` objects against the catalog."""

    def __init__(
        self,
        disk: Disk,
        machine: MachineSpec,
        pool: Optional[BufferPool] = None,
        tiles_per_side: int = DEFAULT_TILES_PER_SIDE,
        budget: Optional[ResourceBudget] = None,
        worker_pool: Optional[Union[WorkerPool, PoolClient]] = None,
        artifacts: Optional[ArtifactCache] = None,
        min_ship_rects: int = DEFAULT_MIN_SHIP_RECTS,
        tile_batch_bytes: int = DEFAULT_TILE_BATCH_BYTES,
        store: Optional[ArtifactStore] = None,
        kernel: str = "auto",
        shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES,
        inline_plan_ops: int = DEFAULT_INLINE_PLAN_OPS,
    ) -> None:
        self.disk = disk
        self.machine = machine
        self.pool = pool
        self.tiles_per_side = tiles_per_side
        self.budget = budget
        # A private serial pool keeps direct (engine-less) construction
        # working; the engine passes a client on its long-lived pool
        # (possibly shared with other engines — the executor only ever
        # sees the client/pool submission surface).
        self.worker_pool = worker_pool or WorkerPool(1, kind="serial")
        self.artifacts = artifacts
        self.min_ship_rects = max(0, min_ship_rects)
        self.tile_batch_bytes = max(0, tile_batch_bytes)
        self.store = store
        # Resolved once, here; workers obey the name in each payload.
        self.kernel = resolve_kernel(kernel)
        self.shm_min_bytes = shm_min_bytes
        self.inline_plan_ops = max(0, inline_plan_ops)
        # Measured sweep cost of each partitioned plan (total simulated
        # ops, keyed by artifact key), written after every execution.
        # Bounded by the number of distinct plans this executor serves.
        self._plan_ops: Dict[tuple, int] = {}
        if self.kernel == "numpy":
            # Import the vectorized kernel on the coordinator now so
            # fork-started pool workers inherit the loaded module
            # instead of each importing it on their first task.
            _np_sweep()

    # -- public ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan, catalog: Catalog,
                trace: Optional[Span] = None,
                cancel: Optional[Callable[[], None]] = None) -> JoinResult:
        """Run one plan.  ``trace``, when given, is the parent span the
        executor hangs its phase spans under (zero overhead when None —
        every trace call site is guarded).  ``cancel``, when given, is
        checked at gather checkpoints on the partitioned path; a
        :class:`~repro.engine.pool.CancelToken` additionally ships
        inside every pool payload so workers observe cancellation at
        tile boundaries."""
        query = plan.query
        env = self.disk.env
        entries = [catalog.get(n) for n in query.relations]
        if plan.mode == "empty":
            result = JoinResult(
                algorithm="empty", n_pairs=0,
                pairs=[] if query.collect_pairs else None,
                detail={"strategy": "empty"},
            )
        elif plan.mode == "multiway":
            with span_meter(env, self.machine, trace, "join",
                            strategy="multiway"):
                result = self._execute_multiway(plan, entries)
        elif plan.mode == "partitioned":
            result = self._execute_partitioned(plan, entries, trace,
                                               cancel)
        else:
            with span_meter(env, self.machine, trace, "join",
                            strategy=plan.strategy):
                result = self._execute_pairwise(plan, entries)

        if query.window is not None and result.pairs is not None:
            with span_meter(env, self.machine, trace,
                            "window-filter") as wspan:
                result = _filter_window(result, entries, query.window)
                if wspan is not None:
                    wspan.attrs["filtered"] = result.detail[
                        "window_filtered"
                    ]
        if query.refine and result.pairs is not None:
            with span_meter(env, self.machine, trace,
                            "refine") as rspan:
                result = _refine_pairs(result, entries)
                if rspan is not None:
                    rspan.attrs["refined_out"] = result.detail[
                        "refined_out"
                    ]
        result.detail.setdefault("strategy", plan.strategy)
        return result

    # -- direct paths ----------------------------------------------------

    def _execute_pairwise(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        query = plan.query
        if plan.strategy == "sssj" and self._artifacts_enabled():
            return self._execute_sssj(plan, entries)
        if plan.strategy == "st":
            result = st_join(
                entries[0].tree, entries[1].tree,
                collect_pairs=query.collect_pairs, pool=self.pool,
            )
            result.detail["strategy"] = "st"
            result.detail["estimated_io_seconds"] = plan.estimate.io_seconds
            return result
        # Materialize only the representations the chosen strategy
        # touches: a plan that priced the stream paths (auto_index off,
        # or sssj simply winning) must not trigger lazy index builds.
        rel_a = entries[0].relation(
            universe=plan.regions[0],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-a"),
        )
        rel_b = entries[1].relation(
            universe=plan.regions[1],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-b"),
        )
        return unified_spatial_join(
            rel_a, rel_b, self.disk, self.machine,
            collect_pairs=query.collect_pairs, force=plan.strategy,
        )

    # -- sorted-run artifact path ----------------------------------------

    def _artifacts_enabled(self) -> bool:
        return self.artifacts is not None and self.artifacts.max_bytes != 0

    def _execute_sssj(self, plan: PhysicalPlan,
                      entries: List[CatalogEntry]) -> JoinResult:
        """SSSJ with sorted-run artifact reuse.

        Each side's sorted view is resolved independently: a memory
        hit sweeps straight out of the cached columnar run (no sort,
        no I/O at all for that side), a disk hit restores the run from
        the artifact sidecar (priced as one sequential read of its
        logical bytes), and a miss runs the external sort as usual —
        capturing the sorted output as it passes through memory and
        retaining it as a fresh artifact for the next query.
        """
        query = plan.query
        rel_a = entries[0].relation(universe=plan.regions[0],
                                    with_tree=False)
        rel_b = entries[1].relation(universe=plan.regions[1],
                                    with_tree=False)
        universe = union_mbr(rel_a.universe, rel_b.universe)

        runs = []
        owned = []
        hits = restores = restore_bytes = 0
        for idx, entry in enumerate(entries):
            view, source = self._sorted_run_for(entry)
            if view is not None:
                if source == "memory":
                    hits += 1
                else:
                    restores += 1
                    restore_bytes += view.data_bytes
                runs.append(view)
                continue
            captured: List[Rect] = []
            sorted_stream = sort_stream_by_ylo(
                entry.stream, self.disk, name=f"sssj.{'ab'[idx]}",
                on_record=captured.append,
            )
            self._retain_sorted_run(entry, captured)
            runs.append(sorted_stream)
            owned.append(sorted_stream)
        try:
            result = sssj_join(
                entries[0].stream, entries[1].stream, self.disk,
                universe=universe, collect_pairs=query.collect_pairs,
                sorted_a=runs[0], sorted_b=runs[1],
            )
        finally:
            for s in owned:
                s.free()
        result.detail["strategy"] = "sssj"
        result.detail["estimated_io_seconds"] = plan.estimate.io_seconds
        result.detail["machine"] = self.machine.name
        result.detail["sorted_run_hits"] = hits
        result.detail["artifact_restores"] = restores
        result.detail["artifact_restore_bytes"] = restore_bytes
        return result

    def _sorted_run_for(self, entry: CatalogEntry):
        """Resolve one relation's warm sorted view.

        Returns ``(view, "memory" | "disk")`` or ``(None, None)``.
        Exactly one cache hit/miss event fires per side; a disk
        restore counts as a miss plus a ``disk_restore``.
        """
        key = sorted_run_key(entry.name, entry.version)
        tile = self.artifacts.get(key, kind=SORTED_RUN_KIND)
        if tile is not None:
            return SortedRunView(tile, name=f"{entry.name}.sorted"), "memory"
        if self.store is None:
            return None, None
        loaded = self.store.load(self._sorted_run_token(entry))
        if loaded is None:
            return None, None
        _kind, tile, logical = loaded
        charge_restore(self.disk, logical)
        self.artifacts.note_restore(logical)
        # Best effort: a full budget serves the restored run to this
        # query without retaining it.
        self.artifacts.put(key, tile, kind=SORTED_RUN_KIND)
        return SortedRunView(tile, name=f"{entry.name}.sorted"), "disk"

    def _retain_sorted_run(self, entry: CatalogEntry,
                           captured: List[Rect]) -> None:
        """Cache (and persist) one freshly sorted relation."""
        if not captured:
            return
        tile = ColumnarTile.from_rects(captured)
        self.artifacts.put(sorted_run_key(entry.name, entry.version),
                           tile, kind=SORTED_RUN_KIND)
        if self.store is not None:
            self.store.save(self._sorted_run_token(entry),
                            SORTED_RUN_KIND, tile, [entry.name])

    def _sorted_run_token(self, entry: CatalogEntry) -> str:
        return sorted_run_token(entry.name, entry.fingerprint)

    def _execute_multiway(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        inputs = [
            e.tree if e.has_tree else e.stream for e in entries
        ]
        return multiway_join(
            inputs, self.disk,
            collect_tuples=plan.query.collect_pairs,
        )

    # -- partitioned parallel path ---------------------------------------

    def _execute_partitioned(
        self, plan: PhysicalPlan, entries: List[CatalogEntry],
        trace: Optional[Span] = None,
        cancel: Optional[Callable[[], None]] = None,
    ) -> JoinResult:
        env = self.disk.env
        query = plan.query
        self_join = query.is_self_join
        universe = union_mbr(plan.regions[0], plan.regions[1])
        n_parts = max(1, plan.partitions)
        grid = TileGrid(universe, grid_tiles(self.tiles_per_side, n_parts),
                        n_parts)
        grid_spec = (universe.xlo, universe.xhi, universe.ylo,
                     universe.yhi, grid.t, n_parts)
        collect = query.collect_pairs

        versions = tuple(
            (e.name, e.version)
            for e in (entries[:1] if self_join else entries)
        )
        akey = artifact_key(versions, universe, self.tiles_per_side,
                            n_parts, query.window)
        cached = None
        fullkey: Optional[tuple] = None
        task_window: Optional[Rect] = None
        restore_bytes = 0
        # The distribute span covers the artifact probe (a disk restore
        # is distribute work) through scan/partition/spill/submission.
        # Entered manually rather than as a ``with`` block so the
        # existing control flow keeps its shape; on an execution error
        # the whole trace is discarded with the query, so the meter
        # needs no unwind protection.
        dmeter = None
        if trace is not None:
            dmeter = EnvMeter(env, self.machine,
                              trace.child("distribute"))
            dmeter.__enter__()
        if self.artifacts is not None:
            # Candidate keys, best first: the exact (possibly windowed)
            # distribution, then — for windowed queries — the *full*
            # distribution of the same relations, which can be swept
            # whole and post-filtered with identical results (the
            # distribute-phase window filter is only a pruning step;
            # window semantics are enforced by ``_filter_window``,
            # which windowed queries always run).  Each candidate is
            # probed in memory first, then in the artifact sidecar.
            candidates = [(akey, universe, None)]
            if query.window is not None:
                full_universe = union_mbr(
                    entries[0].universe, entries[-1].universe
                )
                fullkey = artifact_key(versions, full_universe,
                                       self.tiles_per_side, n_parts,
                                       None)
                candidates.append((
                    fullkey, full_universe, query.window,
                ))
            hit = None
            for key_try, uni, win in candidates:
                if self.artifacts.has(key_try):
                    # Exactly one hit/miss event per query: the probes
                    # use has(), which bumps no counters.
                    hit = (self.artifacts.get(key_try), uni, win)
                    break
            if hit is None:
                # Count the miss, then try the disk sidecar lazily.
                self.artifacts.get(akey)
                if self.store is not None and self._artifacts_enabled():
                    for key_try, uni, win in candidates:
                        token = self._partition_token(
                            entries, self_join, uni, n_parts, key_try[-1]
                        )
                        loaded = self.store.load(token)
                        if loaded is None:
                            continue
                        _kind, tasks, logical = loaded
                        charge_restore(self.disk, logical)
                        self.artifacts.note_restore(logical)
                        restore_bytes = logical
                        self.artifacts.put(key_try, tasks)
                        hit = (tasks, uni, win)
                        break
            if hit is not None:
                cached, hit_universe, task_window = hit
                if hit_universe is not universe:
                    # Full-distribution reuse: sweep the full grid and
                    # let workers prune each tile to the window first.
                    universe = hit_universe
                    grid = TileGrid(
                        universe,
                        grid_tiles(self.tiles_per_side, n_parts),
                        n_parts,
                    )
                    grid_spec = (universe.xlo, universe.xhi,
                                 universe.ylo, universe.yhi,
                                 grid.t, n_parts)

        # Cost-aware routing: if this exact plan ran before and its
        # whole sweep measured at or under the inline threshold, every
        # tile stays on the coordinator — a single pool round-trip
        # costs more wall clock than the sweep itself.  A windowed
        # plan with no measurement of its own inherits the *worst*
        # sweep ever observed over the same full distribution (a
        # windowed sweep is a subset of the full one, so the max is an
        # upper bound): on a dataset whose heaviest plan is cheap,
        # new windows inline from their first execution; one dense
        # cluster anywhere keeps the estimate conservative and every
        # unmeasured window ships, exactly as before the memo.
        prior_ops = self._plan_ops.get(akey)
        if prior_ops is None and fullkey is not None:
            prior_ops = self._plan_ops.get(fullkey)
        inline_all = (
            self.inline_plan_ops > 0
            and prior_ops is not None
            and prior_ops <= self.inline_plan_ops
        )
        # Only a CancelToken travels inside payloads (it pickles;
        # arbitrary cancel callables do not) — workers then observe
        # cancellation at tile boundaries.  Any callable still gates
        # the gather loop below.
        token = cancel if isinstance(cancel, CancelToken) else None
        shipper = _TaskShipper(self, traced=trace is not None,
                               inline_all=inline_all, cancel=token)
        grant = None
        spilled_rects = spill_partitions = 0
        parts_to_free: List[SpillablePartition] = []
        try:
            if cached is not None:
                grant = self._submit_cached(
                    cached, grid_spec, self_join, collect, n_parts,
                    task_window, shipper,
                )
            else:
                (grant, spilled_rects, spill_partitions,
                 parts_to_free) = self._distribute_and_submit(
                    plan, entries, grid, grid_spec, self_join, collect,
                    n_parts, akey, shipper,
                )
            submitted = shipper.submitted
            sweep_span = gmeter = None
            if dmeter is not None:
                dmeter.__exit__()
                dmeter.span.attrs.update({
                    "partitions": n_parts,
                    "artifact_hit": cached is not None,
                    "restore_bytes": restore_bytes,
                    "spilled_rects": spilled_rects,
                })
                # Created before gather so the children land in phase
                # order; populated below, once the task dicts are back.
                sweep_span = trace.child("sweep")
                gmeter = EnvMeter(env, self.machine,
                                  trace.child("gather"))
                gmeter.__enter__()
            outcomes = self._gather(submitted, cancel)
        finally:
            for p in parts_to_free:
                p.free()
            if grant is not None:
                grant.release()
            # Every shipped task has been gathered (or abandoned):
            # drop the inflight pins so idle segments can be reclaimed.
            # Pinned cached-artifact tiles keep their segments alive
            # for the next query's zero-copy re-ship.
            shipper.release_shm()
        task_dicts: Optional[List[dict]] = None
        if shipper.traced:
            task_dicts = [outcome[1] for outcome in outcomes]
            outcomes = [outcome[0] for outcome in outcomes]

        pairs: Optional[List[Tuple[int, int]]] = [] if collect else None
        n_pairs = 0
        total_ops = 0
        duplicates = 0
        inline_ops = 0
        shipped_ops: List[int] = []
        for (fut, shipped, _size, _tiles), outcome in zip(
            submitted, outcomes
        ):
            count, part_pairs, task_ops, dups = outcome
            n_pairs += count
            total_ops += task_ops
            duplicates += dups
            if shipped:
                shipped_ops.append(task_ops)
            else:
                inline_ops += task_ops
            if pairs is not None:
                pairs.extend(part_pairs)
        if gmeter is not None:
            # Close before charging the sweep ops: the merged op total
            # belongs to the sweep span, not the gather drain.
            gmeter.__exit__()
        env.charge("sweep", total_ops)
        self._plan_ops[akey] = total_ops
        if fullkey is not None:
            self._plan_ops[fullkey] = max(
                self._plan_ops.get(fullkey, 0), total_ops
            )

        # The simulated critical path: shipped tasks (solo tiles and
        # whole batches — a batch is one scheduling unit, as on the
        # real pool) spread over the plan's workers via greedy LPT;
        # inline tasks are serial on the coordinator, which sweeps
        # them while the workers run — the slower of the two lanes
        # bounds the parallel phase.
        critical = max(
            inline_ops, _critical_path_ops(shipped_ops, plan.workers)
        )
        saved_seconds = (
            (total_ops - critical) * self.machine.cpu.seconds_per_op
        )
        if sweep_span is not None:
            # Worker-side spans, recorded inside the pool tasks and
            # shipped back with the results, grafted under one sweep
            # span.  The span's simulated CPU is the *parallel-phase*
            # duration (critical path x seconds/op); its wall is the
            # aggregate worker busy time (tasks overlap — elapsed
            # coordinator time is on the gather span).
            spo = self.machine.cpu.seconds_per_op
            for (_f, shipped, _size, _tiles), tdict in zip(
                submitted, task_dicts
            ):
                tspan = Span.from_task(tdict, spo)
                tspan.attrs["shipped"] = shipped
                sweep_span.adopt(tspan)
            sweep_span.cpu_ops = total_ops
            sweep_span.sim_cpu_seconds = critical * spo
            sweep_span.wall_seconds = sum(
                c.wall_seconds for c in sweep_span.children
            )
            sweep_span.attrs.update({
                "ops_total": total_ops,
                "ops_critical": critical,
                "workers": plan.workers,
                "tasks": len(submitted),
                "kernel": self.kernel,
                "shm_tasks": shipper.shm_tasks,
            })
        task_sizes = [size for _, _, size, _ in submitted]
        return JoinResult(
            algorithm="PBSM-grid",
            n_pairs=n_pairs,
            pairs=pairs,
            max_memory_bytes=max(
                (s * RECT_BYTES for s in task_sizes), default=0
            ),
            detail={
                "strategy": "pbsm-grid",
                "estimated_io_seconds": plan.estimate.io_seconds,
                "workers": plan.workers,
                "partitions": n_parts,
                "active_partitions": sum(
                    tiles for _, _, _, tiles in submitted
                ),
                "tiles_per_side": grid.t,
                "sweep_ops_total": total_ops,
                "sweep_ops_critical": critical,
                "parallel_cpu_seconds_saved": saved_seconds,
                "duplicates_eliminated": duplicates,
                "self_join": self_join,
                "tile_grant_bytes": grant.bytes if grant else 0,
                "spilled_rects": spilled_rects,
                "spilled_bytes": spilled_rects * RECT_BYTES,
                "spill_partitions": spill_partitions,
                "artifact_hit": cached is not None,
                "artifact_restores": 1 if restore_bytes else 0,
                "artifact_restore_bytes": restore_bytes,
                "pool_kind": self.worker_pool.kind,
                "kernel": self.kernel,
                "tasks_shipped": sum(
                    1 for _, shipped, _, _ in submitted if shipped
                ),
                "tile_batches": shipper.batches,
                "batched_tiles": shipper.batched_tiles,
                "shm_tasks": shipper.shm_tasks,
                "inlined_by_cost": inline_all,
            },
        )

    # -- partitioned internals -------------------------------------------

    def _partition_token(self, entries: List[CatalogEntry],
                         self_join: bool, universe: Rect,
                         n_parts: int, window: Optional[Rect]) -> str:
        """The sidecar identity of one distribution (content-keyed)."""
        fps = tuple(
            (e.name, e.fingerprint)
            for e in (entries[:1] if self_join else entries)
        )
        return partition_token(
            fps, universe, grid_tiles(self.tiles_per_side, n_parts),
            n_parts, window,
        )

    def _gather(self, submitted: List[tuple],
                cancel: Optional[Callable[[], None]] = None
                ) -> List[tuple]:
        outcomes = []
        for fut, shipped, _size, _tiles in submitted:
            if cancel is not None:
                try:
                    cancel()
                except DeadlineExceeded:
                    self._reclaim_cancelled(submitted[len(outcomes):], 0)
                    raise
            try:
                outcomes.append(fut.result())
            except DeadlineExceeded:
                # A worker (or inline sweep) observed the shipped token
                # at a tile boundary: that task *was* reclaimed
                # mid-flight, so it counts alongside the unstarted tail.
                self._reclaim_cancelled(
                    submitted[len(outcomes) + 1:], 1
                )
                raise
            except BrokenExecutor:
                if not shipped:
                    # Inline task-body exceptions propagate with their
                    # real origin (there is no pool to recover here).
                    raise
                # The pool died under this task (sandboxed fork,
                # killed worker).  Recompute inline and demote the
                # pool so the remaining queries keep flowing.  Task-body
                # exceptions are not caught: they propagate with their
                # real origin.
                outcomes.append(
                    self.worker_pool.recover(
                        fut._repro_fn, fut._repro_payload
                    )
                )
        return outcomes

    def _reclaim_cancelled(self, remaining: List[tuple],
                           observed: int) -> None:
        """A deadline fired mid-gather: reclaim the unfinished tail.

        Shipped futures not yet picked up by a worker are cancelled
        outright; tasks already running observe the in-payload token at
        their next tile boundary (solo tasks past their entry check run
        to completion — abandoning them reclaims no CPU, so they are
        not counted).  ``observed`` is 1 when the triggering task's own
        sweep raised :class:`DeadlineExceeded` — cancelled mid-flight,
        counted too.  Inline futures already ran at submit time;
        nothing to reclaim there.
        """
        reclaimed = observed
        for fut, shipped, _size, _tiles in remaining:
            if not shipped:
                continue
            cancel_fut = getattr(fut, "cancel", None)
            if cancel_fut is not None and cancel_fut():
                reclaimed += 1
        self.worker_pool.note_cancelled(reclaimed)

    def _submit_cached(
        self, cached: List[tuple], grid_spec: tuple,
        self_join: bool, collect: bool, n_parts: int,
        window: Optional[Rect], shipper: "_TaskShipper",
    ) -> Optional[object]:
        """Warm path: the distribute phase is skipped entirely.

        Cached columnar tiles go straight to the pool; the only budget
        interaction is a ``"tiles"`` grant for the decoded working set
        the sweeps hold resident (the encoded artifact stays charged
        under ``"artifacts"``).  ``window`` is set when a windowed
        query reuses the full distribution: workers prune each tile to
        the window before sweeping.
        """
        grant = None
        if self.budget is not None:
            decoded = sum(
                (len(a) + len(a if b is None else b)) * RECT_BYTES
                for _, a, b in cached
            )
            grant = self.budget.acquire(
                "tiles", decoded, minimum=n_parts * RECT_BYTES
            )
        for part_id, tile_a, tile_b in cached:
            size = len(tile_a) + len(tile_a if tile_b is None else tile_b)
            payload = (part_id, grid_spec, tile_a, tile_b, self_join,
                       collect, window, self.kernel)
            shipper.add(payload, size)
        shipper.flush()
        return grant

    def _distribute_and_submit(
        self, plan: PhysicalPlan, entries: List[CatalogEntry],
        grid: TileGrid, grid_spec: tuple, self_join: bool,
        collect: bool, n_parts: int, akey: tuple,
        shipper: "_TaskShipper",
    ):
        """Cold path: scan, distribute, then stream tasks to the pool.

        Partitions are materialized on this thread (spill re-reads hit
        the shared simulated disk, whose counters are not thread-safe)
        and each task is submitted the moment its tiles are ready, so
        worker sweeps overlap the materialization of later partitions.
        Spill-charge accounting is identical to the pre-streaming
        executor: distribute ops, spill writes and spill re-reads are
        each charged once, at the same aggregation points.
        """
        env = self.disk.env
        query = plan.query

        # One grant for all in-memory tiles, drawn down first come
        # first served by every partition (a per-partition split would
        # spill hot partitions while cold ones waste their share).
        # Requested at the scan size and extended on demand while the
        # budget has free bytes (boundary replication makes the true
        # footprint unknowable up front), so tiles spill only when the
        # budget is genuinely exhausted — and cached artifacts are
        # evicted first: execution memory outranks cached artifacts.
        grant = allowance = None
        if self.budget is not None:
            want = sum(
                e.stream.data_bytes
                for e in (entries[:1] if self_join else entries)
            )
            if self.artifacts is not None:
                self.artifacts.make_room(want)
            grant = self.budget.acquire(
                "tiles", want, minimum=n_parts * RECT_BYTES
            )
            allowance = TileAllowance(grant.bytes, grant=grant)

        parts_a = [
            SpillablePartition(self.disk, f"tiles.a{i}",
                               allowance=allowance)
            for i in range(n_parts)
        ]
        parts_b = parts_a
        parts_to_free = list(parts_a)
        try:
            ops = _distribute(entries[0].stream, parts_a, grid,
                              query.window)
            if not self_join:
                parts_b = [
                    SpillablePartition(self.disk, f"tiles.b{i}",
                                       allowance=allowance)
                    for i in range(n_parts)
                ]
                parts_to_free.extend(parts_b)
                ops += _distribute(entries[1].stream, parts_b, grid,
                                   query.window)
            env.charge("partition", ops)

            all_parts = (
                parts_a if self_join else parts_a + parts_b
            )
            spilled_rects = sum(p.spilled_rects for p in all_parts)
            spill_partitions = sum(1 for p in all_parts if p.spilled)
            # The write side of the spill, one op per record; the
            # streams charged the block I/O as they flushed.
            env.charge("spill", spilled_rects)

            # Only partitions that actually join are re-read, and their
            # spilled bytes are charged back to the grant: the sweep
            # phase holds them resident again, and the high-water mark
            # must say so rather than pretend the spill kept it flat.
            # A self-join partition is materialized once and swept
            # against itself — re-reading its spill stream twice would
            # double-charge the one-write-one-reread model the
            # optimizer priced.
            ship = self.worker_pool.kind == "process"
            batching = self.tile_batch_bytes > 0
            will_cache = self._artifacts_enabled()
            cache_tasks: List[tuple] = []
            reread_rects = 0
            for i in range(n_parts):
                if not (len(parts_a[i]) and len(parts_b[i])):
                    continue
                active = (
                    (parts_a[i],) if self_join
                    else (parts_a[i], parts_b[i])
                )
                reread_rects += sum(p.spilled_rects for p in active)
                size = len(parts_a[i]) + len(parts_b[i])
                if ship and (batching or size >= self.min_ship_rects):
                    # Columnar from the start: the same flat tiles
                    # serve the pickle boundary, the batch queue and
                    # the artifact cache.  (With batching on, a small
                    # tile may cross the process boundary as part of a
                    # batch, so it is encoded too.)
                    side_a = parts_a[i].materialize_columnar()
                    side_b = (
                        None if self_join
                        else parts_b[i].materialize_columnar()
                    )
                else:
                    side_a = parts_a[i].materialize()
                    side_b = None if self_join else parts_b[i].materialize()
                # Cold tiles are already window-filtered by distribute,
                # so the task carries no window of its own.
                payload = (i, grid_spec, side_a, side_b, self_join,
                           collect, None, self.kernel)
                shipper.add(payload, size)
                if will_cache:
                    cache_tasks.append((i, side_a, side_b))
            shipper.flush()
            env.charge("spill", reread_rects)
            if grant is not None:
                grant.charge(reread_rects * RECT_BYTES)
        except BaseException:
            for p in parts_to_free:
                p.free()
            if grant is not None:
                grant.release()
            raise

        # Retain the distribution for warm repeats — memory-resident
        # runs only (a spilled distribution exists precisely because
        # the budget could not hold it).  Encodes any list-form tiles
        # to columnar; put() takes bytes from the budget's free pool
        # and evicts LRU artifacts, never live grants.  With a sidecar
        # store attached, the same columnar tasks persist to disk —
        # content-keyed, so a restarted engine can restore them.
        if will_cache and spilled_rects == 0 and cache_tasks:
            encoded = [
                (
                    i,
                    a if isinstance(a, ColumnarTile)
                    else ColumnarTile.from_rects(a),
                    b if b is None or isinstance(b, ColumnarTile)
                    else ColumnarTile.from_rects(b),
                )
                for i, a, b in cache_tasks
            ]
            self.artifacts.put(akey, encoded)
            if self.store is not None:
                query = plan.query
                self.store.save(
                    self._partition_token(
                        entries, self_join,
                        Rect(grid_spec[0], grid_spec[1], grid_spec[2],
                             grid_spec[3], 0),
                        n_parts, query.window,
                    ),
                    PARTITION_KIND, encoded,
                    [e.name for e in
                     (entries[:1] if self_join else entries)],
                )
        return (grant, spilled_rects, spill_partitions, parts_to_free)


# -- helpers -----------------------------------------------------------------


class _TaskShipper:
    """Routes tile tasks to the pool: solo ship, batch, or inline.

    One shipper lives for one partitioned query.  With ``inline_all``
    the executor has measured this exact plan before and found the
    whole sweep cheaper than a pool round-trip: every tile sweeps on
    the coordinator, no batching, no shipping.  Otherwise tiles at or
    above
    ``min_ship_rects`` ship individually the moment they arrive
    (streaming submission is preserved — workers sweep early tiles
    while the coordinator materializes later ones).  Smaller tiles
    accumulate into a pending batch; when the batch's logical payload
    reaches ``tile_batch_bytes`` it ships as **one** pool task
    (:func:`sweep_tile_batch_task`).  The trailing batch ships only if
    it is collectively worth a round-trip (``>= min_ship_rects``
    rectangles); otherwise its tiles sweep inline, exactly like the
    pre-batching cutoff.  ``tile_batch_bytes == 0`` disables batching
    outright: small tiles sweep inline, the PR-3 behaviour.

    ``submitted`` collects ``(future, shipped, size, tiles)`` in
    submission order; payloads and task functions ride along on the
    future for broken-pool recovery.

    With ``traced=True`` every task runs through its traced wrapper
    (:func:`sweep_tile_task_traced` / :func:`sweep_tile_batch_task_traced`),
    which returns ``(outcome, span dict)`` instead of the bare outcome
    — the worker-side half of the trace tree, shipped back across the
    process boundary with the result.  Untraced queries dispatch the
    bare functions: the zero-cost-when-off contract.

    On a process pool with working shared memory, a shipped task whose
    logical payload reaches the executor's ``shm_min_bytes`` has its
    :class:`ColumnarTile` sides swapped for :class:`ShmTileRef`
    handles before pickling — the columns cross the process boundary
    through a shared segment (memcpy on first publish, zero-copy on
    every re-ship of a cached tile) and the worker maps them in place.
    Packing is best-effort: any failure leaves the tile in the payload
    and pickling proceeds as before.
    """

    def __init__(self, executor: "Executor",
                 traced: bool = False,
                 inline_all: bool = False,
                 cancel: Optional[CancelToken] = None) -> None:
        self.ex = executor
        self.pool = executor.worker_pool
        self.traced = traced
        self.inline_all = inline_all
        #: Per-query cancel token appended to every task payload
        #: (element 8), so workers check it at tile boundaries.
        self.cancel = cancel
        self._solo_fn = (
            sweep_tile_task_traced if traced else sweep_tile_task
        )
        self._batch_fn = (
            sweep_tile_batch_task_traced if traced
            else sweep_tile_batch_task
        )
        self.submitted: List[tuple] = []
        self._pending: List[Tuple[tuple, int]] = []
        self._pending_size = 0
        self.batches = 0
        self.batched_tiles = 0
        self.shm_tasks = 0
        self._use_shm = (
            self.pool.kind == "process"
            and executor.shm_min_bytes >= 0
            and self.pool.shm.enabled
        )

    def add(self, payload: tuple, size: int) -> None:
        if self.cancel is not None:
            payload = payload + (self.cancel,)
        if self.pool.kind == "serial" or self.inline_all:
            self._inline(payload, size)
            return
        if size >= self.ex.min_ship_rects:
            self._ship(self._solo_fn, payload, size, 1)
            return
        if self.ex.tile_batch_bytes <= 0:
            self._inline(payload, size)
            return
        self._pending.append((payload, size))
        self._pending_size += size
        if self._pending_size * RECT_BYTES >= self.ex.tile_batch_bytes:
            self._flush_pending(ship=True)

    def flush(self) -> None:
        """Dispatch the trailing batch (ship it only if it pays)."""
        self._flush_pending(
            ship=self._pending_size >= self.ex.min_ship_rects
        )

    # -- internals -------------------------------------------------------

    def _flush_pending(self, ship: bool) -> None:
        if not self._pending:
            return
        if ship and len(self._pending) > 1:
            payloads = tuple(p for p, _ in self._pending)
            self.batches += 1
            self.batched_tiles += len(payloads)
            self._ship(self._batch_fn, payloads,
                       self._pending_size, len(payloads))
        elif ship:
            payload, size = self._pending[0]
            self._ship(self._solo_fn, payload, size, 1)
        else:
            for payload, size in self._pending:
                self._inline(payload, size)
        self._pending = []
        self._pending_size = 0

    def _ship(self, fn, payload, size: int, tiles: int) -> None:
        shm_names = ()
        if self._use_shm and size * RECT_BYTES >= self.ex.shm_min_bytes:
            payload, shm_names = self._shm_payload(fn, payload)
        if shm_names:
            # Inflight must be registered BEFORE submit: the broken-pool
            # submit fallback resets the shm manager and then runs the
            # task inline immediately — without the inflight pin the
            # reset would close the very segments the payload points at.
            self.pool.shm.add_inflight(shm_names)
            self.shm_tasks += 1
        fut = self.pool.submit(fn, payload, units=tiles)
        fut._repro_payload = payload
        fut._repro_fn = fn
        fut._repro_shm = shm_names
        self.submitted.append((fut, True, size, tiles))

    def _shm_payload(self, fn, payload):
        """Swap the payload's tile sides for shared-memory refs.

        Returns ``(payload, segment names)``; the original payload and
        ``()`` when nothing was packable (list-form sides, or the
        segment allocation failed — pickling is always correct).
        """
        batch = fn is self._batch_fn
        payloads = payload if batch else (payload,)
        tiles: List[ColumnarTile] = []
        slots: List[Tuple[int, int]] = []
        for pi, p in enumerate(payloads):
            for si in (2, 3):
                side = p[si]
                if isinstance(side, ColumnarTile) and len(side):
                    tiles.append(side)
                    slots.append((pi, si))
        if not tiles:
            return payload, ()
        refs = self.pool.shm.refs_for(tiles)
        if refs is None:
            return payload, ()
        out = [list(p) for p in payloads]
        names = set()
        for (pi, si), ref in zip(slots, refs):
            out[pi][si] = ref
            names.add(ref.segment)
        packed = tuple(tuple(p) for p in out)
        return (packed if batch else packed[0]), frozenset(names)

    def release_shm(self) -> None:
        """Drop the inflight pins of every shipped task (post-gather)."""
        manager = self.pool.shm
        for fut, shipped, _size, _tiles in self.submitted:
            if shipped:
                names = getattr(fut, "_repro_shm", ())
                if names:
                    manager.task_done(names)

    def _inline(self, payload: tuple, size: int) -> None:
        self.submitted.append(
            (self.pool.run_inline(self._solo_fn, payload), False,
             size, 1)
        )


class _OpCounter:
    """Minimal env stand-in for worker-local sweeps: counts CPU ops."""

    def __init__(self) -> None:
        self.cpu_ops = 0

    def charge(self, category: str, ops: int) -> None:
        if ops > 0:
            self.cpu_ops += ops


_np_sweep_mod = False  # False = not probed yet; None = unavailable


def _np_sweep():
    """The vectorized kernel module, or None (memoized per process)."""
    global _np_sweep_mod
    if _np_sweep_mod is False:
        try:
            from repro.core.kernels import np_sweep as mod

            _np_sweep_mod = mod
        except ImportError:
            _np_sweep_mod = None
    return _np_sweep_mod


def sweep_tile_task(payload: tuple) -> Tuple[int, Optional[List[Tuple[int, int]]], int, int]:
    """Sweep one partition tile; runs on a pool worker or inline.

    The payload is self-contained and picklable: tiles arrive either as
    :class:`ColumnarTile` columns (decoded here, once) or as ready
    ``Rect`` lists (inline/thread dispatch); ``side_b is None`` marks a
    self-join, whose single side sweeps against itself.  The sweep is
    the zero-callback batched kernel; reference-point ownership and
    self-join dedup run in one tight loop over the batch, so no Python
    callback fires per candidate pair.  For self-joins the sweep emits
    every pair in both orientations plus each rectangle against itself,
    and the filter keeps exactly the ``rid_a < rid_b`` representative.

    Returns ``(owned pair count, owned pairs or None, cpu ops,
    duplicates suppressed by the reference-point test and self-join
    dedup)`` — op counts bit-identical to the per-pair-callback path.

    The payload's optional eighth element names the sweep kernel
    (``"python"`` when absent — old payloads stay valid); the optional
    ninth is the query's :class:`~repro.engine.pool.CancelToken`,
    checked before the sweep so a deadline-doomed task stops at the
    tile boundary instead of finishing a pointless sweep (batch tasks
    inherit one check per tile from their per-payload loop).  Tile
    sides may arrive as :class:`ShmTileRef` handles, resolved here into
    zero-copy views over the coordinator's shared segment.  The numpy
    kernel runs the whole tile body vectorized when the tile is big
    enough to pay its fixed cost; anything smaller — and any input
    outside the vectorized model — takes the python body below, with
    bit-identical results either way.
    """
    part_id, grid_spec, side_a, side_b, self_join, collect, window = (
        payload[:7]
    )
    kernel = payload[7] if len(payload) > 7 else "python"
    cancel = payload[8] if len(payload) > 8 else None
    if cancel is not None:
        cancel()  # raises DeadlineExceeded past the deadline
    if isinstance(side_a, ShmTileRef):
        side_a = resolve_shm_tile(side_a)
    if isinstance(side_b, ShmTileRef):
        side_b = resolve_shm_tile(side_b)
    if kernel == "numpy":
        columnar = isinstance(side_a, ColumnarTile) and (
            side_b is None or isinstance(side_b, ColumnarTile)
        )
        cutoff = (
            NUMPY_MIN_TILE_RECTS if columnar else NUMPY_MIN_LIST_RECTS
        )
        size = len(side_a) + len(side_a if side_b is None else side_b)
        if size >= cutoff:
            mod = _np_sweep()
            if mod is not None:
                out = mod.sweep_tile(side_a, side_b, self_join,
                                     grid_spec, part_id, window,
                                     collect)
                if out is not None:
                    return out
    if isinstance(side_a, ColumnarTile):
        side_a = side_a.decode_sorted_cached()
    if side_b is None:
        side_b = side_a
    elif isinstance(side_b, ColumnarTile):
        side_b = side_b.decode_sorted_cached()
    if window is not None:
        # Windowed reuse of a full distribution: prune to the window
        # exactly as the distribute phase would have (the filter keeps
        # sort order, so the presorted fast path stays intact).
        side_a = [r for r in side_a if r.intersects(window)]
        side_b = (
            side_a if self_join
            else [r for r in side_b if r.intersects(window)]
        )

    local = _OpCounter()
    batch, _stats = forward_sweep_pairs_batched(side_a, side_b, local)

    grid = TileGrid(
        Rect(grid_spec[0], grid_spec[1], grid_spec[2], grid_spec[3], 0),
        grid_spec[4], grid_spec[5],
    )
    part_of = grid.partition_of_point
    owned: List[Tuple[int, int]] = []
    append = owned.append
    dups = 0
    for ra, rb in batch:
        if self_join and not ra.rid < rb.rid:
            dups += 1
            continue
        x = ra.xlo if ra.xlo >= rb.xlo else rb.xlo
        y = ra.ylo if ra.ylo >= rb.ylo else rb.ylo
        if part_of(x, y) == part_id:
            append((ra.rid, rb.rid))
        else:
            dups += 1
    return (len(owned), owned if collect else None, local.cpu_ops, dups)


def sweep_tile_batch_task(payloads: tuple) -> Tuple[int, Optional[List[Tuple[int, int]]], int, int]:
    """Sweep a batch of small tiles in one pool task.

    The batch crosses the process boundary once (one pickle, one
    scheduling round-trip); the worker decodes each tile once, sweeps
    them back to back, and returns the *merged* outcome in the same
    ``(count, pairs, ops, dups)`` shape a single-tile task produces.
    Per-tile results are simply concatenated — each tile is an
    independent partition, so merging commutes with sweeping and the
    pair set and op accounting are bit-identical to per-tile dispatch.
    """
    count = 0
    ops = 0
    dups = 0
    # payload[5] is the collect flag; all tiles of one query share it.
    merged: Optional[List[Tuple[int, int]]] = (
        [] if payloads and payloads[0][5] else None
    )
    for payload in payloads:
        c, pairs, o, d = sweep_tile_task(payload)
        count += c
        ops += o
        dups += d
        if pairs is not None:
            merged.extend(pairs)
    return (count, merged, ops, dups)


def sweep_tile_task_traced(payload: tuple) -> Tuple[tuple, dict]:
    """:func:`sweep_tile_task` plus a worker-side span dict.

    The dict is plain picklable data — built inside the pool worker,
    shipped back attached to the outcome, and converted to a
    :class:`~repro.engine.trace.Span` on the coordinator
    (:meth:`Span.from_task`), which also prices the ops on the
    engine's machine.  The wrapped outcome is bit-identical to the
    untraced task's.
    """
    t0 = time.perf_counter()
    outcome = sweep_tile_task(payload)
    return outcome, {
        "name": "sweep-task",
        "part": payload[0],
        "tiles": 1,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_ops": outcome[2],
        "pairs": outcome[0],
        "dups": outcome[3],
        "pid": os.getpid(),
    }


def sweep_tile_batch_task_traced(payloads: tuple) -> Tuple[tuple, dict]:
    """:func:`sweep_tile_batch_task` plus a worker-side span dict.

    One span per *task* (the scheduling unit), not per tile — the
    batch crossed the boundary once and swept back to back, and that
    is the story the trace tells; ``tiles`` records the amortization.
    """
    t0 = time.perf_counter()
    outcome = sweep_tile_batch_task(payloads)
    return outcome, {
        "name": "sweep-task",
        "part": None,
        "tiles": len(payloads),
        "wall_seconds": time.perf_counter() - t0,
        "cpu_ops": outcome[2],
        "pairs": outcome[0],
        "dups": outcome[3],
        "pid": os.getpid(),
    }


def _distribute(stream, parts: List[SpillablePartition], grid: TileGrid,
                window: Optional[Rect]) -> int:
    """Scan a base stream into tile partitions (spillable).

    The scan charges one sequential read pass on the shared disk (the
    partition pass the optimizer priced); partitions hold tiles in
    memory up to their allowance and overflow to disk streams beyond
    it.  Returns abstract partitioning ops.
    """
    ops = 0
    for r in stream.scan():
        if window is not None and not r.intersects(window):
            ops += 1
            continue
        targets = grid.partitions_of(r)
        ops += 1 + len(targets)
        for t in targets:
            parts[t].append(r)
    return ops


def _critical_path_ops(part_ops: List[int], workers: int) -> int:
    """Busiest worker's ops under greedy LPT assignment of partitions."""
    if not part_ops:
        return 0
    loads = [0] * max(1, workers)
    for w in sorted(part_ops, reverse=True):
        loads[loads.index(min(loads))] += w
    return max(loads)


def _filter_window(result: JoinResult, entries: List[CatalogEntry],
                   window: Rect) -> JoinResult:
    """Keep pairs/tuples whose common MBR intersection meets the window."""
    kept = []
    for ids in result.pairs:
        rects = [entries[i].by_id[rid] for i, rid in enumerate(ids)]
        acc: Optional[Rect] = rects[0]
        for r in rects[1:]:
            acc = intersection(acc, r)
            if acc is None:
                break
        if acc is not None and acc.intersects(window):
            kept.append(ids)
    result.detail["window_filtered"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result


def _refine_pairs(result: JoinResult,
                  entries: List[CatalogEntry]) -> JoinResult:
    """Exact-geometry refinement where both sides registered geometry."""
    geom_a = entries[0].geometries
    geom_b = entries[1].geometries
    if geom_a is None and geom_b is None:
        result.detail["refined_out"] = 0
        return result
    kept = []
    for ida, idb in result.pairs:
        ga = geom_a.get(ida) if geom_a else None
        gb = geom_b.get(idb) if geom_b else None
        if ga is not None and gb is not None:
            if polylines_intersect(ga, gb):
                kept.append((ida, idb))
        else:
            # No exact geometry on one side: the MBR filter verdict
            # stands (refinement can only confirm what it can see).
            kept.append((ida, idb))
    result.detail["refined_out"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result
