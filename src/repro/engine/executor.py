"""Physical plan execution, including partitioned parallel joins.

Direct plans delegate to the algorithms the repo already trusts
(:func:`unified_spatial_join`, :func:`st_join`, :func:`multiway_join`).
The engine-only path is **partitioned execution**: both inputs are
scanned once, cut into PBSM-style tiles (reusing PBSM's tile grid and
reference-point arithmetic), and the per-partition sweeps are fanned
out over the engine's persistent :class:`~repro.engine.pool.WorkerPool`
— process-based by default, so the sweeps run on separate interpreters
instead of serializing on the GIL.  Duplicate pairs — a pair is
replicated into every partition its rectangles straddle — are
eliminated exactly as in PBSM: a pair is reported only by the partition
owning the tile of its reference point, so the merge is pure
concatenation.

The hot path is built around four cooperating mechanisms:

* **Persistent pool** — the pool outlives queries; the plan's
  ``workers`` count is a scheduling hint for the simulated critical
  path, not a pool size.  Tasks smaller than ``min_ship_rects`` run
  inline on the coordinator (shipping them would cost more than the
  sweep), and a broken process pool degrades to threads without losing
  a query.
* **Columnar shipping** — tiles cross the process boundary as
  :class:`~repro.core.columnar.ColumnarTile` flat arrays, not lists of
  ``Rect`` NamedTuples; a worker decodes each tile once and sweeps over
  locals.  Spilled partitions materialize into the same format
  (:meth:`SpillablePartition.materialize_columnar`).
* **Zero-callback sweep** — workers run
  :func:`~repro.core.sweep.forward_sweep_pairs_batched`, which appends
  intersecting pairs to a local batch instead of invoking a
  ``PairSink`` per pair; reference-point ownership and self-join dedup
  are applied in one tight loop over the batch.  Comparison counting is
  bit-identical to the callback mode and flushed once per tile.
* **Partition-artifact cache** — the distributed tiles of recent
  relation pairs are retained (budget-charged, LRU by bytes) in the
  engine's :class:`~repro.engine.cache.PartitionArtifactCache`; a warm
  repeated query skips the scan + distribute + spill phases entirely
  and goes straight to the sweeps.

Worker tasks touch no shared simulation state: each sweeps local
rectangle lists against a private op counter, and the merged op total
is charged to the environment once.  Alongside the total the executor
computes the *critical path* (the busiest worker's ops under a greedy
longest-processing-time assignment), from which the engine derives the
simulated parallel wall time.

Partitioned execution runs under the engine's shared
:class:`~repro.engine.resources.ResourceBudget`: the executor acquires
a grant for its tiles (category ``"tiles"``) — evicting cached
artifacts first if the budget is short — and a partition that outgrows
the shared allowance overflows into a disk-backed
:class:`~repro.core.pbsm.SpillablePartition` stream, re-read before its
sweep, with the spill traffic priced by the same simulated-disk ledger
as every other I/O.  Coordinator-side materialization streams: each
partition is handed to the pool the moment it materializes, so workers
sweep early partitions while the coordinator re-reads later ones.
Self-joins ride the same path: the single input is distributed once,
each partition is swept against itself, and the symmetric/identity
pairs are deduplicated in the batch filter (only ``rid_a < rid_b``
survives).

Window and refinement predicates are applied as post-filters on the
collected pairs, using the catalog's id -> rectangle / geometry maps.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from typing import List, Optional, Tuple

from repro.core.columnar import ColumnarTile
from repro.core.join_result import JoinResult
from repro.core.multiway import multiway_join
from repro.core.pbsm import (
    SpillablePartition,
    TileAllowance,
    TileGrid,
)
from repro.core.planner import unified_spatial_join
from repro.core.st_join import st_join
from repro.core.sweep import forward_sweep_pairs_batched
from repro.engine.cache import (
    PartitionArtifactCache,
    artifact_key,
    grid_tiles,
)
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.optimizer import PhysicalPlan
from repro.engine.pool import WorkerPool
from repro.engine.resources import ResourceBudget
from repro.geom.rect import RECT_BYTES, Rect, intersection, union_mbr
from repro.geom.refine import polylines_intersect
from repro.sim.machines import MachineSpec
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk

#: Tile grid resolution for partitioned plans.  Coarser than PBSM's
#: 128x128 because partitions here number workers x 4, not hundreds.
DEFAULT_TILES_PER_SIDE = 32

#: Tasks below this many rectangles (both sides) sweep inline on the
#: coordinator: pickling a tile across the process boundary costs more
#: than a small sweep saves.  Tests force shipping with 0.
DEFAULT_MIN_SHIP_RECTS = 2048


class Executor:
    """Runs :class:`PhysicalPlan` objects against the catalog."""

    def __init__(
        self,
        disk: Disk,
        machine: MachineSpec,
        pool: Optional[BufferPool] = None,
        tiles_per_side: int = DEFAULT_TILES_PER_SIDE,
        budget: Optional[ResourceBudget] = None,
        worker_pool: Optional[WorkerPool] = None,
        artifacts: Optional[PartitionArtifactCache] = None,
        min_ship_rects: int = DEFAULT_MIN_SHIP_RECTS,
    ) -> None:
        self.disk = disk
        self.machine = machine
        self.pool = pool
        self.tiles_per_side = tiles_per_side
        self.budget = budget
        # A private serial pool keeps direct (engine-less) construction
        # working; the engine passes its long-lived shared pool.
        self.worker_pool = worker_pool or WorkerPool(1, kind="serial")
        self.artifacts = artifacts
        self.min_ship_rects = max(0, min_ship_rects)

    # -- public ----------------------------------------------------------

    def execute(self, plan: PhysicalPlan, catalog: Catalog) -> JoinResult:
        query = plan.query
        entries = [catalog.get(n) for n in query.relations]
        if plan.mode == "empty":
            result = JoinResult(
                algorithm="empty", n_pairs=0,
                pairs=[] if query.collect_pairs else None,
                detail={"strategy": "empty"},
            )
        elif plan.mode == "multiway":
            result = self._execute_multiway(plan, entries)
        elif plan.mode == "partitioned":
            result = self._execute_partitioned(plan, entries)
        else:
            result = self._execute_pairwise(plan, entries)

        if query.window is not None and result.pairs is not None:
            result = _filter_window(result, entries, query.window)
        if query.refine and result.pairs is not None:
            result = _refine_pairs(result, entries)
        result.detail.setdefault("strategy", plan.strategy)
        return result

    # -- direct paths ----------------------------------------------------

    def _execute_pairwise(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        query = plan.query
        if plan.strategy == "st":
            result = st_join(
                entries[0].tree, entries[1].tree,
                collect_pairs=query.collect_pairs, pool=self.pool,
            )
            result.detail["strategy"] = "st"
            result.detail["estimated_io_seconds"] = plan.estimate.io_seconds
            return result
        # Materialize only the representations the chosen strategy
        # touches: a plan that priced the stream paths (auto_index off,
        # or sssj simply winning) must not trigger lazy index builds.
        rel_a = entries[0].relation(
            universe=plan.regions[0],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-a"),
        )
        rel_b = entries[1].relation(
            universe=plan.regions[1],
            with_tree=plan.strategy in ("pq-index", "pq-mixed-b"),
        )
        return unified_spatial_join(
            rel_a, rel_b, self.disk, self.machine,
            collect_pairs=query.collect_pairs, force=plan.strategy,
        )

    def _execute_multiway(self, plan: PhysicalPlan,
                          entries: List[CatalogEntry]) -> JoinResult:
        inputs = [
            e.tree if e.has_tree else e.stream for e in entries
        ]
        return multiway_join(
            inputs, self.disk,
            collect_tuples=plan.query.collect_pairs,
        )

    # -- partitioned parallel path ---------------------------------------

    def _execute_partitioned(self, plan: PhysicalPlan,
                             entries: List[CatalogEntry]) -> JoinResult:
        env = self.disk.env
        query = plan.query
        self_join = query.is_self_join
        universe = union_mbr(plan.regions[0], plan.regions[1])
        n_parts = max(1, plan.partitions)
        grid = TileGrid(universe, grid_tiles(self.tiles_per_side, n_parts),
                        n_parts)
        grid_spec = (universe.xlo, universe.xhi, universe.ylo,
                     universe.yhi, grid.t, n_parts)
        collect = query.collect_pairs

        versions = tuple(
            (e.name, e.version)
            for e in (entries[:1] if self_join else entries)
        )
        akey = artifact_key(versions, universe, self.tiles_per_side,
                            n_parts, query.window)
        cached = None
        task_window: Optional[Rect] = None
        if self.artifacts is not None:
            hit_key = akey if self.artifacts.has(akey) else None
            if hit_key is None and query.window is not None:
                # Overlapping-query reuse: a windowed query can sweep
                # the cached *full* distribution of the same relations.
                # The distribute-phase window filter is only a pruning
                # step — window semantics are enforced by the pair
                # post-filter (``_filter_window``), which windowed
                # queries always run (they must collect pairs) — so
                # the final pair set is identical; the full sweep
                # trades some extra worker CPU for skipping the whole
                # scan + distribute phase.
                full_universe = union_mbr(
                    entries[0].universe, entries[-1].universe
                )
                fkey = artifact_key(versions, full_universe,
                                    self.tiles_per_side, n_parts, None)
                if self.artifacts.has(fkey):
                    hit_key = fkey
                    universe = full_universe
                    grid = TileGrid(
                        universe,
                        grid_tiles(self.tiles_per_side, n_parts),
                        n_parts,
                    )
                    grid_spec = (universe.xlo, universe.xhi,
                                 universe.ylo, universe.yhi,
                                 grid.t, n_parts)
                    # Workers prune the full tiles to the window before
                    # sweeping — the same filter distribute would have
                    # applied, so the sweep stays window-sized.
                    task_window = query.window
            # Exactly one hit/miss event per query: the probes above
            # use has(), which bumps no counters.
            cached = self.artifacts.get(hit_key if hit_key else akey)

        if cached is not None:
            submitted, grant = self._submit_cached(
                cached, grid_spec, self_join, collect, n_parts,
                task_window,
            )
            spilled_rects = spill_partitions = 0
            parts_to_free: List[SpillablePartition] = []
        else:
            (submitted, grant, spilled_rects, spill_partitions,
             parts_to_free) = self._distribute_and_submit(
                plan, entries, grid, grid_spec, self_join, collect,
                n_parts, akey,
            )
        try:
            outcomes = self._gather(submitted)
        finally:
            for p in parts_to_free:
                p.free()
            if grant is not None:
                grant.release()

        pairs: Optional[List[Tuple[int, int]]] = [] if collect else None
        n_pairs = 0
        total_ops = 0
        duplicates = 0
        part_ops: List[int] = []
        for count, part_pairs, task_ops, dups in outcomes:
            n_pairs += count
            total_ops += task_ops
            duplicates += dups
            part_ops.append(task_ops)
            if pairs is not None:
                pairs.extend(part_pairs)
        env.charge("sweep", total_ops)

        critical = _critical_path_ops(part_ops, plan.workers)
        saved_seconds = (
            (total_ops - critical) * self.machine.cpu.seconds_per_op
        )
        task_sizes = [size for _, _, size in submitted]
        return JoinResult(
            algorithm="PBSM-grid",
            n_pairs=n_pairs,
            pairs=pairs,
            max_memory_bytes=max(
                (s * RECT_BYTES for s in task_sizes), default=0
            ),
            detail={
                "strategy": "pbsm-grid",
                "estimated_io_seconds": plan.estimate.io_seconds,
                "workers": plan.workers,
                "partitions": n_parts,
                "active_partitions": len(task_sizes),
                "tiles_per_side": grid.t,
                "sweep_ops_total": total_ops,
                "sweep_ops_critical": critical,
                "parallel_cpu_seconds_saved": saved_seconds,
                "duplicates_eliminated": duplicates,
                "self_join": self_join,
                "tile_grant_bytes": grant.bytes if grant else 0,
                "spilled_rects": spilled_rects,
                "spilled_bytes": spilled_rects * RECT_BYTES,
                "spill_partitions": spill_partitions,
                "artifact_hit": cached is not None,
                "pool_kind": self.worker_pool.kind,
                "tasks_shipped": sum(
                    1 for _, shipped, _ in submitted if shipped
                ),
            },
        )

    # -- partitioned internals -------------------------------------------

    def _submit(self, payload: tuple, size: int) -> tuple:
        """Hand one tile task to the pool (or sweep inline if small).

        Returns ``(future, shipped, size)``; the payload rides along on
        the future object for :meth:`_gather`'s broken-pool recovery.
        """
        pool = self.worker_pool
        if pool.kind == "serial" or size < self.min_ship_rects:
            return (pool.run_inline(sweep_tile_task, payload), False, size)
        fut = pool.submit(sweep_tile_task, payload)
        fut._repro_payload = payload
        return (fut, True, size)

    def _gather(self, submitted: List[tuple]) -> List[tuple]:
        outcomes = []
        for fut, shipped, _size in submitted:
            if not shipped:
                outcomes.append(fut.result())
                continue
            try:
                outcomes.append(fut.result())
            except BrokenExecutor:
                # The pool died under this task (sandboxed fork,
                # killed worker).  Recompute inline and demote the
                # pool so the remaining queries keep flowing.  Task-body
                # exceptions are not caught: they propagate with their
                # real origin.
                outcomes.append(
                    self.worker_pool.recover(
                        sweep_tile_task, fut._repro_payload
                    )
                )
        return outcomes

    def _submit_cached(
        self, cached: List[tuple], grid_spec: tuple,
        self_join: bool, collect: bool, n_parts: int,
        window: Optional[Rect],
    ) -> Tuple[List[tuple], Optional[object]]:
        """Warm path: the distribute phase is skipped entirely.

        Cached columnar tiles go straight to the pool; the only budget
        interaction is a ``"tiles"`` grant for the decoded working set
        the sweeps hold resident (the encoded artifact stays charged
        under ``"artifacts"``).  ``window`` is set when a windowed
        query reuses the full distribution: workers prune each tile to
        the window before sweeping.
        """
        grant = None
        if self.budget is not None:
            decoded = sum(
                (len(a) + len(a if b is None else b)) * RECT_BYTES
                for _, a, b in cached
            )
            grant = self.budget.acquire(
                "tiles", decoded, minimum=n_parts * RECT_BYTES
            )
        submitted = []
        for part_id, tile_a, tile_b in cached:
            size = len(tile_a) + len(tile_a if tile_b is None else tile_b)
            payload = (part_id, grid_spec, tile_a, tile_b, self_join,
                       collect, window)
            submitted.append(self._submit(payload, size))
        return submitted, grant

    def _distribute_and_submit(
        self, plan: PhysicalPlan, entries: List[CatalogEntry],
        grid: TileGrid, grid_spec: tuple, self_join: bool,
        collect: bool, n_parts: int, akey: tuple,
    ):
        """Cold path: scan, distribute, then stream tasks to the pool.

        Partitions are materialized on this thread (spill re-reads hit
        the shared simulated disk, whose counters are not thread-safe)
        and each task is submitted the moment its tiles are ready, so
        worker sweeps overlap the materialization of later partitions.
        Spill-charge accounting is identical to the pre-streaming
        executor: distribute ops, spill writes and spill re-reads are
        each charged once, at the same aggregation points.
        """
        env = self.disk.env
        query = plan.query

        # One grant for all in-memory tiles, drawn down first come
        # first served by every partition (a per-partition split would
        # spill hot partitions while cold ones waste their share).
        # Requested at the scan size and extended on demand while the
        # budget has free bytes (boundary replication makes the true
        # footprint unknowable up front), so tiles spill only when the
        # budget is genuinely exhausted — and cached artifacts are
        # evicted first: execution memory outranks cached artifacts.
        grant = allowance = None
        if self.budget is not None:
            want = sum(
                e.stream.data_bytes
                for e in (entries[:1] if self_join else entries)
            )
            if self.artifacts is not None:
                self.artifacts.make_room(want)
            grant = self.budget.acquire(
                "tiles", want, minimum=n_parts * RECT_BYTES
            )
            allowance = TileAllowance(grant.bytes, grant=grant)

        parts_a = [
            SpillablePartition(self.disk, f"tiles.a{i}",
                               allowance=allowance)
            for i in range(n_parts)
        ]
        parts_b = parts_a
        parts_to_free = list(parts_a)
        submitted: List[tuple] = []
        try:
            ops = _distribute(entries[0].stream, parts_a, grid,
                              query.window)
            if not self_join:
                parts_b = [
                    SpillablePartition(self.disk, f"tiles.b{i}",
                                       allowance=allowance)
                    for i in range(n_parts)
                ]
                parts_to_free.extend(parts_b)
                ops += _distribute(entries[1].stream, parts_b, grid,
                                   query.window)
            env.charge("partition", ops)

            all_parts = (
                parts_a if self_join else parts_a + parts_b
            )
            spilled_rects = sum(p.spilled_rects for p in all_parts)
            spill_partitions = sum(1 for p in all_parts if p.spilled)
            # The write side of the spill, one op per record; the
            # streams charged the block I/O as they flushed.
            env.charge("spill", spilled_rects)

            # Only partitions that actually join are re-read, and their
            # spilled bytes are charged back to the grant: the sweep
            # phase holds them resident again, and the high-water mark
            # must say so rather than pretend the spill kept it flat.
            # A self-join partition is materialized once and swept
            # against itself — re-reading its spill stream twice would
            # double-charge the one-write-one-reread model the
            # optimizer priced.
            ship = self.worker_pool.kind == "process"
            will_cache = (
                self.artifacts is not None
                and self.artifacts.max_bytes != 0
            )
            cache_tasks: List[tuple] = []
            reread_rects = 0
            for i in range(n_parts):
                if not (len(parts_a[i]) and len(parts_b[i])):
                    continue
                active = (
                    (parts_a[i],) if self_join
                    else (parts_a[i], parts_b[i])
                )
                reread_rects += sum(p.spilled_rects for p in active)
                size = len(parts_a[i]) + len(parts_b[i])
                if ship and size >= self.min_ship_rects:
                    # Columnar from the start: the same flat tiles
                    # serve the pickle boundary and the artifact cache.
                    side_a = parts_a[i].materialize_columnar()
                    side_b = (
                        None if self_join
                        else parts_b[i].materialize_columnar()
                    )
                else:
                    side_a = parts_a[i].materialize()
                    side_b = None if self_join else parts_b[i].materialize()
                # Cold tiles are already window-filtered by distribute,
                # so the task carries no window of its own.
                payload = (i, grid_spec, side_a, side_b, self_join,
                           collect, None)
                submitted.append(self._submit(payload, size))
                if will_cache:
                    cache_tasks.append((i, side_a, side_b))
            env.charge("spill", reread_rects)
            if grant is not None:
                grant.charge(reread_rects * RECT_BYTES)
        except BaseException:
            for p in parts_to_free:
                p.free()
            if grant is not None:
                grant.release()
            raise

        # Retain the distribution for warm repeats — memory-resident
        # runs only (a spilled distribution exists precisely because
        # the budget could not hold it).  Encodes any list-form tiles
        # to columnar; put() takes bytes from the budget's free pool
        # and evicts LRU artifacts, never live grants.
        if will_cache and spilled_rects == 0 and cache_tasks:
            self.artifacts.put(akey, [
                (
                    i,
                    a if isinstance(a, ColumnarTile)
                    else ColumnarTile.from_rects(a),
                    b if b is None or isinstance(b, ColumnarTile)
                    else ColumnarTile.from_rects(b),
                )
                for i, a, b in cache_tasks
            ])
        return (submitted, grant, spilled_rects, spill_partitions,
                parts_to_free)


# -- helpers -----------------------------------------------------------------


class _OpCounter:
    """Minimal env stand-in for worker-local sweeps: counts CPU ops."""

    def __init__(self) -> None:
        self.cpu_ops = 0

    def charge(self, category: str, ops: int) -> None:
        if ops > 0:
            self.cpu_ops += ops


def sweep_tile_task(payload: tuple) -> Tuple[int, Optional[List[Tuple[int, int]]], int, int]:
    """Sweep one partition tile; runs on a pool worker or inline.

    The payload is self-contained and picklable: tiles arrive either as
    :class:`ColumnarTile` columns (decoded here, once) or as ready
    ``Rect`` lists (inline/thread dispatch); ``side_b is None`` marks a
    self-join, whose single side sweeps against itself.  The sweep is
    the zero-callback batched kernel; reference-point ownership and
    self-join dedup run in one tight loop over the batch, so no Python
    callback fires per candidate pair.  For self-joins the sweep emits
    every pair in both orientations plus each rectangle against itself,
    and the filter keeps exactly the ``rid_a < rid_b`` representative.

    Returns ``(owned pair count, owned pairs or None, cpu ops,
    duplicates suppressed by the reference-point test and self-join
    dedup)`` — op counts bit-identical to the per-pair-callback path.
    """
    part_id, grid_spec, side_a, side_b, self_join, collect, window = (
        payload
    )
    if isinstance(side_a, ColumnarTile):
        side_a = side_a.decode_sorted_cached()
    if side_b is None:
        side_b = side_a
    elif isinstance(side_b, ColumnarTile):
        side_b = side_b.decode_sorted_cached()
    if window is not None:
        # Windowed reuse of a full distribution: prune to the window
        # exactly as the distribute phase would have (the filter keeps
        # sort order, so the presorted fast path stays intact).
        side_a = [r for r in side_a if r.intersects(window)]
        side_b = (
            side_a if self_join
            else [r for r in side_b if r.intersects(window)]
        )

    local = _OpCounter()
    batch, _stats = forward_sweep_pairs_batched(side_a, side_b, local)

    grid = TileGrid(
        Rect(grid_spec[0], grid_spec[1], grid_spec[2], grid_spec[3], 0),
        grid_spec[4], grid_spec[5],
    )
    part_of = grid.partition_of_point
    owned: List[Tuple[int, int]] = []
    append = owned.append
    dups = 0
    for ra, rb in batch:
        if self_join and not ra.rid < rb.rid:
            dups += 1
            continue
        x = ra.xlo if ra.xlo >= rb.xlo else rb.xlo
        y = ra.ylo if ra.ylo >= rb.ylo else rb.ylo
        if part_of(x, y) == part_id:
            append((ra.rid, rb.rid))
        else:
            dups += 1
    return (len(owned), owned if collect else None, local.cpu_ops, dups)


def _distribute(stream, parts: List[SpillablePartition], grid: TileGrid,
                window: Optional[Rect]) -> int:
    """Scan a base stream into tile partitions (spillable).

    The scan charges one sequential read pass on the shared disk (the
    partition pass the optimizer priced); partitions hold tiles in
    memory up to their allowance and overflow to disk streams beyond
    it.  Returns abstract partitioning ops.
    """
    ops = 0
    for r in stream.scan():
        if window is not None and not r.intersects(window):
            ops += 1
            continue
        targets = grid.partitions_of(r)
        ops += 1 + len(targets)
        for t in targets:
            parts[t].append(r)
    return ops


def _critical_path_ops(part_ops: List[int], workers: int) -> int:
    """Busiest worker's ops under greedy LPT assignment of partitions."""
    if not part_ops:
        return 0
    loads = [0] * max(1, workers)
    for w in sorted(part_ops, reverse=True):
        loads[loads.index(min(loads))] += w
    return max(loads)


def _filter_window(result: JoinResult, entries: List[CatalogEntry],
                   window: Rect) -> JoinResult:
    """Keep pairs/tuples whose common MBR intersection meets the window."""
    kept = []
    for ids in result.pairs:
        rects = [entries[i].by_id[rid] for i, rid in enumerate(ids)]
        acc: Optional[Rect] = rects[0]
        for r in rects[1:]:
            acc = intersection(acc, r)
            if acc is None:
                break
        if acc is not None and acc.intersects(window):
            kept.append(ids)
    result.detail["window_filtered"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result


def _refine_pairs(result: JoinResult,
                  entries: List[CatalogEntry]) -> JoinResult:
    """Exact-geometry refinement where both sides registered geometry."""
    geom_a = entries[0].geometries
    geom_b = entries[1].geometries
    if geom_a is None and geom_b is None:
        result.detail["refined_out"] = 0
        return result
    kept = []
    for ida, idb in result.pairs:
        ga = geom_a.get(ida) if geom_a else None
        gb = geom_b.get(idb) if geom_b else None
        if ga is not None and gb is not None:
            if polylines_intersect(ga, gb):
                kept.append((ida, idb))
        else:
            # No exact geometry on one side: the MBR filter verdict
            # stands (refinement can only confirm what it can see).
            kept.append((ida, idb))
    result.detail["refined_out"] = result.n_pairs - len(kept)
    result.pairs = kept
    result.n_pairs = len(kept)
    return result
