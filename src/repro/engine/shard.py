"""Scatter/gather serving over a sharded catalog.

One :class:`~repro.engine.engine.SpatialQueryEngine` owns one catalog,
one budget and one simulated disk — the single-box deployment.
:class:`ShardedEngine` is the next tier: each registered relation is
partitioned across N engine shards by **spatial region**, every shard
runs the full catalog → optimizer → executor stack over its slice, and
one shared :class:`~repro.engine.pool.WorkerPool` serves all of their
partitioned sweeps (each engine holds a ref-counted
:class:`~repro.engine.pool.PoolClient`, so per-shard dispatch stays
attributable and closing one shard never stops the others' pool).

**Sharding rule.**  The first registered relation fixes N-1 vertical
cut lines, placed so the relation's spatial histogram mass splits
evenly (the same histogram the optimizer already trusts for
selectivity).  Shard k owns the strip between cut k-1 and cut k (the
outer strips extend to ±infinity, so later relations can never fall
outside every shard); a rectangle is registered with **every** shard
whose strip it touches.  This boundary replication is what makes
scatter/gather exact:

* every pair a shard reports is genuine — both rectangles are real,
  the shard's engine checked the real intersection/window/refinement
  predicates — so the gathered union never over-reports;
* every genuine result pair is reported by at least one shard — the
  pair's reference point (the upper-left corner of the common
  intersection, PBSM's duplicate-elimination point) lies inside both
  rectangles, so the strip that contains it holds *both* via
  replication, and for windowed queries a point of
  ``intersection ∩ window`` works the same way.  The argument extends
  verbatim to multiway tuples, whose results have a common N-way
  intersection.

A rectangle pair straddling a cut is therefore found by up to two
shards; the gather phase deduplicates by rid pair (set union, the same
rule the self-join path uses) and counts what it dropped.

**Scatter planning.**  A query touches only the shards that (a) hold
data for every referenced relation and (b) — for windowed queries —
own a strip the window intersects, decided with the optimizer's own
:func:`~repro.engine.optimizer.effective_region` predicate so the
scatter layer and the per-shard planner agree on window semantics.
Pruned shards cost nothing, which is the localized-query win sharding
exists for.

**Isolation.**  Each shard keeps its own
:class:`~repro.engine.resources.ResourceBudget` slice (an explicit
``memory_bytes`` is divided evenly; the default gives every shard the
scaled paper budget), its own :class:`~repro.engine.cache.ArtifactCache`
(version-bump invalidation stays per-shard — re-registering a relation
invalidates every shard holding it, but never a *sibling engine's*
unrelated artifacts) and its own metrics; :meth:`ShardedEngine.metrics_snapshot` aggregates them with
:func:`~repro.engine.metrics.merge_snapshots` and overrides the
serving-level counters (one logical query is one serve, however many
shards it scattered to).

**Availability.**  ``replicas=R`` backs every strip with R identical
engines (same slice, same budget — replicas model separate boxes) on
the one shared pool.  Scatter picks a live replica per shard by
round-robin over a health score; a replica whose sub-query raises is
marked unhealthy, the failure is recorded (counters + a ``failover``
trace span) and the sub-query retried with exponential backoff on the
next candidate — the logical query only fails when *every* replica of
a participating shard does.  Unhealthy replicas are re-probed every
``PROBE_EVERY``-th selection and recover after consecutive successes.
Semantic errors (:class:`~repro.engine.resources.AdmissionError`,
unknown relations) are deterministic across replicas and re-raise
immediately — failing over would just repeat them R times.

**Durability.**  With ``artifact_dir`` set, every replica engine gets
its own keyed leaf (``root/shard-XX/replica-YY``) of one artifact
tree, so a restarted sharded engine rewarms each shard from disk
exactly like a restarted single engine — including each store's
background prewarm of its hottest artifacts.  Result-cache entries
persist **per shard** (``root/shard-XX/results``, shared by the
shard's replicas and content-addressed by the shard slice's
fingerprints + the canonical sub-query): the scatter still runs after
a restart, but every participating shard serves its sub-result
straight from disk instead of re-executing, so the per-shard
``disk_restores`` counters show the whole deployment rewarming, and a
replica that was down when a result was first computed can still
serve it.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as _replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.histogram import SpatialHistogram
from repro.core.join_result import JoinResult
from repro.engine.artifacts import (
    ResultStore,
    check_store_layout,
    result_token,
)
from repro.engine.cache import ResultCache
from repro.engine.catalog import GeometryMap, rects_fingerprint
from repro.engine.engine import (
    MAX_CACHED_PAIRS,
    EngineResult,
    SpatialQueryEngine,
    _copy_result,
    flatten_cache_keys,
    flatten_result_cache_keys,
)
from repro.engine.executor import (
    DEFAULT_MIN_SHIP_RECTS,
    DEFAULT_TILE_BATCH_BYTES,
)
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.metrics import (
    LatencyTracker,
    merge_snapshots,
    sum_counters,
)
from repro.engine.obs import SlowQueryLog
from repro.engine.optimizer import effective_region
from repro.engine.pool import DeadlineExceeded, WorkerPool
from repro.engine.query import Query
from repro.engine.resources import AdmissionError
from repro.engine.trace import SPAN_METRIC_FIELDS, Span
from repro.geom.rect import Rect, mbr_of
from repro.sim.machines import MACHINE_3, MachineSpec
from repro.sim.scale import DEFAULT_SCALE, ScaleConfig


def balanced_cuts(rects: Sequence[Rect], universe: Rect, shards: int,
                  grid: int) -> List[float]:
    """N-1 vertical cut lines splitting histogram mass evenly.

    Built from the same grid histogram the optimizer uses for
    selectivity: column masses (rectangle centers per column) are
    accumulated left to right and a cut dropped each time another
    1/N of the total mass has passed.  Degenerate data (all mass in
    one column) collapses cuts together, which just leaves the excess
    shards empty — correct, merely idle.
    """
    hist = SpatialHistogram.build(rects, universe, grid=grid)
    col_mass = [
        sum(hist.counts[row * grid + col] for row in range(grid))
        for col in range(grid)
    ]
    total = sum(col_mass)
    cuts: List[float] = []
    acc = 0
    col = 0
    for k in range(1, shards):
        target = total * k / shards
        while col < grid and acc < target:
            acc += col_mass[col]
            col += 1
        cuts.append(universe.xlo + col * hist.cell_w)
    return cuts


#: Every this-many replica selections for a shard with unhealthy
#: replicas, the sick ones are tried *first* — the recovery probe that
#: lets a healed replica earn its health score back.
PROBE_EVERY = 8

#: Health scores below this are "unhealthy": skipped by normal
#: selection, visited only by recovery probes (or when nothing
#: healthier is left).
HEALTH_FLOOR = 0.5

#: Cap on the exponential retry backoff between failover attempts.
MAX_BACKOFF_SECONDS = 0.25

#: A healthy replica whose observed-latency EWMA exceeds the fastest
#: sibling's by this factor is deprioritized (still served, last) —
#: health says *up or down*, the EWMA says *fast or slow*.
SLOW_REPLICA_FACTOR = 1.5

#: Smoothing factor for the per-replica observed-latency EWMA.
EWMA_ALPHA = 0.3

#: Most coordinator threads one scatter fan-out will use; the real
#: bound is min(participating shards, this, pool workers are shared
#: anyway so more buys nothing).
MAX_SCATTER_THREADS = 8


def lpt_makespan(walls: Sequence[float], lanes: int) -> float:
    """Makespan of ``walls`` LPT-scheduled onto ``lanes`` lanes.

    The scatter critical path: participating shards run *concurrently*
    on one shared worker pool, so the simulated cost of a scattered
    query is not the sum of its shard walls but the makespan of the
    best greedy (longest-processing-time-first) placement onto the
    pool's parallel lanes.  One lane degenerates to the sum; at least
    as many lanes as shards degenerates to the max.
    """
    if not walls:
        return 0.0
    lanes = max(1, int(lanes))
    if lanes == 1:
        return float(sum(walls))
    loads = [0.0] * min(lanes, len(walls))
    for w in sorted(walls, reverse=True):
        # loads[0] is the least-loaded lane (min-heap invariant).
        heapq.heapreplace(loads, loads[0] + float(w))
    return max(loads)


class _ShardMetricsView:
    """The counters :func:`run_workload` reads, summed over shards.

    ``sim_wall_seconds`` is the exception: shards execute concurrently
    on one shared pool, so the deployment's simulated serving time is
    the scatter layer's accumulated *critical path*
    (:func:`lpt_makespan` per query), not the sum of every engine's
    wall — summing would bill a 4-shard scatter as if the shards ran
    back to back.
    """

    def __init__(self, owner: "ShardedEngine") -> None:
        self._owner = owner

    @property
    def sim_wall_seconds(self) -> float:
        return self._owner.sim_wall_total

    @property
    def spilled_rects(self) -> int:
        return sum(
            e.metrics.spilled_rects for e in self._owner.all_engines
        )


class _ShardArtifactsView:
    """Per-shard artifact caches presented as one summed snapshot."""

    def __init__(self, owner: "ShardedEngine") -> None:
        self._owner = owner

    def snapshot(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for engine in self._owner.all_engines:
            sum_counters(merged, engine.artifacts.snapshot())
        probes = merged.get("hits", 0) + merged.get("misses", 0)
        merged["hit_rate"] = (
            merged.get("hits", 0) / probes if probes else 0.0
        )
        return merged


class _ShardBudgetView:
    """Per-shard budget slices presented as one summed snapshot.

    Every gauge sums — including ``high_water_bytes``, so it stays
    comparable to the summed ``total_bytes`` (high water <= total
    holds for the deployment as it does per shard).  Because the
    scatter loop runs shards sequentially on one coordinator, the
    summed high water is an upper bound on the true momentary peak:
    conservative for memory sizing, and exact once shards execute
    concurrently.  Per-slice peaks are in ``high_water_by_category``
    and the per-shard engines' own snapshots.
    """

    def __init__(self, owner: "ShardedEngine") -> None:
        self._owner = owner

    def snapshot(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for engine in self._owner.all_engines:
            sum_counters(merged, engine.budget.snapshot())
        return merged


class ShardedEngine:
    """N engine shards, one shared worker pool, exact scatter/gather."""

    #: ``execute`` tolerates concurrent callers (coordinator state is
    #: lock-guarded, replica engines serialize their own sub-queries).
    #: The serving front-end reads this to decide whether it must
    #: serialize engine calls itself.
    execute_thread_safe = True

    def __init__(
        self,
        shards: int = 2,
        scale: ScaleConfig = DEFAULT_SCALE,
        machine: MachineSpec = MACHINE_3,
        workers: int = 1,
        cache_capacity: int = 64,
        histogram_grid: int = 32,
        memory_bytes: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        pool_kind: str = "process",
        min_ship_rects: int = DEFAULT_MIN_SHIP_RECTS,
        artifact_cache_bytes: Optional[int] = None,
        tile_batch_bytes: int = DEFAULT_TILE_BATCH_BYTES,
        trace: bool = False,
        slow_log_capacity: Optional[int] = None,
        slow_threshold_seconds: float = 0.0,
        kernel: str = "auto",
        shm_min_bytes: Optional[int] = None,
        replicas: int = 1,
        artifact_dir: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        retry_backoff_seconds: float = 0.01,
        replica_timeout_seconds: Optional[float] = None,
        result_store_bytes: Optional[int] = None,
        scatter_threads: Optional[int] = None,
    ) -> None:
        self.shards = max(1, shards)
        self.replicas = max(1, replicas)
        self.scale = scale
        self.machine = machine
        self.histogram_grid = histogram_grid
        self.faults = faults
        #: Base of the exponential backoff slept between failover
        #: attempts (0 disables sleeping; tests want speed).
        self.retry_backoff_seconds = max(0.0, retry_backoff_seconds)
        #: Post-hoc replica SLO: a sub-query slower than this gets a
        #: health penalty, steering future selections away.  The
        #: coordinator is synchronous, so an in-flight sub-query is
        #: never cancelled — the timeout shapes *future* routing.
        self.replica_timeout_seconds = replica_timeout_seconds
        #: One pool for every shard and replica; each engine below
        #: holds a ref-counted client.
        self.pool = WorkerPool(max(1, workers), kind=pool_kind,
                               faults=faults)
        per_shard = (
            max(1, memory_bytes // self.shards)
            if memory_bytes is not None else None
        )
        self.artifact_dir = artifact_dir
        if artifact_dir:
            check_store_layout(artifact_dir, sharded=True)

        def _leaf_dir(k: int, r: int) -> Optional[str]:
            # One keyed leaf per replica engine: two live ArtifactStores
            # must never share a manifest, and a replica's warm state
            # is its own (replicas model separate boxes).
            if not artifact_dir:
                return None
            return os.path.join(
                artifact_dir, f"shard-{k:02d}", f"replica-{r:02d}"
            )

        # Result caching happens once, at the scatter level (below):
        # verbatim repeats hit the top-level cache before any shard is
        # touched, so per-shard result caches would only store the
        # same answers a second time — shard engines run with theirs
        # disabled.  Artifact caches stay per-shard: they serve
        # *overlapping* (not just verbatim) queries.
        self._replica_engines: List[List[SpatialQueryEngine]] = [
            [
                SpatialQueryEngine(
                    scale=scale, machine=machine, workers=workers,
                    cache_capacity=0,
                    histogram_grid=histogram_grid,
                    memory_bytes=per_shard, cache_bytes=None,
                    min_ship_rects=min_ship_rects,
                    artifact_cache_bytes=artifact_cache_bytes,
                    artifact_dir=_leaf_dir(k, r),
                    tile_batch_bytes=tile_batch_bytes,
                    worker_pool=self.pool,
                    kernel=kernel,
                    shm_min_bytes=shm_min_bytes,
                    faults=faults,
                    # Shard engines trace (their span trees become
                    # shard subtrees of the scatter trace) but never
                    # keep their own slow logs — slowness is a
                    # scatter-level property.
                    trace=trace,
                    slow_log_capacity=0,
                )
                for r in range(self.replicas)
            ]
            for k in range(self.shards)
        ]
        #: Back-compat view: shard k's *primary* replica, the engine
        #: pre-replica callers indexed as ``engines[k]``.
        self.engines = [group[0] for group in self._replica_engines]
        #: Persisted result-cache entries, one store per *shard*
        #: (replicas of a shard share it — any of them can save or
        #: serve a sub-result, so durability survives replica death).
        self.result_stores: Optional[List[ResultStore]] = (
            [
                ResultStore(
                    os.path.join(artifact_dir, f"shard-{k:02d}",
                                 "results"),
                    faults=faults,
                    max_bytes=result_store_bytes,
                )
                for k in range(self.shards)
            ]
            if artifact_dir else None
        )
        #: Per-relation, per-shard slice fingerprints (result tokens
        #: are content-addressed by the shard's own subset).
        self._fingerprints: Dict[str, List[Optional[int]]] = {}
        # -- replica health ---------------------------------------------
        #: Health score per (shard, replica) in [0, 1]: 1.0 healthy,
        #: zeroed on failure, earned back in 0.5 steps by successful
        #: probes (below HEALTH_FLOOR a replica is only probed).
        self._health: List[List[float]] = [
            [1.0] * self.replicas for _ in range(self.shards)
        ]
        #: Observed sub-query latency EWMA per (shard, replica); None
        #: until the replica has served.  Drives *weighted* selection:
        #: a replica markedly slower than its fastest healthy sibling
        #: is deprioritized without being marked down.
        self._latency_ewma: List[List[Optional[float]]] = [
            [None] * self.replicas for _ in range(self.shards)
        ]
        self._rr = [0] * self.shards
        self._probe_tick = [0] * self.shards
        # -- concurrency ------------------------------------------------
        #: Guards every piece of coordinator state that concurrent
        #: scatters (and concurrent callers of ``execute``) share:
        #: replica health/rotation, serving counters, the top-level
        #: result cache and latency tracker, and the sim critical-path
        #: accumulator.  Never held across a shard engine's execution.
        self._lock = threading.Lock()
        #: One lock per replica engine: ``SpatialQueryEngine.execute``
        #: is not reentrant, so two concurrent logical queries landing
        #: on the same replica serialize there (distinct replicas and
        #: distinct shards overlap freely).
        self._engine_locks: List[List[threading.Lock]] = [
            [threading.Lock() for _ in range(self.replicas)]
            for _ in range(self.shards)
        ]
        #: Coordinator-side threads that overlap the per-shard scatter;
        #: lazily created on the first multi-shard query.
        self._scatter_threads = (
            scatter_threads if scatter_threads is not None
            else min(self.shards, MAX_SCATTER_THREADS)
        )
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        #: Accumulated scatter critical path (LPT makespan per query)
        #: — the deployment's simulated serving clock.
        self.sim_wall_total = 0.0
        self.kernel = self.engines[0].kernel
        self._cuts: Optional[List[float]] = None
        self._versions: Dict[str, int] = {}
        self._next_version = 1
        self._present: Dict[str, List[bool]] = {}
        self._universes: Dict[str, Rect] = {}
        #: Top-level result cache: a verbatim repeat skips the scatter.
        self.cache = ResultCache(capacity=cache_capacity,
                                 max_bytes=cache_bytes)
        # Aggregate facades so serving harnesses (run_workload, the
        # serve-bench CLI) read a sharded deployment exactly like a
        # single engine.
        self.metrics = _ShardMetricsView(self)
        self.artifacts = _ShardArtifactsView(self)
        self.budget = _ShardBudgetView(self)
        self.worker_pool = self.pool
        # -- serving-level counters -------------------------------------
        self.queries_served = 0
        self.cache_hits = 0
        self.queries_executed = 0
        self.pairs_returned = 0
        self.duplicates_eliminated = 0
        self.shards_pruned_total = 0
        # -- availability counters --------------------------------------
        #: Logical queries in which at least one shard was served by a
        #: non-first-choice replica (the query degraded but survived).
        self.failovers = 0
        #: Sub-query re-attempts launched after a replica failure.
        self.retries = 0
        #: Individual replica sub-query failures (each also zeroes the
        #: replica's health score).
        self.replica_failures = 0
        #: Sub-queries that exceeded ``replica_timeout_seconds``.
        self.replica_timeouts = 0
        #: Unhealthy replicas that earned their health back via probes.
        self.replica_recoveries = 0
        #: Selections in which latency weighting demoted a healthy-but-
        #: slow replica behind faster siblings.
        self.weighted_reroutes = 0
        #: Shard sub-results served from the persisted result stores
        #: (total, plus the per-shard breakdown the snapshot reports).
        self.result_disk_restores = 0
        self._shard_result_restores = [0] * self.shards
        #: Per-relation boundary-replica counts (extra copies beyond
        #: one per rectangle); re-registration replaces an entry and
        #: drop removes it, so the gauge tracks the *current* catalog.
        self._replica_counts: Dict[str, int] = {}
        # Observability: scatter-level per-query latency (one sample
        # per logical query, hits included — satisfying the same
        # measured-hit-latency contract the single engine keeps), plus
        # the scatter-level trace/slow-log pair.
        self.latency = LatencyTracker()
        self.tracing = bool(trace)
        if slow_log_capacity is None:
            slow_log_capacity = 8 if self.tracing else 0
        self.slow_log = (
            SlowQueryLog(slow_log_capacity, slow_threshold_seconds)
            if slow_log_capacity > 0 else None
        )
        self.last_trace: Optional[Span] = None

    @property
    def boundary_replicas(self) -> int:
        """Extra rectangle copies currently held due to replication."""
        return sum(self._replica_counts.values())

    @property
    def all_engines(self) -> List[SpatialQueryEngine]:
        """Every engine — all replicas of all shards (facade sums)."""
        return [e for group in self._replica_engines for e in group]

    @property
    def unhealthy_replicas(self) -> int:
        return sum(
            1 for row in self._health for h in row if h < HEALTH_FLOOR
        )

    def replica_health(self) -> List[List[float]]:
        """Health scores, ``[shard][replica]`` (copies; a gauge)."""
        return [list(row) for row in self._health]

    # -- sharding geometry ------------------------------------------------

    def strip_of(self, shard: int) -> Tuple[float, float]:
        """Shard ``shard``'s x-interval (outer strips are unbounded)."""
        if not 0 <= shard < self.shards:
            raise IndexError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        if self._cuts is None and self.shards > 1:
            raise RuntimeError(
                "shard strips are fixed by the first register(); "
                "no relation is registered yet"
            )
        cuts = self._cuts or []
        lo = cuts[shard - 1] if shard > 0 else float("-inf")
        hi = cuts[shard] if shard < len(cuts) else float("inf")
        return lo, hi

    def _strip_rect(self, shard: int) -> Rect:
        lo, hi = self.strip_of(shard)
        return Rect(lo, hi, float("-inf"), float("inf"), shard)

    # -- catalog management -----------------------------------------------

    def register(
        self,
        name: str,
        rects: Sequence[Rect],
        universe: Optional[Rect] = None,
        geometries: Optional[GeometryMap] = None,
    ) -> None:
        """(Re-)register a relation, replicated across strip boundaries.

        The first registration fixes the cut lines from this
        relation's histogram; later relations are sliced along the
        same cuts so every relation's shard k covers the same strip
        (joins must align).  Shards whose slice is empty simply do not
        hold the relation and are pruned from its queries.
        """
        rect_list = list(rects)
        if not rect_list:
            raise ValueError(f"relation {name!r} has no rectangles")
        uni = universe if universe is not None else mbr_of(rect_list)
        if self._cuts is None:
            self._cuts = balanced_cuts(
                rect_list, uni, self.shards, self.histogram_grid
            )
        was_present = self._present.get(name, [False] * self.shards)
        present = [False] * self.shards
        fingerprints: List[Optional[int]] = [None] * self.shards
        replicas = -len(rect_list)
        for k, group in enumerate(self._replica_engines):
            lo, hi = self.strip_of(k)
            subset = [r for r in rect_list if r.xhi >= lo and r.xlo <= hi]
            # Boundary-replica accounting counts strips, not engine
            # replicas: R copies of one strip are availability, not
            # extra boundary replication.
            replicas += len(subset)
            if subset and self.result_stores is not None:
                fingerprints[k] = rects_fingerprint(subset)
            if subset:
                sub_geoms = (
                    {r.rid: geometries[r.rid] for r in subset
                     if r.rid in geometries}
                    if geometries is not None else None
                )
                for engine in group:
                    engine.register(name, subset, universe=uni,
                                    geometries=sub_geoms)
                present[k] = True
            elif was_present[k]:
                for engine in group:
                    engine.drop(name)
        self._replica_counts[name] = replicas
        self._present[name] = present
        self._universes[name] = uni
        self._versions[name] = self._next_version
        self._next_version += 1
        if self.result_stores is not None:
            self._fingerprints[name] = fingerprints
        self.cache.invalidate_relation(name)

    def drop(self, name: str) -> None:
        self._check_known(name)
        for k, group in enumerate(self._replica_engines):
            if self._present[name][k]:
                for engine in group:
                    engine.drop(name)
        del self._present[name]
        del self._universes[name]
        del self._versions[name]
        del self._replica_counts[name]
        self._fingerprints.pop(name, None)
        self.cache.invalidate_relation(name)

    def universe_of(self, name: str) -> Rect:
        self._check_known(name)
        return self._universes[name]

    def names(self) -> List[str]:
        return sorted(self._versions)

    def prepare(self, *names: str) -> None:
        """Force-build every replica's streams/indexes/histograms now."""
        for name in (names or self.names()):
            self._check_known(name)
            for k, group in enumerate(self._replica_engines):
                if self._present[name][k]:
                    for engine in group:
                        engine.prepare(name)

    def wait_prewarm(self, timeout: Optional[float] = None) -> None:
        """Block until every replica's background prewarm finishes."""
        for engine in self.all_engines:
            if engine.artifact_store is not None:
                engine.artifact_store.wait_prewarm(timeout)

    def _check_known(self, name: str) -> None:
        if name not in self._versions:
            known = ", ".join(self.names()) or "<empty catalog>"
            raise KeyError(
                f"unknown relation {name!r}; registered: {known}"
            )

    # -- scatter planning -------------------------------------------------

    def plan_shards(self, query: Query) -> Tuple[List[int], List[int]]:
        """(participating, pruned) shard ids for one query.

        A shard participates only when it holds data for every
        referenced relation and, for windowed queries, when the window
        reaches its strip.  Pruning is sound because every result
        pair/tuple is also reported by the shard owning its reference
        point, which is never pruned (the reference point lies in the
        window's effective region and inside every referenced
        rectangle).
        """
        rels = set(query.relations)
        for name in rels:
            self._check_known(name)
        participating: List[int] = []
        pruned: List[int] = []
        for k in range(self.shards):
            if not all(self._present[n][k] for n in rels):
                pruned.append(k)
                continue
            if query.window is not None and effective_region(
                self._strip_rect(k), query.window
            ) is None:
                pruned.append(k)
                continue
            participating.append(k)
        return participating, pruned

    # -- replica selection / failover -------------------------------------

    def _replica_order(self, k: int) -> List[int]:
        """Candidate replicas for shard ``k``, best try first.

        Healthy replicas rotate round-robin (read scaling: repeats of
        one query spread over the replica set), then latency weighting
        reorders the rotation: a replica whose observed-latency EWMA
        exceeds the fastest healthy sibling's by
        :data:`SLOW_REPLICA_FACTOR` is moved behind the comparable
        ones (counted in ``weighted_reroutes``).  Replicas with no
        observations yet rank with the fast set, so fresh replicas get
        traffic.  Unhealthy replicas are appended as a last resort — a
        query is never failed while an untried replica remains — and
        every ``PROBE_EVERY``-th selection they are tried *first*,
        which is how a healed replica gets traffic to earn its score
        back.  Called under ``self._lock``.
        """
        n = self.replicas
        start = self._rr[k]
        self._rr[k] = (self._rr[k] + 1) % max(1, n)
        rotated = [(start + i) % n for i in range(n)]
        healthy = [r for r in rotated
                   if self._health[k][r] >= HEALTH_FLOOR]
        sick = [r for r in rotated
                if self._health[k][r] < HEALTH_FLOOR]
        if len(healthy) > 1:
            observed = [
                self._latency_ewma[k][r] for r in healthy
                if self._latency_ewma[k][r] is not None
            ]
            if observed:
                cutoff = min(observed) * SLOW_REPLICA_FACTOR
                fast = [r for r in healthy
                        if self._latency_ewma[k][r] is None
                        or self._latency_ewma[k][r] <= cutoff]
                slow = [r for r in healthy if r not in fast]
                if slow:
                    self.weighted_reroutes += 1
                    healthy = fast + slow
        if not sick:
            return healthy
        self._probe_tick[k] += 1
        if self._probe_tick[k] % PROBE_EVERY == 0:
            return sick + healthy
        return healthy + sick

    def _mark_failure(self, k: int, r: int) -> None:
        with self._lock:
            self._health[k][r] = 0.0
            self.replica_failures += 1

    def _mark_success(self, k: int, r: int, wall: float) -> None:
        with self._lock:
            ewma = self._latency_ewma[k][r]
            self._latency_ewma[k][r] = (
                wall if ewma is None
                else (1.0 - EWMA_ALPHA) * ewma + EWMA_ALPHA * wall
            )
            timeout = self.replica_timeout_seconds
            if timeout is not None and wall > timeout:
                # Served, but slower than the replica SLO: penalize the
                # score so routing drifts away before the replica fails
                # outright.  (An in-flight sub-query is never cancelled
                # by the coordinator; the timeout shapes future
                # routing.)
                self.replica_timeouts += 1
                self._health[k][r] = max(
                    0.0, self._health[k][r] - HEALTH_FLOOR
                )
                return
            before = self._health[k][r]
            self._health[k][r] = min(1.0, before + HEALTH_FLOOR)
            if before < HEALTH_FLOOR <= self._health[k][r]:
                self.replica_recoveries += 1

    def _execute_on_shard(self, k: int, sub: Query, analyze: bool,
                          cancel: Optional[Callable[[], None]] = None):
        """One shard's sub-query with replica failover.

        Returns ``(EngineResult, replica, attempts, failover_events)``.
        Semantic errors — admission rejections, unknown relations —
        are deterministic across replicas and re-raise immediately, as
        does deadline cancellation (a cancelled query must not burn
        every replica chasing a result nobody is waiting for);
        anything else marks the replica unhealthy, records the
        degradation and retries the next candidate after an
        exponential backoff.  Only when every replica has failed does
        the query see an error.  Failovers are returned as plain
        events (not spans): shards execute concurrently, and the
        coordinator turns events into ``failover`` spans in shard
        order so trace shape stays deterministic.
        """
        with self._lock:
            order = self._replica_order(k)
        events: List[Dict[str, object]] = []
        last_exc: Optional[BaseException] = None
        for attempt, r in enumerate(order):
            engine = self._replica_engines[k][r]
            if attempt > 0:
                with self._lock:
                    self.retries += 1
                if self.retry_backoff_seconds > 0.0:
                    time.sleep(min(
                        MAX_BACKOFF_SECONDS,
                        self.retry_backoff_seconds * (2 ** (attempt - 1)),
                    ))
            t0 = time.perf_counter()
            try:
                if self.faults is not None:
                    rule = self.faults.fire(
                        "shard.execute", shard=k, replica=r,
                    )
                    if rule is not None:
                        if rule.kind == "slow":
                            time.sleep(rule.delay_seconds)
                        else:
                            raise InjectedFault(
                                f"injected replica failure "
                                f"(shard {k} replica {r})"
                            )
                with self._engine_locks[k][r]:
                    out = engine.execute(sub, analyze=analyze,
                                         cancel=cancel)
            except (AdmissionError, KeyError, DeadlineExceeded):
                raise
            except Exception as exc:
                last_exc = exc
                self._mark_failure(k, r)
                events.append({
                    "shard": k, "replica": r,
                    "error": type(exc).__name__, "attempt": attempt,
                })
                continue
            self._mark_success(k, r, time.perf_counter() - t0)
            return out, r, attempt + 1, events
        assert last_exc is not None
        raise last_exc

    def _shard_result_token(self, k: int, sub: Query) -> Optional[str]:
        """Durable identity of shard ``k``'s sub-result for ``sub``.

        Content-addressed by the shard's *slice* fingerprints plus the
        canonical sub-query, so a restarted engine registering the
        same data derives the same token while any data change makes
        old entries unreachable — and every replica of the shard
        derives it identically (they hold the same slice).
        """
        if self.result_stores is None:
            return None
        fps = []
        for n in sub.relations:
            fp = self._fingerprints.get(n, [None] * self.shards)[k]
            if fp is None:
                return None
            fps.append((n, fp))
        return result_token(tuple(fps), sub.canonical())

    # -- serving ----------------------------------------------------------

    @property
    def scatter_lanes(self) -> int:
        """Parallel lanes the sim critical path is scheduled onto.

        The shards share one worker pool, so a scatter can overlap at
        most ``min(coordinator scatter threads, pool workers)``
        sub-queries' worth of simulated hardware.  One lane makes
        :func:`lpt_makespan` degenerate to the old sum — a one-worker
        deployment really does serve shards back to back.
        """
        return max(1, min(self._scatter_threads, self.pool.workers))

    def _scatter_executor(self) -> Optional[ThreadPoolExecutor]:
        if self._scatter_threads <= 1:
            return None
        with self._lock:
            if self._scatter_pool is None:
                self._scatter_pool = ThreadPoolExecutor(
                    max_workers=self._scatter_threads,
                    thread_name_prefix="scatter",
                )
            return self._scatter_pool

    def execute(self, query: Query, analyze: bool = False,
                cancel: Optional[Callable[[], None]] = None,
                ) -> EngineResult:
        """Serve one logical query (cache -> scatter -> gather).

        Thread-safe: many callers (a concurrent serving front-end's
        in-flight queries) may execute at once; coordinator state is
        lock-guarded and each replica engine serializes its own
        sub-queries.  ``cancel`` is a cooperative cancellation
        checkpoint — called on entry, before each shard dispatch and
        at gather, and forwarded into every replica engine, whose
        partitioned executor re-checks it per gathered pool task (a
        :class:`~repro.engine.pool.CancelToken` additionally rides
        inside worker payloads for tile-boundary checks); raising from
        it (e.g. :class:`~repro.engine.serve.DeadlineExceeded`)
        abandons the query without corrupting any shared state.
        """
        t_start = time.perf_counter()
        if cancel is not None:
            cancel()
        trace = (
            Span("query", query=query.describe(), engine="sharded")
            if self.tracing else None
        )
        for name in set(query.relations):
            self._check_known(name)
        key = (query.canonical(),
               tuple((n, self._versions[n]) for n in query.relations))
        with self._lock:
            cached = self.cache.get(key)
        if cached is not None:
            result = _copy_result(cached)
            result.detail["cache_hit"] = True
            wall = time.perf_counter() - t_start
            with self._lock:
                self.queries_served += 1
                self.cache_hits += 1
                self.pairs_returned += cached.n_pairs
                self.latency.record(wall)
            if trace is not None:
                lookup = trace.child("lookup", hit=True)
                lookup.wall_seconds = wall
                trace.wall_seconds = wall
                trace.attrs["pairs"] = cached.n_pairs
            self._observe_query(query, wall, 0.0, trace, True)
            return EngineResult(
                query=query, result=result, plan=None, from_cache=True,
                wall_seconds=wall, sim_wall_seconds=0.0,
                trace=trace,
            )

        participating, pruned = self.plan_shards(query)
        scatter = None
        if trace is not None:
            lookup = trace.child("lookup", hit=False)
            lookup.wall_seconds = time.perf_counter() - t_start
            scatter = trace.child(
                "scatter", shards=list(participating),
                pruned=list(pruned),
            )
        # The gather phase deduplicates by rid, so sub-queries always
        # collect pairs even when the caller only wants a count.
        sub = (query if query.collect_pairs
               else _replace(query, collect_pairs=True))

        def run_shard(k: int) -> Dict[str, object]:
            if cancel is not None:
                cancel()
            # A persisted sub-result serves the shard's share straight
            # from disk — no replica executes, which is how a restarted
            # deployment rewarms every shard without recomputing.
            token = self._shard_result_token(k, sub)
            if token is not None:
                restored = self.result_stores[k].load(token)
                if restored is not None:
                    with self._lock:
                        self.result_disk_restores += 1
                        self._shard_result_restores[k] += 1
                    return {"shard": k, "restored": restored}
            out, replica, attempts, events = self._execute_on_shard(
                k, sub, analyze, cancel
            )
            if (token is not None
                    and out.result.pairs is not None
                    and len(out.result.pairs) <= MAX_CACHED_PAIRS):
                self.result_stores[k].save(token, out.result)
            return {"shard": k, "out": out, "replica": replica,
                    "attempts": attempts, "events": events}

        t_scatter = time.perf_counter()
        executor = (
            self._scatter_executor() if len(participating) > 1 else None
        )
        if executor is None:
            outcomes = [run_shard(k) for k in participating]
        else:
            # Overlapped scatter: all participating shards dispatch at
            # once onto the shared pool; results are gathered in shard
            # order so merge and trace adoption stay deterministic.
            futures = [executor.submit(run_shard, k)
                       for k in participating]
            outcomes = []
            first_exc: Optional[BaseException] = None
            for f in futures:
                if first_exc is None:
                    try:
                        outcomes.append(f.result())
                    except BaseException as exc:
                        first_exc = exc
                        for g in futures:
                            g.cancel()
                else:
                    try:  # drain so no worker still runs on re-raise
                        f.result()
                    except BaseException:
                        pass
            if first_exc is not None:
                raise first_exc

        merged: set = set()
        raw_pairs = 0
        shard_walls: List[float] = []
        shard_pairs: Dict[int, int] = {}
        shard_strategies: Dict[int, str] = {}
        shard_replicas: Dict[int, int] = {}
        shard_plans: Dict[int, str] = {}
        restored_shards: List[int] = []
        degraded = False
        # The logical query's memory high-water is the worst shard's:
        # shards run concurrently but each replica enforces its own
        # budget, and serving-layer adaptive admission sizes grants
        # from this peak.
        mem_high = 0
        for oc in outcomes:
            k = oc["shard"]
            if "restored" in oc:
                restored = oc["restored"]
                restored_shards.append(k)
                mem_high = max(mem_high, restored.max_memory_bytes)
                raw_pairs += restored.n_pairs
                shard_pairs[k] = restored.n_pairs
                shard_strategies[k] = str(
                    restored.detail.get("strategy", "?")
                )
                merged.update(restored.pairs or ())
                if scatter is not None:
                    scatter.child(
                        "restore", shard=k, disk=True,
                        pairs=restored.n_pairs,
                    )
                continue
            out = oc["out"]
            if scatter is not None:
                for ev in oc["events"]:
                    scatter.child("failover", **ev)
            if oc["attempts"] > 1:
                degraded = True
            shard_walls.append(out.sim_wall_seconds)
            mem_high = max(mem_high, out.result.max_memory_bytes)
            raw_pairs += out.result.n_pairs
            shard_pairs[k] = out.result.n_pairs
            shard_replicas[k] = oc["replica"]
            shard_strategies[k] = str(
                out.result.detail.get("strategy", "?")
            )
            merged.update(out.result.pairs)
            if analyze and out.plan is not None:
                shard_plans[k] = out.plan.explain()
            if scatter is not None and out.trace is not None:
                # The shard engine's whole query trace becomes one
                # "shard" subtree of the scatter span.
                sp = out.trace
                sp.name = "shard"
                sp.attrs["shard"] = k
                sp.attrs["replica"] = oc["replica"]
                scatter.adopt(sp)
        if cancel is not None:
            cancel()
        # The scatter critical path: shards ran concurrently on the
        # shared pool, so the query's simulated cost is the LPT
        # makespan of the shard walls over the pool's lanes, not their
        # sum.  Restored shards cost no simulated execution (as
        # before).
        sim_wall = lpt_makespan(shard_walls, self.scatter_lanes)
        if degraded:
            with self._lock:
                self.failovers += 1
        if scatter is not None:
            scatter.wall_seconds = time.perf_counter() - t_scatter
            for f in SPAN_METRIC_FIELDS:
                if f == "wall_seconds":
                    continue
                setattr(scatter, f,
                        sum(getattr(c, f) for c in scatter.children))
        t_gather = time.perf_counter()
        # Sorting makes collected gathers deterministic; count-only
        # queries need just the deduplicated cardinality.
        pairs = sorted(merged) if query.collect_pairs else None
        result = JoinResult(
            algorithm="scatter-gather",
            n_pairs=len(merged),
            pairs=pairs,
            max_memory_bytes=mem_high,
            detail={
                "strategy": "scatter-gather",
                "shards": self.shards,
                "shards_queried": list(participating),
                "shards_pruned": list(pruned),
                "cross_shard_duplicates": raw_pairs - len(merged),
                "shard_pairs": shard_pairs,
                "shard_strategies": shard_strategies,
                "shard_replicas": shard_replicas,
            },
        )
        if restored_shards:
            result.detail["shard_disk_restores"] = restored_shards
        if degraded:
            # Served, but only after replica failover — the serving
            # front-end surfaces this as a degraded (not failed) reply.
            result.detail["degraded"] = True
        if analyze:
            result.detail["shard_plans"] = shard_plans
        if trace is not None:
            gather = trace.child(
                "gather", raw_pairs=raw_pairs, pairs=len(merged),
                duplicates=raw_pairs - len(merged),
            )
            gather.wall_seconds = time.perf_counter() - t_gather
        wall = time.perf_counter() - t_start
        with self._lock:
            self.queries_served += 1
            self.queries_executed += 1
            self.pairs_returned += result.n_pairs
            self.duplicates_eliminated += raw_pairs - result.n_pairs
            self.shards_pruned_total += len(pruned)
            self.sim_wall_total += sim_wall
            self.latency.record(wall)
        if trace is not None:
            trace.wall_seconds = wall
            for f in SPAN_METRIC_FIELDS:
                if f == "wall_seconds":
                    continue
                setattr(trace, f, getattr(scatter, f))
            trace.attrs.update({
                "strategy": "scatter-gather",
                "pairs": result.n_pairs,
                "sim_wall_seconds": sim_wall,
            })
        self._observe_query(query, wall, sim_wall, trace, False)
        # Same rule as the single engine: count-only results (no pair
        # list) always cache; collected results cache up to the bound.
        if result.pairs is None or len(result.pairs) <= MAX_CACHED_PAIRS:
            with self._lock:
                self.cache.put(key, _copy_result(result))
        return EngineResult(
            query=query, result=result, plan=None, from_cache=False,
            wall_seconds=wall, sim_wall_seconds=sim_wall, trace=trace,
        )

    def _observe_query(self, query: Query, wall: float, sim_wall: float,
                       trace: Optional[Span], from_cache: bool) -> None:
        if trace is not None:
            self.last_trace = trace
        if self.slow_log is not None:
            self.slow_log.offer(
                query.describe(), wall, sim_wall,
                trace=trace, from_cache=from_cache,
            )

    def explain(self, query: Query) -> str:
        """The scatter plan plus every participating shard's plan."""
        participating, pruned = self.plan_shards(query)
        lines = [
            f"Sharded : {self.shards} shards, scatter to "
            f"{participating or 'none'}"
            + (f", pruned {pruned}" if pruned else ""),
        ]
        for k in participating:
            lo, hi = self.strip_of(k)
            lines.append(f"-- shard {k} (x in [{lo:g}, {hi:g}]) --")
            lines.append(self.engines[k].explain(query))
        return "\n".join(lines)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release every replica's pool ref; the last one stops the pool."""
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=True)
            self._scatter_pool = None
        for engine in self.all_engines:
            engine.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability ----------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """Shard counters aggregated, serving counters at this level.

        Physical counters (pages, bytes, CPU ops, simulated seconds,
        spills) sum across shards; serving counters are overridden
        with the scatter layer's own — one logical query is one serve,
        even when it executed on four shards.  ``per_shard`` keeps the
        attribution story: each shard's serve/pair/dispatch counts,
        whose dispatch totals sum to the shared pool's by
        construction.
        """
        snap = merge_snapshots(
            [e.metrics.snapshot() for e in self.all_engines]
        )
        return self._finish_snapshot(snap)

    def _result_store_snapshot(self) -> Optional[Dict[str, object]]:
        """Per-shard result stores merged into one counter dict."""
        if self.result_stores is None:
            return None
        merged: Dict[str, object] = {}
        for store in self.result_stores:
            sum_counters(merged, store.snapshot())
        return merged

    def _finish_snapshot(self, snap: Dict[str, object]) -> Dict[str, object]:
        snap["kernel"] = self.kernel
        # Per-replica disk sidecars merge into one store snapshot (None
        # when the deployment has no artifact dir, like the single
        # engine's key).
        store_snap: Optional[Dict[str, object]] = None
        if self.artifact_dir:
            store_snap = {}
            for e in self.all_engines:
                if e.artifact_store is not None:
                    sum_counters(store_snap, e.artifact_store.snapshot())
        snap.update(flatten_cache_keys(
            self.artifacts.snapshot(), self.budget.snapshot(),
            store_snap,
        ))
        # Physical shard execution time still sums (real work billed to
        # the simulated hardware), but the deployment's serving clock is
        # the accumulated scatter critical path over the pool's lanes.
        snap["sim_wall_shard_sum_seconds"] = snap.get(
            "sim_wall_seconds", 0.0
        )
        snap.update({
            "sim_wall_seconds": self.sim_wall_total,
            "scatter_lanes": self.scatter_lanes,
            "weighted_reroutes": self.weighted_reroutes,
            "replica_latency_ewma": [
                list(r) for r in self._latency_ewma
            ],
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.queries_served
                if self.queries_served else 0.0
            ),
            "queries_executed": self.queries_executed,
            "pairs_returned": self.pairs_returned,
            "duplicates_eliminated": self.duplicates_eliminated,
            # Latency is a per-logical-query distribution: the shard
            # engines' merged samples would count one scatter as N
            # queries, so the scatter layer's own tracker overrides.
            **self.latency.snapshot(),
            "slow_query_log": (
                self.slow_log.snapshot()
                if self.slow_log is not None else None
            ),
            "shards": self.shards,
            "shard_cuts": list(self._cuts or []),
            "shards_pruned_total": self.shards_pruned_total,
            "boundary_replicas": self.boundary_replicas,
            # Availability: the scatter layer owns these (shard-engine
            # snapshots carry them as zeros for key compatibility).
            "replicas": self.replicas,
            "failovers": self.failovers,
            "retries": self.retries,
            "replica_failures": self.replica_failures,
            "replica_timeouts": self.replica_timeouts,
            "replica_recoveries": self.replica_recoveries,
            "unhealthy_replicas": self.unhealthy_replicas,
            "replica_health": self.replica_health(),
            "failover_rate": (
                self.failovers / self.queries_executed
                if self.queries_executed else 0.0
            ),
            "result_disk_restores": self.result_disk_restores,
            "result_store": self._result_store_snapshot(),
            "worker_pool": self.pool.snapshot(),
            "per_shard": [
                {
                    "queries_served": sum(
                        e.metrics.queries_served for e in group
                    ),
                    "pairs_returned": sum(
                        e.metrics.pairs_returned for e in group
                    ),
                    "tasks_dispatched": sum(
                        e.worker_pool.tasks_dispatched for e in group
                    ),
                    "tasks_inline": sum(
                        e.worker_pool.tasks_inline for e in group
                    ),
                    "tiles_dispatched": sum(
                        e.worker_pool.tiles_dispatched for e in group
                    ),
                    "tiles_inline": sum(
                        e.worker_pool.tiles_inline for e in group
                    ),
                    # Everything this shard pulled back from disk:
                    # artifact restores on any replica plus persisted
                    # sub-results served for the whole shard.
                    "disk_restores": sum(
                        e.artifacts.snapshot()["disk_restores"]
                        for e in group
                    ) + self._shard_result_restores[i],
                    "result_restores": self._shard_result_restores[i],
                    "replica_health": list(self._health[i]),
                    "relations": [
                        n for n in self.names() if self._present[n][i]
                    ],
                }
                for i, group in enumerate(self._replica_engines)
            ],
            # Result-cache gauges are the scatter-level cache's own:
            # it is the only result cache in a sharded deployment
            # (shard engines run with theirs disabled).
            **flatten_result_cache_keys(self.cache),
            "buffer_pool_requests": sum(
                e.pool.requests for e in self.all_engines
            ),
            "buffer_pool_hit_rate": (
                sum(e.pool.hit_rate * e.pool.requests
                    for e in self.all_engines)
                / max(1, sum(e.pool.requests for e in self.all_engines))
            ),
            "buffer_pool_evictions": sum(
                e.pool.evictions for e in self.all_engines
            ),
            "buffer_pool_resident_pages": sum(
                e.pool.resident_pages for e in self.all_engines
            ),
            "indexes_built": sum(
                e.catalog.indexes_built for e in self.all_engines
            ),
            "relations": self.names(),
        })
        return snap
