"""Disk persistence for execution artifacts (the spill-directory sidecar).

The in-memory :class:`~repro.engine.cache.ArtifactCache` dies with the
engine process, even though the catalog already persists its R-trees
(:mod:`repro.rtree.persist`).  :class:`ArtifactStore` closes that gap:
partition distributions and sorted runs serialize through the existing
columnar codec into real files under a caller-chosen directory, with a
JSON manifest recording what each file holds (kind, relation names,
logical bytes, checksum).  A restarted engine pointed at the same
directory repopulates its cache *lazily*: the first query that misses
in memory probes the manifest, restores the payload, verifies its
checksum, and re-inserts it under the budget — counted as a
``disk_restore``, and priced on the simulated disk as one sequential
read of the artifact's logical bytes (the load replaces the scan or
sort pass the query would otherwise have paid; see the executor).
Saves, like R-tree persistence, are uncharged — persistence is not
part of any measured experiment.

Artifacts are **content-addressed**: tokens are derived from relation
*fingerprints* (a CRC over the registered rectangles, see
:attr:`~repro.engine.catalog.CatalogEntry.fingerprint`) rather than
catalog versions, which are process-local counters.  Re-registering the
same data after a restart therefore reuses the persisted artifacts,
while changed data produces a different token and simply never matches
— stale files are unreachable by construction and are only reclaimed by
:meth:`ArtifactStore.clear` (or deleting the directory).

File layout (one artifact per file, ``<token>.art``)::

    header:  one UTF-8 JSON line — {"kind", "byteorder",
             "entries": [{"part": id|null, "a": n_rects,
                          "b": n_rects|null}, ...]}
    body:    per entry, tile A's five columns then (when present)
             tile B's, each as the raw bytes of the corresponding
             array ('d' x4, then 'q')

The body's CRC32 lives in the manifest, not the file, so a truncated
or bit-flipped artifact is detected before any of it is decoded.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
import zlib
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarTile
from repro.core.join_result import JoinResult
from repro.engine.cache import PARTITION_KIND, SORTED_RUN_KIND
from repro.engine.faults import FaultPlan, corrupt_file
from repro.geom.rect import RECT_BYTES

_MANIFEST = "manifest.json"
_COLUMNS = ("xlo", "xhi", "ylo", "yhi", "rid")

#: Per-shard artifact subdirectories of a sharded ``--artifact-dir``
#: are named ``shard-XX/replica-YY`` — the marker the layout guards
#: below use to tell a sharded root from a single-engine one.
SHARD_DIR_PREFIX = "shard-"

#: Default number of hottest artifacts a background prewarm stages.
DEFAULT_PREWARM_LIMIT = 8

#: Manifest heat bumps tolerated before the manifest is rewritten (so
#: read-heavy serving does not rewrite the manifest on every restore).
_HEAT_FLUSH_EVERY = 8


def _sharded_subdirs(root: str) -> List[str]:
    try:
        return sorted(
            d for d in os.listdir(root)
            if d.startswith(SHARD_DIR_PREFIX)
            and os.path.isdir(os.path.join(root, d))
        )
    except OSError:
        return []


def check_store_layout(root: str, sharded: bool) -> None:
    """Refuse a genuinely conflicting on-disk artifact layout.

    A sharded deployment keys each replica's store under
    ``root/shard-XX/replica-YY``; a single engine writes its manifest
    at ``root`` directly.  Pointing one at the other's directory would
    silently run cold forever (tokens never match across layouts) —
    worse, a single engine would start interleaving its files with the
    sharded tree.  Both mistakes are caught here with a clear error;
    an empty or same-layout directory passes.
    """
    manifest_here = os.path.isfile(os.path.join(root, _MANIFEST))
    shard_dirs = _sharded_subdirs(root)
    if sharded and manifest_here:
        raise ValueError(
            f"artifact dir {root!r} holds a single-engine store "
            f"(top-level {_MANIFEST}); pick a fresh directory for a "
            "sharded engine or point a single engine at it"
        )
    if not sharded and shard_dirs and not manifest_here:
        raise ValueError(
            f"artifact dir {root!r} holds a sharded store "
            f"({shard_dirs[0]}/...); pick a fresh directory for a "
            "single engine or point a sharded engine at it"
        )


def canonical_token(kind: str, fingerprints: Sequence[Tuple[str, int]],
                    *extra) -> str:
    """A stable, filename-safe identity for one persistable artifact.

    ``fingerprints`` is the content identity of the artifact's input
    relations — ``(name, fingerprint)`` pairs.  ``extra`` pins the
    derivation parameters (grid geometry and window for partition
    artifacts, the sort axis for sorted runs); floats are rendered via
    ``repr`` so the token is exact, and the whole string is hashed to
    keep filenames uniform.
    """
    parts: List[str] = [kind]
    for name, fp in fingerprints:
        parts.append(f"{name}={fp}")
    parts.extend(_canon(x) for x in extra)
    raw = "|".join(parts)
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


def _canon(obj) -> str:
    if obj is None:
        return "~"
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return "(" + ",".join(_canon(x) for x in obj) + ")"
    return str(obj)


def partition_token(fingerprints: Sequence[Tuple[str, int]], universe,
                    tiles: int, partitions: int, window) -> str:
    """Sidecar token of one distribution.

    One definition shared by the executor (save/restore) and the
    optimizer (pricing probes) — the two must derive byte-identical
    tokens or warm plans get priced that the executor then runs cold.
    ``universe``/``window`` are rectangles (window may be None);
    ``tiles`` is the *effective* grid resolution
    (:func:`~repro.engine.cache.grid_tiles`).
    """
    return canonical_token(
        PARTITION_KIND, fingerprints,
        (universe.xlo, universe.xhi, universe.ylo, universe.yhi),
        tiles, partitions,
        None if window is None else tuple(window[:4]),
    )


def sorted_run_token(name: str, fingerprint: int,
                     axis: str = "ylo") -> str:
    """Sidecar token of one relation's sorted run (shared, see above)."""
    return canonical_token(SORTED_RUN_KIND, ((name, fingerprint),), axis)


class ArtifactStore:
    """A directory of persisted artifacts plus its manifest.

    The store is deliberately dumb: it maps tokens to checksummed
    payload files and knows nothing about budgets, versions or plan
    keys — the executor owns key/token translation and restore
    pricing, the cache owns memory.  All counters are cumulative for
    the store object's lifetime.
    """

    def __init__(self, root: str,
                 faults: Optional[FaultPlan] = None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: Optional chaos schedule (sites ``artifact.save`` /
        #: ``artifact.load``); None in production.
        self.faults = faults
        self._manifest: Dict[str, dict] = {}
        # The store is read/written by the engine's coordinator thread
        # *and* the background prewarm thread; one reentrant lock
        # guards the manifest, the staging dict and the counters.
        self._lock = threading.RLock()
        #: Prewarmed payloads awaiting their first ``load``:
        #: token -> (kind, value, logical_bytes).
        self._staged: Dict[str, tuple] = {}
        self._prewarm_thread: Optional[threading.Thread] = None
        self._heat_dirty = 0
        self.saves = 0
        self.save_bytes = 0
        self.save_wall_seconds = 0.0
        self.restores = 0
        self.restore_bytes = 0
        self.restore_wall_seconds = 0.0
        self.corrupt_drops = 0
        self.prewarmed = 0
        self.prewarm_bytes = 0
        self._load_manifest()

    # -- queries ---------------------------------------------------------

    def has(self, token: str) -> bool:
        return token in self._manifest

    def peek(self, token: str) -> Optional[dict]:
        """The manifest entry (no payload I/O); the optimizer prices
        restorable plans from ``logical_bytes`` here."""
        return self._manifest.get(token)

    def __len__(self) -> int:
        return len(self._manifest)

    # -- writes ----------------------------------------------------------

    def save(self, token: str, kind: str, value,
             relations: Sequence[str]) -> bool:
        """Persist one artifact; idempotent per token.

        ``value`` is the cache's representation: a task list for
        ``"partition"`` artifacts, a single tile for ``"sorted-run"``.
        Returns False when the payload contains non-columnar tiles
        (nothing to serialize) — the caller encodes first.
        """
        with self._lock:
            meta = self._manifest.get(token)
            if meta is not None:
                # An idempotent re-save is a popularity signal: the
                # artifact was rebuilt/re-cached again this process
                # life, so bump its heat for the next prewarm.
                self._bump_heat_locked(meta)
                return True
        t0 = time.perf_counter()
        entries, blobs, n_rects = _encode(kind, value)
        if entries is None:
            return False
        header = json.dumps({
            "kind": kind,
            "byteorder": sys.byteorder,
            "entries": entries,
        }, sort_keys=True).encode("utf-8") + b"\n"
        body = b"".join(blobs)
        path = os.path.join(self.root, f"{token}.art")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(body)
        os.replace(tmp, path)
        if self.faults is not None and self.faults.fire(
            "artifact.save", token=token, kind=kind,
        ) is not None:
            corrupt_file(path)
        with self._lock:
            self._manifest[token] = {
                "kind": kind,
                "file": os.path.basename(path),
                "relations": list(relations),
                "logical_bytes": n_rects * RECT_BYTES,
                "file_bytes": len(header) + len(body),
                "crc32": zlib.crc32(body),
                "heat": 0,
            }
            self._write_manifest()
            self.saves += 1
            self.save_bytes += len(body)
            self.save_wall_seconds += time.perf_counter() - t0
        return True

    def clear(self) -> None:
        """Drop every artifact and its file (manual housekeeping)."""
        with self._lock:
            for token in list(self._manifest):
                self._drop(token)
            self._staged.clear()
            self._write_manifest()

    # -- reads -----------------------------------------------------------

    def load(self, token: str):
        """Restore one artifact: ``(kind, value, logical_bytes)`` or None.

        A missing file, checksum mismatch, foreign byte order or
        malformed header drops the manifest entry (counted under
        ``corrupt_drops``) and reports a miss — a damaged sidecar must
        degrade to a cold run, never a wrong answer.  Payloads staged
        by a background :meth:`prewarm` are served from memory (still
        counted as restores — the caller's disk-restore accounting and
        simulated-disk pricing are placement-independent).
        """
        with self._lock:
            staged = self._staged.pop(token, None)
            if staged is not None:
                meta = self._manifest.get(token)
                if meta is not None:
                    self._bump_heat_locked(meta)
                self.restores += 1
                self.restore_bytes += staged[2]
                return staged
        out = self._read_payload(token)
        if out is None:
            return None
        t0, kind, value, logical_bytes = out
        with self._lock:
            meta = self._manifest.get(token)
            if meta is not None:
                self._bump_heat_locked(meta)
            self.restores += 1
            self.restore_bytes += logical_bytes
            self.restore_wall_seconds += time.perf_counter() - t0
        return (kind, value, logical_bytes)

    def _read_payload(self, token: str):
        """Verified read of one artifact file (no restore accounting).

        Returns ``(t_start, kind, value, logical_bytes)`` or None;
        shared by :meth:`load` and the prewarm thread.  Corruption —
        injected or real — drops the entry here.
        """
        with self._lock:
            meta = self._manifest.get(token)
            if meta is None:
                return None
            path = os.path.join(self.root, meta["file"])
            crc = meta["crc32"]
            kind = meta["kind"]
            logical_bytes = meta["logical_bytes"]
        t0 = time.perf_counter()
        if self.faults is not None and self.faults.fire(
            "artifact.load", token=token, kind=kind,
        ) is not None:
            corrupt_file(path)
        try:
            with open(path, "rb") as fh:
                header = json.loads(fh.readline().decode("utf-8"))
                body = fh.read()
            if (zlib.crc32(body) != crc
                    or header.get("byteorder") != sys.byteorder
                    or header.get("kind") != kind):
                raise ValueError("artifact payload failed verification")
            value = _decode(header["kind"], header["entries"], body)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            with self._lock:
                # The prewarm thread and a query can detect the same
                # damage concurrently; only the one that actually
                # removes the entry counts the drop.
                if self._drop(token):
                    self._write_manifest()
                    self.corrupt_drops += 1
            return None
        return (t0, kind, value, logical_bytes)

    # -- prewarm ---------------------------------------------------------

    def prewarm(self, limit: int = DEFAULT_PREWARM_LIMIT) -> int:
        """Stage the manifest's hottest artifacts into memory now.

        Ordered by persisted ``heat`` (restores + re-saves across this
        store's whole history), ties broken by token for determinism.
        Staged payloads are handed out by the next :meth:`load` of the
        same token — with identical counters and caller-side pricing,
        just without the file read on the serving path.  Returns the
        number of artifacts staged.
        """
        with self._lock:
            hottest = sorted(
                self._manifest.items(),
                key=lambda kv: (-int(kv[1].get("heat", 0)), kv[0]),
            )[:max(0, limit)]
            tokens = [t for t, _ in hottest if t not in self._staged]
        staged = 0
        for token in tokens:
            out = self._read_payload(token)
            if out is None:
                continue
            _t0, kind, value, logical_bytes = out
            with self._lock:
                if token in self._staged:
                    continue
                self._staged[token] = (kind, value, logical_bytes)
                self.prewarmed += 1
                self.prewarm_bytes += logical_bytes
            staged += 1
        return staged

    def start_prewarm(
        self, limit: int = DEFAULT_PREWARM_LIMIT
    ) -> Optional[threading.Thread]:
        """Run :meth:`prewarm` on a daemon thread (startup path).

        Idempotent while a prewarm is already running.  Returns the
        thread (joinable via :meth:`wait_prewarm`), or None when the
        manifest is empty — nothing to warm, no thread to pay for.
        """
        with self._lock:
            if not self._manifest:
                return None
            if (self._prewarm_thread is not None
                    and self._prewarm_thread.is_alive()):
                return self._prewarm_thread
            thread = threading.Thread(
                target=self.prewarm, args=(limit,),
                name="artifact-prewarm", daemon=True,
            )
            self._prewarm_thread = thread
        thread.start()
        return thread

    def wait_prewarm(self, timeout: Optional[float] = None) -> None:
        """Block until a background prewarm finishes (tests, drains)."""
        thread = self._prewarm_thread
        if thread is not None:
            thread.join(timeout)

    # -- internals -------------------------------------------------------

    def _bump_heat_locked(self, meta: dict) -> None:
        meta["heat"] = int(meta.get("heat", 0)) + 1
        self._heat_dirty += 1
        if self._heat_dirty >= _HEAT_FLUSH_EVERY:
            self._write_manifest()

    def _drop(self, token: str) -> bool:
        meta = self._manifest.pop(token, None)
        if meta is None:
            return False
        try:
            os.remove(os.path.join(self.root, meta["file"]))
        except OSError:
            pass
        return True

    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            self._manifest = dict(data.get("artifacts", {}))
        except (OSError, ValueError):
            self._manifest = {}

    def _write_manifest(self) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "artifacts": self._manifest}, fh,
                      sort_keys=True, indent=1)
        os.replace(tmp, self._manifest_path())
        self._heat_dirty = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._manifest),
                "saves": self.saves,
                "save_bytes": self.save_bytes,
                "save_wall_seconds": self.save_wall_seconds,
                "restores": self.restores,
                "restore_bytes": self.restore_bytes,
                "restore_wall_seconds": self.restore_wall_seconds,
                "corrupt_drops": self.corrupt_drops,
                "prewarmed": self.prewarmed,
                "prewarm_bytes": self.prewarm_bytes,
                "staged": len(self._staged),
            }


def charge_restore(disk, logical_bytes: int) -> None:
    """Price one artifact restore on the simulated disk.

    A restore replaces the scan or sort pass the query would otherwise
    have paid, so it must not be free: it is charged as one sequential
    read of the artifact's *logical* bytes (records x ``RECT_BYTES`` —
    the simulated disk stores 20-byte records; the sidecar file's own
    byte count is a codec detail).  The read lands on a fresh extent so
    the machine observers see it as sequential, like any other stream
    pass.
    """
    if logical_bytes <= 0:
        return
    offset = disk.allocate(logical_bytes)
    disk.env.io_read(offset, logical_bytes)


def result_token(fingerprints: Sequence[Tuple[str, int]],
                 canonical_query) -> str:
    """Sidecar token of one persisted query result.

    Content-addressed like every other artifact: relation content
    fingerprints plus the query's canonical form, so a restarted
    engine serving the same query over the same data finds the entry,
    while any data change makes the old entry unreachable — no
    invalidation protocol needed.
    """
    return canonical_token("result", fingerprints, canonical_query)


class ResultStore:
    """Persisted result-cache entries (one JSON file per result).

    The scatter layer's top-level :class:`~repro.engine.cache.ResultCache`
    is the hottest state a sharded deployment has — a dashboard's
    repeat queries never touch a shard — and it used to die with the
    process.  This store writes each cached result as a checksummed
    JSON file under its own subdirectory of the artifact root, keyed
    by :func:`result_token`; a restarted engine probes it on a memory
    miss and serves the persisted pairs without scattering at all.

    JSON keeps the payload inspectable; rid pairs survive the
    round-trip exactly (ints), while ``detail``'s integer dict keys
    become strings — provenance, not answers, so gather-identical
    results are preserved where it matters.  A corrupt or truncated
    file is dropped and the query re-executes (``corrupt_drops``).

    ``max_bytes`` bounds the store on disk: each save past the cap
    evicts the least-recently-used entries (restores count as use, and
    bump the file mtime so recency survives a restart — the init scan
    rebuilds the LRU order from mtimes).  An entry larger than the
    whole cap is refused outright (``rejections``).  Eviction only ever
    costs a re-execute on some future restart; it can never lose an
    answer.
    """

    def __init__(self, root: str,
                 faults: Optional[FaultPlan] = None,
                 max_bytes: Optional[int] = None) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.faults = faults
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.saves = 0
        self.save_bytes = 0
        self.restores = 0
        self.corrupt_drops = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.rejections = 0
        #: token -> file bytes, least-recently-used first.  Rebuilt
        #: from the directory at init (mtime order), maintained live
        #: afterwards.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._total_bytes = 0
        self._scan()

    def _scan(self) -> None:
        entries = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if not name.endswith(".res.json"):
                continue
            path = os.path.join(self.root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, name[:-len(".res.json")],
                            st.st_size))
        for _, token, size in sorted(entries):
            self._index[token] = size
            self._total_bytes += size

    def _path(self, token: str) -> str:
        return os.path.join(self.root, f"{token}.res.json")

    @property
    def bytes(self) -> int:
        return self._total_bytes

    def _touch_locked(self, token: str) -> None:
        if token in self._index:
            self._index.move_to_end(token)
            try:
                os.utime(self._path(token))
            except OSError:
                pass

    def _evict_locked(self, keep: Optional[str] = None) -> None:
        if self.max_bytes is None:
            return
        while self._total_bytes > self.max_bytes and self._index:
            victim = next(iter(self._index))
            if victim == keep:
                if len(self._index) == 1:
                    break
                self._index.move_to_end(victim)
                continue
            size = self._index.pop(victim)
            self._total_bytes -= size
            try:
                os.remove(self._path(victim))
            except OSError:
                pass
            self.evictions += 1
            self.evicted_bytes += size

    def __len__(self) -> int:
        try:
            return sum(
                1 for f in os.listdir(self.root)
                if f.endswith(".res.json")
            )
        except OSError:
            return 0

    def save(self, token: str, result: JoinResult) -> bool:
        """Persist one result; idempotent per token.

        Safe under concurrent saves of the same token (two identical
        queries scattered to one shard): each writer uses its own tmp
        file, ``os.replace`` makes the publish atomic, and the index
        update is delta-based, so duplicate writers can never corrupt
        the file or double-count ``_total_bytes``.
        """
        path = self._path(token)
        if os.path.exists(path):
            with self._lock:
                self._touch_locked(token)
            return True
        # Per-writer tmp name: two threads saving the same token must
        # not interleave writes into one tmp file.
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            payload = json.dumps({
                "algorithm": result.algorithm,
                "n_pairs": result.n_pairs,
                "pairs": (
                    [list(p) for p in result.pairs]
                    if result.pairs is not None else None
                ),
                "detail": result.detail,
            }, sort_keys=True)
            body = json.dumps({
                "version": 1,
                "crc32": zlib.crc32(payload.encode("utf-8")),
                "result": payload,
            })
        except (TypeError, ValueError):
            # Unserializable detail must never fail the query — the
            # result simply is not persisted.
            return False
        if self.max_bytes is not None and len(body) > self.max_bytes:
            # Larger than the whole store: saving it would evict
            # everything and then be evicted itself on the next save.
            with self._lock:
                self.rejections += 1
            return False
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, path)
        except OSError:
            # A full disk must never fail the query either.
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        if self.faults is not None and self.faults.fire(
            "result.save", token=token,
        ) is not None:
            corrupt_file(path)
        with self._lock:
            self.saves += 1
            self.save_bytes += len(body)
            # Delta-based: a concurrent duplicate save replaces the
            # index entry instead of inflating the byte total (which
            # would trigger premature LRU evictions forever after).
            prior = self._index.pop(token, 0)
            self._index[token] = len(body)
            self._total_bytes += len(body) - prior
            self._evict_locked(keep=token)
        return True

    def load(self, token: str) -> Optional[JoinResult]:
        """Restore one result, or None (missing/corrupt -> re-execute)."""
        path = self._path(token)
        if not os.path.exists(path):
            return None
        if self.faults is not None and self.faults.fire(
            "result.load", token=token,
        ) is not None:
            corrupt_file(path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                wrapper = json.load(fh)
            payload = wrapper["result"]
            if zlib.crc32(payload.encode("utf-8")) != wrapper["crc32"]:
                raise ValueError("result payload failed verification")
            data = json.loads(payload)
            pairs = (
                [tuple(p) for p in data["pairs"]]
                if data["pairs"] is not None else None
            )
            result = JoinResult(
                algorithm=data["algorithm"],
                n_pairs=int(data["n_pairs"]),
                pairs=pairs,
                detail=dict(data["detail"]),
            )
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            try:
                os.remove(path)
            except OSError:
                pass
            with self._lock:
                self.corrupt_drops += 1
                size = self._index.pop(token, 0)
                self._total_bytes -= size
            return None
        with self._lock:
            self.restores += 1
            self._touch_locked(token)
        return result

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self),
                "bytes": self._total_bytes,
                "max_bytes": self.max_bytes,
                "saves": self.saves,
                "save_bytes": self.save_bytes,
                "restores": self.restores,
                "corrupt_drops": self.corrupt_drops,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "rejections": self.rejections,
            }


# -- codec -------------------------------------------------------------------


def _encode(kind: str, value):
    """Flatten a cache value into (header entries, column blobs, rects)."""
    entries: List[dict] = []
    blobs: List[bytes] = []
    n_rects = 0
    if kind == SORTED_RUN_KIND:
        tiles = [(None, value, None)]
    elif kind == PARTITION_KIND:
        tiles = value
    else:
        return None, None, 0
    for part_id, tile_a, tile_b in tiles:
        if not isinstance(tile_a, ColumnarTile) or not (
            tile_b is None or isinstance(tile_b, ColumnarTile)
        ):
            return None, None, 0
        entries.append({
            "part": part_id,
            "a": len(tile_a),
            "b": None if tile_b is None else len(tile_b),
        })
        blobs.extend(_tile_blobs(tile_a))
        n_rects += len(tile_a)
        if tile_b is not None:
            blobs.extend(_tile_blobs(tile_b))
            n_rects += len(tile_b)
    return entries, blobs, n_rects


def _tile_blobs(tile: ColumnarTile) -> List[bytes]:
    return [getattr(tile, col).tobytes() for col in _COLUMNS]


def _decode(kind: str, entries: List[dict], body: bytes):
    offset = 0
    tasks = []
    for entry in entries:
        tile_a, offset = _read_tile(body, offset, int(entry["a"]))
        tile_b = None
        if entry["b"] is not None:
            tile_b, offset = _read_tile(body, offset, int(entry["b"]))
        tasks.append((entry["part"], tile_a, tile_b))
    if offset != len(body):
        raise ValueError("trailing bytes in artifact payload")
    if kind == SORTED_RUN_KIND:
        if len(tasks) != 1:
            raise ValueError("sorted-run artifact must hold one tile")
        return tasks[0][1]
    return tasks


def _read_tile(body: bytes, offset: int, n: int):
    tile = ColumnarTile()
    for col, typecode in zip(_COLUMNS, "ddddq"):
        arr = array(typecode)
        nbytes = n * arr.itemsize
        if offset + nbytes > len(body):
            raise ValueError("truncated artifact payload")
        arr.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        setattr(tile, col, arr)
    return tile, offset
