"""Disk persistence for execution artifacts (the spill-directory sidecar).

The in-memory :class:`~repro.engine.cache.ArtifactCache` dies with the
engine process, even though the catalog already persists its R-trees
(:mod:`repro.rtree.persist`).  :class:`ArtifactStore` closes that gap:
partition distributions and sorted runs serialize through the existing
columnar codec into real files under a caller-chosen directory, with a
JSON manifest recording what each file holds (kind, relation names,
logical bytes, checksum).  A restarted engine pointed at the same
directory repopulates its cache *lazily*: the first query that misses
in memory probes the manifest, restores the payload, verifies its
checksum, and re-inserts it under the budget — counted as a
``disk_restore``, and priced on the simulated disk as one sequential
read of the artifact's logical bytes (the load replaces the scan or
sort pass the query would otherwise have paid; see the executor).
Saves, like R-tree persistence, are uncharged — persistence is not
part of any measured experiment.

Artifacts are **content-addressed**: tokens are derived from relation
*fingerprints* (a CRC over the registered rectangles, see
:attr:`~repro.engine.catalog.CatalogEntry.fingerprint`) rather than
catalog versions, which are process-local counters.  Re-registering the
same data after a restart therefore reuses the persisted artifacts,
while changed data produces a different token and simply never matches
— stale files are unreachable by construction and are only reclaimed by
:meth:`ArtifactStore.clear` (or deleting the directory).

File layout (one artifact per file, ``<token>.art``)::

    header:  one UTF-8 JSON line — {"kind", "byteorder",
             "entries": [{"part": id|null, "a": n_rects,
                          "b": n_rects|null}, ...]}
    body:    per entry, tile A's five columns then (when present)
             tile B's, each as the raw bytes of the corresponding
             array ('d' x4, then 'q')

The body's CRC32 lives in the manifest, not the file, so a truncated
or bit-flipped artifact is detected before any of it is decoded.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
import zlib
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarTile
from repro.engine.cache import PARTITION_KIND, SORTED_RUN_KIND
from repro.geom.rect import RECT_BYTES

_MANIFEST = "manifest.json"
_COLUMNS = ("xlo", "xhi", "ylo", "yhi", "rid")


def canonical_token(kind: str, fingerprints: Sequence[Tuple[str, int]],
                    *extra) -> str:
    """A stable, filename-safe identity for one persistable artifact.

    ``fingerprints`` is the content identity of the artifact's input
    relations — ``(name, fingerprint)`` pairs.  ``extra`` pins the
    derivation parameters (grid geometry and window for partition
    artifacts, the sort axis for sorted runs); floats are rendered via
    ``repr`` so the token is exact, and the whole string is hashed to
    keep filenames uniform.
    """
    parts: List[str] = [kind]
    for name, fp in fingerprints:
        parts.append(f"{name}={fp}")
    parts.extend(_canon(x) for x in extra)
    raw = "|".join(parts)
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


def _canon(obj) -> str:
    if obj is None:
        return "~"
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return "(" + ",".join(_canon(x) for x in obj) + ")"
    return str(obj)


def partition_token(fingerprints: Sequence[Tuple[str, int]], universe,
                    tiles: int, partitions: int, window) -> str:
    """Sidecar token of one distribution.

    One definition shared by the executor (save/restore) and the
    optimizer (pricing probes) — the two must derive byte-identical
    tokens or warm plans get priced that the executor then runs cold.
    ``universe``/``window`` are rectangles (window may be None);
    ``tiles`` is the *effective* grid resolution
    (:func:`~repro.engine.cache.grid_tiles`).
    """
    return canonical_token(
        PARTITION_KIND, fingerprints,
        (universe.xlo, universe.xhi, universe.ylo, universe.yhi),
        tiles, partitions,
        None if window is None else tuple(window[:4]),
    )


def sorted_run_token(name: str, fingerprint: int,
                     axis: str = "ylo") -> str:
    """Sidecar token of one relation's sorted run (shared, see above)."""
    return canonical_token(SORTED_RUN_KIND, ((name, fingerprint),), axis)


class ArtifactStore:
    """A directory of persisted artifacts plus its manifest.

    The store is deliberately dumb: it maps tokens to checksummed
    payload files and knows nothing about budgets, versions or plan
    keys — the executor owns key/token translation and restore
    pricing, the cache owns memory.  All counters are cumulative for
    the store object's lifetime.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._manifest: Dict[str, dict] = {}
        self.saves = 0
        self.save_bytes = 0
        self.save_wall_seconds = 0.0
        self.restores = 0
        self.restore_bytes = 0
        self.restore_wall_seconds = 0.0
        self.corrupt_drops = 0
        self._load_manifest()

    # -- queries ---------------------------------------------------------

    def has(self, token: str) -> bool:
        return token in self._manifest

    def peek(self, token: str) -> Optional[dict]:
        """The manifest entry (no payload I/O); the optimizer prices
        restorable plans from ``logical_bytes`` here."""
        return self._manifest.get(token)

    def __len__(self) -> int:
        return len(self._manifest)

    # -- writes ----------------------------------------------------------

    def save(self, token: str, kind: str, value,
             relations: Sequence[str]) -> bool:
        """Persist one artifact; idempotent per token.

        ``value`` is the cache's representation: a task list for
        ``"partition"`` artifacts, a single tile for ``"sorted-run"``.
        Returns False when the payload contains non-columnar tiles
        (nothing to serialize) — the caller encodes first.
        """
        if token in self._manifest:
            return True
        t0 = time.perf_counter()
        entries, blobs, n_rects = _encode(kind, value)
        if entries is None:
            return False
        header = json.dumps({
            "kind": kind,
            "byteorder": sys.byteorder,
            "entries": entries,
        }, sort_keys=True).encode("utf-8") + b"\n"
        body = b"".join(blobs)
        path = os.path.join(self.root, f"{token}.art")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(body)
        os.replace(tmp, path)
        self._manifest[token] = {
            "kind": kind,
            "file": os.path.basename(path),
            "relations": list(relations),
            "logical_bytes": n_rects * RECT_BYTES,
            "file_bytes": len(header) + len(body),
            "crc32": zlib.crc32(body),
        }
        self._write_manifest()
        self.saves += 1
        self.save_bytes += len(body)
        self.save_wall_seconds += time.perf_counter() - t0
        return True

    def clear(self) -> None:
        """Drop every artifact and its file (manual housekeeping)."""
        for token in list(self._manifest):
            self._drop(token)
        self._write_manifest()

    # -- reads -----------------------------------------------------------

    def load(self, token: str):
        """Restore one artifact: ``(kind, value, logical_bytes)`` or None.

        A missing file, checksum mismatch, foreign byte order or
        malformed header drops the manifest entry (counted under
        ``corrupt_drops``) and reports a miss — a damaged sidecar must
        degrade to a cold run, never a wrong answer.
        """
        meta = self._manifest.get(token)
        if meta is None:
            return None
        t0 = time.perf_counter()
        path = os.path.join(self.root, meta["file"])
        try:
            with open(path, "rb") as fh:
                header = json.loads(fh.readline().decode("utf-8"))
                body = fh.read()
            if (zlib.crc32(body) != meta["crc32"]
                    or header.get("byteorder") != sys.byteorder
                    or header.get("kind") != meta["kind"]):
                raise ValueError("artifact payload failed verification")
            value = _decode(header["kind"], header["entries"], body)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self._drop(token)
            self._write_manifest()
            self.corrupt_drops += 1
            return None
        self.restores += 1
        self.restore_bytes += meta["logical_bytes"]
        self.restore_wall_seconds += time.perf_counter() - t0
        return (meta["kind"], value, meta["logical_bytes"])

    # -- internals -------------------------------------------------------

    def _drop(self, token: str) -> None:
        meta = self._manifest.pop(token, None)
        if meta is None:
            return
        try:
            os.remove(os.path.join(self.root, meta["file"]))
        except OSError:
            pass

    def _manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _load_manifest(self) -> None:
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            self._manifest = dict(data.get("artifacts", {}))
        except (OSError, ValueError):
            self._manifest = {}

    def _write_manifest(self) -> None:
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "artifacts": self._manifest}, fh,
                      sort_keys=True, indent=1)
        os.replace(tmp, self._manifest_path())

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._manifest),
            "saves": self.saves,
            "save_bytes": self.save_bytes,
            "save_wall_seconds": self.save_wall_seconds,
            "restores": self.restores,
            "restore_bytes": self.restore_bytes,
            "restore_wall_seconds": self.restore_wall_seconds,
            "corrupt_drops": self.corrupt_drops,
        }


def charge_restore(disk, logical_bytes: int) -> None:
    """Price one artifact restore on the simulated disk.

    A restore replaces the scan or sort pass the query would otherwise
    have paid, so it must not be free: it is charged as one sequential
    read of the artifact's *logical* bytes (records x ``RECT_BYTES`` —
    the simulated disk stores 20-byte records; the sidecar file's own
    byte count is a codec detail).  The read lands on a fresh extent so
    the machine observers see it as sequential, like any other stream
    pass.
    """
    if logical_bytes <= 0:
        return
    offset = disk.allocate(logical_bytes)
    disk.env.io_read(offset, logical_bytes)


# -- codec -------------------------------------------------------------------


def _encode(kind: str, value):
    """Flatten a cache value into (header entries, column blobs, rects)."""
    entries: List[dict] = []
    blobs: List[bytes] = []
    n_rects = 0
    if kind == SORTED_RUN_KIND:
        tiles = [(None, value, None)]
    elif kind == PARTITION_KIND:
        tiles = value
    else:
        return None, None, 0
    for part_id, tile_a, tile_b in tiles:
        if not isinstance(tile_a, ColumnarTile) or not (
            tile_b is None or isinstance(tile_b, ColumnarTile)
        ):
            return None, None, 0
        entries.append({
            "part": part_id,
            "a": len(tile_a),
            "b": None if tile_b is None else len(tile_b),
        })
        blobs.extend(_tile_blobs(tile_a))
        n_rects += len(tile_a)
        if tile_b is not None:
            blobs.extend(_tile_blobs(tile_b))
            n_rects += len(tile_b)
    return entries, blobs, n_rects


def _tile_blobs(tile: ColumnarTile) -> List[bytes]:
    return [getattr(tile, col).tobytes() for col in _COLUMNS]


def _decode(kind: str, entries: List[dict], body: bytes):
    offset = 0
    tasks = []
    for entry in entries:
        tile_a, offset = _read_tile(body, offset, int(entry["a"]))
        tile_b = None
        if entry["b"] is not None:
            tile_b, offset = _read_tile(body, offset, int(entry["b"]))
        tasks.append((entry["part"], tile_a, tile_b))
    if offset != len(body):
        raise ValueError("trailing bytes in artifact payload")
    if kind == SORTED_RUN_KIND:
        if len(tasks) != 1:
            raise ValueError("sorted-run artifact must hold one tile")
        return tasks[0][1]
    return tasks


def _read_tile(body: bytes, offset: int, n: int):
    tile = ColumnarTile()
    for col, typecode in zip(_COLUMNS, "ddddq"):
        arr = array(typecode)
        nbytes = n * arr.itemsize
        if offset + nbytes > len(body):
            raise ValueError("truncated artifact payload")
        arr.frombytes(body[offset:offset + nbytes])
        offset += nbytes
        setattr(tile, col, arr)
    return tile, offset
