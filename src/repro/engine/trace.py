"""Per-query span trees: phase-level attribution for the engine.

The serving metrics (:mod:`repro.engine.metrics`) answer *how much* —
cumulative pages, ops and seconds over an engine's lifetime.  They
cannot answer *where one query spent its time*: when ``skewed_batched``
serves 51 wall q/s against 361 sim q/s, nothing in a flat counter bag
says whether the gap is the scan, the distribute, the pickle boundary
or the sweeps.  A :class:`Span` tree answers that question per query:

    query
    ├── lookup                (result-cache probe)
    ├── plan                  (optimizer, incl. lazy catalog builds)
    ├── execute
    │   ├── distribute        (scan + partition + spill)
    │   ├── sweep
    │   │   ├── sweep-task    (one pool task: solo tile or batch)
    │   │   └── ...
    │   └── gather            (future drain + merge)
    └── finalize              (result-cache fill)

A sharded query wraps the same shape: the scatter span adopts each
shard engine's whole ``query`` tree as a ``shard`` subtree (tagged
with the replica that served it), and degradations appear as extra
scatter children — a ``failover`` span per failed replica attempt
(shard, replica, error type, attempt number) and a ``restore`` span
when a shard's sub-result was served from the persisted result store
instead of executing.

Every span carries **wall seconds** (host clock) and the **simulated**
story of the same stretch — io/cpu seconds on the engine's machine plus
the raw page/byte/op deltas — so the wall-vs-sim throughput gap can be
read off one tree.  Sweep-task spans are recorded *inside* the pool
worker (a plain picklable dict, shipped back attached to the task
result) and grafted under the coordinator's ``sweep`` span; serial,
thread and process pools all produce the same tree shape.

Tracing is strictly opt-in and zero-cost when off: every call site
guards on ``trace is not None``, and :func:`span_meter` returns a
shared null context manager instead of allocating when no trace is
active.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Dict, Iterator, List, Optional, Tuple

#: Numeric fields every span carries (and ``to_dict`` emits).  The
#: trace-schema validator and the CI checker key off this list, so the
#: span model and its JSON form cannot drift apart silently.
SPAN_METRIC_FIELDS = (
    "wall_seconds",
    "sim_io_seconds",
    "sim_cpu_seconds",
    "cpu_ops",
    "pages_read",
    "pages_written",
    "bytes_read",
    "bytes_written",
)


class Span:
    """One node of a query's trace tree.

    A span is deliberately dumb storage — no clock of its own, no
    global registry.  The engine/executor fill the timing and counter
    fields, usually through :class:`EnvMeter`; worker-side spans are
    built as dicts in the pool task and converted with
    :meth:`from_task`.
    """

    __slots__ = (
        "name", "attrs", "children",
        "wall_seconds", "sim_io_seconds", "sim_cpu_seconds",
        "cpu_ops", "pages_read", "pages_written",
        "bytes_read", "bytes_written",
    )

    def __init__(self, name: str, **attrs: object) -> None:
        self.name = name
        self.attrs: Dict[str, object] = attrs
        self.children: List["Span"] = []
        self.wall_seconds = 0.0
        self.sim_io_seconds = 0.0
        self.sim_cpu_seconds = 0.0
        self.cpu_ops = 0
        self.pages_read = 0
        self.pages_written = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def child(self, name: str, **attrs: object) -> "Span":
        """Append and return a new child span."""
        span = Span(name, **attrs)
        self.children.append(span)
        return span

    def adopt(self, span: "Span") -> "Span":
        """Graft an existing span (e.g. a shard subtree) under this one."""
        self.children.append(span)
        return span

    # -- inspection ------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in depth-first order, or None."""
        for s in self.walk():
            if s.name == name:
                return s
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [s for s in self.walk() if s.name == name]

    def shape(self) -> Tuple:
        """The tree's structure only: ``(name, (child shapes...))``.

        Two traces with the same shape went through the same phases
        with the same fan-out — the invariant the pool-kind tests
        assert (serial, thread and process execution differ in *where*
        work ran, never in what the trace looks like).
        """
        return (self.name, tuple(c.shape() for c in self.children))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (attrs copied, children recursed)."""
        d: Dict[str, object] = {"name": self.name}
        for f in SPAN_METRIC_FIELDS:
            d[f] = getattr(self, f)
        d["attrs"] = dict(self.attrs)
        d["children"] = [c.to_dict() for c in self.children]
        return d

    @classmethod
    def from_task(cls, task: Dict[str, object],
                  seconds_per_op: float) -> "Span":
        """A worker task's span dict, priced on the coordinator.

        Workers know their wall time and op count but not the engine's
        machine; simulated CPU seconds are derived here so every task
        span is priced on the same machine as the rest of the tree.
        """
        span = cls(str(task.get("name", "sweep-task")))
        span.wall_seconds = float(task.get("wall_seconds", 0.0))
        span.cpu_ops = int(task.get("cpu_ops", 0))
        span.sim_cpu_seconds = span.cpu_ops * seconds_per_op
        for key in ("part", "tiles", "pairs", "dups", "pid"):
            if key in task:
                span.attrs[key] = task[key]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall_seconds:.6f}s, "
            f"ops={self.cpu_ops}, children={len(self.children)})"
        )


class EnvMeter:
    """Context manager delta-metering one span against the sim env.

    Snapshots the environment's page/byte/op counters, the machine
    observer's io/cpu seconds and the host clock on entry; on exit the
    deltas are *added* to the span (a span may be metered over several
    disjoint stretches).  Parent and child spans may meter the same
    environment concurrently — a parent's deltas naturally include its
    children's, which is exactly what a span tree means.
    """

    __slots__ = ("env", "obs", "span", "_t0", "_before")

    def __init__(self, env, machine, span: Span) -> None:
        self.env = env
        self.obs = env.observer_for(machine)
        self.span = span

    def __enter__(self) -> Span:
        env, obs = self.env, self.obs
        self._before = (
            env.page_reads, env.page_writes,
            env.bytes_read, env.bytes_written, env.cpu_ops,
            obs.io_seconds, obs.cpu_seconds,
        )
        self._t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> None:
        env, obs, span = self.env, self.obs, self.span
        before = self._before
        span.wall_seconds += time.perf_counter() - self._t0
        span.pages_read += env.page_reads - before[0]
        span.pages_written += env.page_writes - before[1]
        span.bytes_read += env.bytes_read - before[2]
        span.bytes_written += env.bytes_written - before[3]
        span.cpu_ops += env.cpu_ops - before[4]
        span.sim_io_seconds += obs.io_seconds - before[5]
        span.sim_cpu_seconds += obs.cpu_seconds - before[6]


#: Shared no-op context for untraced call sites: ``span_meter`` with no
#: active trace costs one truthiness test and no allocation.
_NULL_CM = nullcontext(None)


def span_meter(env, machine, parent: Optional[Span], name: str,
               **attrs: object):
    """A metered child span of ``parent``, or a shared null context.

    The one guard every traced call site uses::

        with span_meter(env, machine, trace, "plan") as span:
            plan = optimizer.compile(query)   # span is None when off
    """
    if parent is None:
        return _NULL_CM
    return EnvMeter(env, machine, parent.child(name, **attrs))
