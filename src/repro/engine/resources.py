"""The engine's internal-memory contract: one budget, many consumers.

The paper runs every algorithm under an explicit internal-memory grant
(Section 5.1: 24 MB for the stream algorithms, a 22 MB LRU pool for the
tree join), and its cost arguments only hold because nothing quietly
exceeds that grant.  :class:`ResourceBudget` turns the simulated budget
(:data:`repro.sim.scale.ScaleConfig.memory_bytes`) into an *enforced*
runtime contract shared by every layer of the serving engine:

* the storage layer's :class:`~repro.storage.buffer_pool.BufferPool`
  charges resident pages, and
  :func:`~repro.storage.sort.external_sort` sizes its run-formation
  chunks to what the budget can actually grant;
* the core layer's :class:`~repro.core.pbsm.SpillablePartition` holds
  tiles in memory up to its allowance and overflows to disk;
* the engine layer acquires per-query grants for partitioned tiles and
  rejects queries whose minimum grant can never fit (admission
  control).  (Result-cache memory is deliberately *not* charged here —
  it is governed by the cache's own byte bound, so cached results can
  never starve execution grants.)

The budget is pure accounting plus advisory granting: ``acquire``
returns a :class:`ResourceGrant` for *up to* the requested bytes (never
less than the caller's stated minimum — an overcommit, which is
counted), and consumers adapt (smaller sort chunks, spilled tiles)
rather than fail.  ``high_water_bytes`` records the worst case actually
reached, per category and overall — the number the paper's Table 3
memory rows report.

Grants may be charged and released from executor worker threads, so all
mutation happens under one lock.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class AdmissionError(RuntimeError):
    """Raised when a query's minimum memory grant exceeds the budget.

    Admission control protects a serving engine: a query that could not
    run even with maximal spilling is refused up front instead of
    degrading every other query on the engine.
    """


class ResourceGrant:
    """A lease on budget bytes, held by one consumer.

    ``held`` is what the grant currently charges to the budget; it
    starts at the granted amount and moves via :meth:`charge` /
    :meth:`release`.  Grants are context managers — leaving the block
    releases whatever is still held.
    """

    __slots__ = ("budget", "category", "granted", "held", "_closed")

    def __init__(self, budget: "ResourceBudget", category: str,
                 granted: int) -> None:
        self.budget = budget
        self.category = category
        self.granted = granted
        self.held = granted
        self._closed = False

    @property
    def bytes(self) -> int:
        """The advisory allowance this grant was issued for."""
        return self.granted

    def charge(self, nbytes: int) -> None:
        """Grow the held amount by ``nbytes`` (accounting, not refusal)."""
        if nbytes <= 0 or self._closed:
            return
        self.held += nbytes
        self.budget._charge(self.category, nbytes)

    def try_extend(self, nbytes: int) -> bool:
        """Grow the grant by ``nbytes`` only if the budget has them free.

        The refusal-capable sibling of :meth:`charge`: consumers that
        can degrade gracefully (spill, shrink) ask before taking more,
        so they never push the budget past its total.
        """
        if nbytes <= 0 or self._closed:
            return False
        if not self.budget._try_charge(self.category, nbytes):
            return False
        self.held += nbytes
        self.granted += nbytes
        return True

    def release(self, nbytes: Optional[int] = None) -> None:
        """Return bytes to the budget.

        ``release(n)`` gives back up to ``n`` held bytes and keeps the
        grant alive (a long-lived consumer like the buffer pool shrinks
        and regrows).  ``release()`` gives back everything and closes
        the grant for good.
        """
        if self._closed:
            return
        if nbytes is None:
            nbytes = self.held
            self._closed = True
        else:
            nbytes = min(nbytes, self.held)
        if nbytes > 0:
            self.held -= nbytes
            self.budget._release(self.category, nbytes)

    def __enter__(self) -> "ResourceGrant":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ResourceBudget:
    """Byte-granular memory budget with per-category accounting."""

    def __init__(self, total_bytes: int) -> None:
        if total_bytes <= 0:
            raise ValueError("a resource budget needs at least one byte")
        self.total_bytes = total_bytes
        self._lock = threading.Lock()
        self._in_use = 0
        self._by_category: Dict[str, int] = {}
        self.high_water_bytes = 0
        self.high_water_by_category: Dict[str, int] = {}
        self.grants_issued = 0
        self.overcommits = 0
        #: Externally reported per-category observations (see
        #: :meth:`note_observation`) — the *measured* footprint of work
        #: done under a category's grants, as opposed to
        #: ``high_water_by_category``, which records what the grants
        #: themselves charged.
        self.observed_by_category: Dict[str, int] = {}

    # -- granting --------------------------------------------------------

    def acquire(self, category: str, nbytes: int,
                minimum: int = 0) -> ResourceGrant:
        """Grant up to ``nbytes`` from what is currently free.

        The grant is clamped to the free budget but never below
        ``minimum``: a consumer that cannot function below some floor
        (a sort needs at least one sortable chunk) is overcommitted
        rather than refused, and the overcommit is counted — admission
        control exists to keep genuinely impossible requests out before
        they reach this point.
        """
        if nbytes < 0 or minimum < 0:
            raise ValueError("grant sizes cannot be negative")
        with self._lock:
            free = self.total_bytes - self._in_use
            granted = min(nbytes, max(free, 0))
            if granted < minimum:
                granted = minimum
                self.overcommits += 1
            self.grants_issued += 1
            self._charge_locked(category, granted)
        return ResourceGrant(self, category, granted)

    def try_acquire(self, category: str,
                    nbytes: int) -> Optional[ResourceGrant]:
        """Grant exactly ``nbytes``, or None when they are not free.

        The refusal-capable sibling of :meth:`acquire`: no clamping, no
        overcommit.  An admission *queue* uses this to decide whether a
        query can run now or must park until a grant is released —
        parking replaces both the overcommit (which would let load melt
        the budget) and the hard :class:`AdmissionError` (which would
        refuse serveable work).
        """
        if nbytes < 0:
            raise ValueError("grant sizes cannot be negative")
        with self._lock:
            if nbytes > self.total_bytes - self._in_use:
                return None
            self.grants_issued += 1
            self._charge_locked(category, nbytes)
        return ResourceGrant(self, category, nbytes)

    def note_observation(self, category: str, nbytes: int) -> None:
        """Record a *measured* footprint for ``category``.

        Keeps the running maximum.  The serving layer's adaptive
        admission feeds each served query's actual peak memory back
        here, then sizes future grants for the class from the observed
        high-water instead of a static configured guess.
        """
        if nbytes <= 0:
            return
        with self._lock:
            if nbytes > self.observed_by_category.get(category, 0):
                self.observed_by_category[category] = nbytes

    def observed_high_water(self, category: str) -> int:
        """The largest observation recorded for ``category`` (0 if none)."""
        with self._lock:
            return self.observed_by_category.get(category, 0)

    # -- reading ---------------------------------------------------------

    @property
    def in_use_bytes(self) -> int:
        return self._in_use

    @property
    def available_bytes(self) -> int:
        return max(0, self.total_bytes - self._in_use)

    def used_by(self, category: str) -> int:
        return self._by_category.get(category, 0)

    def would_fit(self, nbytes: int) -> bool:
        return nbytes <= self.available_bytes

    def snapshot(self) -> Dict[str, object]:
        """One dict of totals, per-category usage and high-water marks."""
        with self._lock:
            return {
                "total_bytes": self.total_bytes,
                "in_use_bytes": self._in_use,
                "high_water_bytes": self.high_water_bytes,
                "by_category": dict(self._by_category),
                "high_water_by_category": dict(self.high_water_by_category),
                "observed_high_water_by_category": dict(
                    self.observed_by_category
                ),
                "grants_issued": self.grants_issued,
                "overcommits": self.overcommits,
            }

    # -- internals (called by ResourceGrant) -----------------------------

    def _charge(self, category: str, nbytes: int) -> None:
        with self._lock:
            self._charge_locked(category, nbytes)

    def _try_charge(self, category: str, nbytes: int) -> bool:
        with self._lock:
            if nbytes > self.total_bytes - self._in_use:
                return False
            self._charge_locked(category, nbytes)
            return True

    def _charge_locked(self, category: str, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self._in_use += nbytes
        used = self._by_category.get(category, 0) + nbytes
        self._by_category[category] = used
        if self._in_use > self.high_water_bytes:
            self.high_water_bytes = self._in_use
        if used > self.high_water_by_category.get(category, 0):
            self.high_water_by_category[category] = used

    def _release(self, category: str, nbytes: int) -> None:
        if nbytes <= 0:
            return
        with self._lock:
            self._in_use = max(0, self._in_use - nbytes)
            left = self._by_category.get(category, 0) - nbytes
            if left > 0:
                self._by_category[category] = left
            else:
                self._by_category.pop(category, None)
