"""Per-engine serving metrics.

The paper's experiment runner zeroes all counters before each measured
run; a serving engine is the opposite — it accumulates forever, and
operators read rates off the running totals.  :class:`EngineMetrics`
tracks query traffic (served / cache hits / executed), the raw I/O
counters delta-ed from the simulation environment around each
execution, simulated seconds on the engine's machine, and real
wall-clock seconds spent inside the executor.

``snapshot()`` flattens everything into one dict (the `/metrics`
endpoint analogue); the engine merges in result-cache and buffer-pool
statistics so one call tells the whole serving story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.geom.rect import RECT_BYTES

#: Bound on the per-query latency reservoir: enough samples for stable
#: p50/p95 estimates, small enough that a long-lived engine's metrics
#: stay O(1) in memory.
LATENCY_RESERVOIR = 512


class LatencyTracker:
    """Latency aggregates plus a bounded reservoir for percentiles.

    Extracted from :class:`EngineMetrics` so serving layers that are
    not an engine — the sharded scatter loop logs its *logical* query
    latencies, not the sum of its shards' — can track latency with the
    same semantics: running count/total/max, classic reservoir sampling
    (every served query equally likely to be represented, however long
    the process lives), and index-based percentile reads.
    """

    __slots__ = ("count", "total_seconds", "max_seconds",
                 "_reservoir", "_rng")

    def __init__(self, seed: int = 0x51AB) -> None:
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self._reservoir: List[float] = []
        self._rng = random.Random(seed)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        if len(self._reservoir) < LATENCY_RESERVOIR:
            self._reservoir.append(seconds)
        else:
            j = self._rng.randrange(self.count)
            if j < LATENCY_RESERVOIR:
                self._reservoir[j] = seconds

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the reservoir."""
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        """The latency keys every serving snapshot carries."""
        return {
            "latency_count": self.count,
            "latency_total_seconds": self.total_seconds,
            "latency_avg_seconds": self.avg_seconds,
            "latency_max_seconds": self.max_seconds,
            "latency_p50_seconds": self.percentile(0.50),
            "latency_p95_seconds": self.percentile(0.95),
        }


@dataclass
class EngineMetrics:
    """Cumulative counters for one engine instance."""

    queries_served: int = 0
    cache_hits: int = 0
    queries_executed: int = 0
    #: Queries refused by admission control (minimum grant > budget).
    queries_rejected: int = 0
    #: Executions abandoned mid-flight by deadline cancellation — the
    #: executor raised :class:`~repro.engine.pool.DeadlineExceeded`
    #: from a scatter/gather checkpoint or a worker tile boundary.
    queries_cancelled: int = 0

    #: Tile spill traffic from budget-governed partitioned execution.
    spilled_rects: int = 0
    spilled_bytes: int = 0
    #: Executed queries that spilled at least one tile.
    spill_queries: int = 0

    #: Artifact-layer disk activity: artifacts (distributions, sorted
    #: runs) restored from the spill-directory sidecar, and the logical
    #: bytes those restores read on the simulated disk.  Per-kind
    #: hit/miss/byte counters live on the cache and are merged into the
    #: engine snapshot alongside these.
    artifact_restores: int = 0
    artifact_restore_bytes: int = 0

    #: Availability counters.  A single engine has no replicas to fail
    #: over to, so these stay zero here — they exist so single-engine
    #: and sharded snapshots stay key-compatible, and so
    #: :func:`merge_snapshots` sums them like any physical counter.
    #: ``replica_failures`` counts individual replica sub-query
    #: failures, ``retries`` the re-attempts those failures triggered,
    #: ``failovers`` the logical queries ultimately served by a
    #: non-first-choice replica, ``replica_timeouts`` sub-queries that
    #: exceeded the replica timeout (health-penalized post hoc).
    failovers: int = 0
    retries: int = 0
    replica_failures: int = 0
    replica_timeouts: int = 0

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cpu_ops: int = 0

    #: Simulated seconds on the engine's machine, split and combined.
    sim_io_seconds: float = 0.0
    sim_cpu_seconds: float = 0.0
    sim_wall_seconds: float = 0.0

    #: Real (host) seconds spent executing plans.
    wall_seconds: float = 0.0

    pairs_returned: int = 0
    per_strategy: Dict[str, int] = field(default_factory=dict)

    #: Per-strategy estimate-vs-actual feedback: how far the cost
    #: model's I/O estimate was from what execution actually charged.
    #: Sums only (query count, estimated seconds, actual seconds,
    #: absolute error) so shard snapshots merge by plain addition;
    #: readers derive mean errors from the sums.
    estimate_errors: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )

    #: Per-query wall-clock latency: running aggregates plus a bounded
    #: reservoir sample for tail percentiles (p50/p95).  Cache hits
    #: count too — a served query is a served query, and hit latency is
    #: exactly what the tail of a warm engine looks like.
    latency: LatencyTracker = field(
        default_factory=LatencyTracker, repr=False
    )

    # Attribute-compatible views of the tracker (pre-extraction callers
    # and tests read these names directly).

    @property
    def latency_count(self) -> int:
        return self.latency.count

    @property
    def latency_total_seconds(self) -> float:
        return self.latency.total_seconds

    @property
    def latency_max_seconds(self) -> float:
        return self.latency.max_seconds

    @property
    def _latency_reservoir(self) -> List[float]:
        return self.latency._reservoir

    # -- recording -------------------------------------------------------

    def record_latency(self, seconds: float) -> None:
        """Fold one served query's wall latency into the aggregates."""
        self.latency.record(seconds)

    def latency_percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the latency reservoir."""
        return self.latency.percentile(q)

    def record_hit(self, n_pairs: int, wall_seconds: float) -> None:
        """One result-cache hit.  ``wall_seconds`` is the *measured*
        hit latency — there is deliberately no default: a synthetic 0.0
        would drag p50/p95 toward zero on any cache-friendly workload,
        which is exactly the tail distortion the percentiles exist to
        catch."""
        self.queries_served += 1
        self.cache_hits += 1
        self.pairs_returned += n_pairs
        self.record_latency(wall_seconds)

    def record_estimate(self, strategy: str, estimated_io_seconds: float,
                        actual_io_seconds: float) -> None:
        """Fold one executed query's estimate-vs-actual I/O gap.

        Forced strategies are planned without pricing (NaN estimate)
        and are skipped — there is no estimate to be wrong about.
        """
        if estimated_io_seconds != estimated_io_seconds:  # NaN
            return
        err = self.estimate_errors.setdefault(strategy, {
            "queries": 0,
            "estimated_io_seconds": 0.0,
            "actual_io_seconds": 0.0,
            "abs_error_seconds": 0.0,
        })
        err["queries"] += 1
        err["estimated_io_seconds"] += estimated_io_seconds
        err["actual_io_seconds"] += actual_io_seconds
        err["abs_error_seconds"] += abs(
            actual_io_seconds - estimated_io_seconds
        )

    def record_rejection(self) -> None:
        """A query refused by admission control (never executed)."""
        self.queries_rejected += 1

    def record_cancellation(self) -> None:
        """An execution abandoned at a deadline checkpoint."""
        self.queries_cancelled += 1

    def record_execution(
        self,
        strategy: str,
        n_pairs: int,
        pages_read: int,
        pages_written: int,
        bytes_read: int,
        bytes_written: int,
        cpu_ops: int,
        sim_io_seconds: float,
        sim_cpu_seconds: float,
        sim_wall_seconds: float,
        wall_seconds: float,
        spilled_rects: int = 0,
        artifact_restores: int = 0,
        artifact_restore_bytes: int = 0,
    ) -> None:
        self.queries_served += 1
        self.queries_executed += 1
        self.pairs_returned += n_pairs
        if spilled_rects > 0:
            self.spilled_rects += spilled_rects
            self.spilled_bytes += spilled_rects * RECT_BYTES
            self.spill_queries += 1
        self.artifact_restores += artifact_restores
        self.artifact_restore_bytes += artifact_restore_bytes
        self.pages_read += pages_read
        self.pages_written += pages_written
        self.bytes_read += bytes_read
        self.bytes_written += bytes_written
        self.cpu_ops += cpu_ops
        self.sim_io_seconds += sim_io_seconds
        self.sim_cpu_seconds += sim_cpu_seconds
        self.sim_wall_seconds += sim_wall_seconds
        self.wall_seconds += wall_seconds
        self.per_strategy[strategy] = self.per_strategy.get(strategy, 0) + 1
        self.record_latency(wall_seconds)

    # -- reading ---------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        return (
            self.cache_hits / self.queries_served
            if self.queries_served else 0.0
        )

    def snapshot(self) -> Dict[str, object]:
        """One flat dict of every counter plus derived rates."""
        return {
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "queries_executed": self.queries_executed,
            "queries_rejected": self.queries_rejected,
            "queries_cancelled": self.queries_cancelled,
            "spilled_rects": self.spilled_rects,
            "spilled_bytes": self.spilled_bytes,
            "spill_queries": self.spill_queries,
            "artifact_restores": self.artifact_restores,
            "artifact_restore_bytes": self.artifact_restore_bytes,
            "failovers": self.failovers,
            "retries": self.retries,
            "replica_failures": self.replica_failures,
            "replica_timeouts": self.replica_timeouts,
            "failover_rate": (
                self.failovers / self.queries_executed
                if self.queries_executed else 0.0
            ),
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "cpu_ops": self.cpu_ops,
            "sim_io_seconds": self.sim_io_seconds,
            "sim_cpu_seconds": self.sim_cpu_seconds,
            "sim_wall_seconds": self.sim_wall_seconds,
            "wall_seconds": self.wall_seconds,
            "pairs_returned": self.pairs_returned,
            "per_strategy": dict(self.per_strategy),
            "estimate_errors": {
                k: dict(v) for k, v in self.estimate_errors.items()
            },
            **self.latency.snapshot(),
        }


#: Snapshot keys where "worst shard" is the honest aggregate (summing
#: a max or a percentile across shards would fabricate latencies no
#: query ever saw).
_MERGE_MAX_KEYS = frozenset({
    "latency_max_seconds", "latency_p50_seconds", "latency_p95_seconds",
})

#: Derived-rate keys recomputed after merging: ``(rate key, numerator
#: key, denominator keys)``.  A mean of per-shard ratios is not the
#: ratio of the sums, so every rate whose numerator/denominator
#: counters are present in the merged dict is recomputed from them.
_DERIVED_RATES = (
    ("cache_hit_rate", "cache_hits", ("queries_served",)),
    ("latency_avg_seconds", "latency_total_seconds",
     ("latency_count",)),
    ("artifact_cache_hit_rate", "artifact_cache_hits",
     ("artifact_cache_hits", "artifact_cache_misses")),
    ("result_cache_hit_rate", "result_cache_hits",
     ("result_cache_hits", "result_cache_misses")),
    ("failover_rate", "failovers", ("queries_executed",)),
)


def sum_counters(into: Dict, add: Dict) -> Dict:
    """Key-wise sum of numeric dict trees, recursing into sub-dicts.

    The one merge semantic for shard aggregation: used by
    :func:`merge_snapshots` for per-strategy and category dicts, and
    by the sharded engine's budget/artifact facades.  Non-numeric
    leaves keep their first-seen value.  Returns ``into``.
    """
    for key, value in add.items():
        if isinstance(value, dict):
            sum_counters(into.setdefault(key, {}), value)
        elif isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            into[key] = into.get(key, 0) + value
        else:
            into.setdefault(key, value)
    return into


def merge_snapshots(snaps) -> Dict[str, object]:
    """Aggregate per-engine metric snapshots into one dict.

    The sharded scatter layer serves one query by executing several —
    one per participating shard — so its physical story is the *sum*
    of its shards': counters and simulated seconds add, per-strategy
    dicts add key-wise, and latency extrema take the worst shard.
    Rate keys are recomputed from the merged counts they derive from
    (a mean of ratios is not the ratio of the sums).  Serving-level
    counters (queries served, cache hits) also sum here — the caller
    overrides them when, as in :class:`ShardedEngine`, one logical
    query fans out to several shard executions.
    """
    merged: Dict[str, object] = {}
    for snap in snaps:
        for key, value in snap.items():
            if isinstance(value, dict):
                sum_counters(merged.setdefault(key, {}), value)
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                merged.setdefault(key, value)
            elif key in _MERGE_MAX_KEYS:
                merged[key] = max(merged.get(key, 0.0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    for rate_key, num_key, den_keys in _DERIVED_RATES:
        if rate_key not in merged and num_key not in merged:
            continue
        den = sum(merged.get(k, 0) for k in den_keys)
        merged[rate_key] = (
            merged.get(num_key, 0) / den if den else 0.0
        )
    return merged
