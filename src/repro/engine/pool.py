"""The engine's persistent worker pool.

Before this module the partitioned executor constructed a fresh
``ThreadPoolExecutor`` inside every query and tore it down afterwards —
pool startup on the hot path, and thread workers that serialize on the
GIL while running a pure-Python sweep.  :class:`WorkerPool` inverts
both decisions:

* **one pool per engine**, created lazily on the first task that needs
  it and reused by every subsequent query (the plan's ``workers`` count
  is a scheduling hint for the simulated critical path, not a pool
  size);
* **process-based by default** (``kind="process"``), so partition
  sweeps run on separate interpreters and genuinely use the cores;
  ``kind="thread"`` keeps the shared-memory fallback and
  ``kind="serial"`` executes inline on the coordinator.

Tasks must therefore be shipped, not shared: the executor encodes tiles
as :class:`~repro.core.columnar.ColumnarTile` columns and workers
return plain ``(rid_a, rid_b)`` lists (see
:func:`repro.engine.executor.sweep_tile_task`).  Shipping has a real
cost — pickle both ways plus scheduling — so the pool degrades
gracefully: single-worker pools run inline, a broken process pool
(sandboxes without working semaphores, forks that die) falls back to
threads once and re-runs the lost task inline, and callers are expected
to keep tiny tasks on the coordinator (the executor's
``min_ship_rects`` threshold).

Submission is streaming: :meth:`submit` hands one task to the pool the
moment its partition is materialized, so coordinator-side
materialization of later partitions overlaps with worker sweeps of
earlier ones.  A task may carry several tiles (the executor's batch
shipping); ``units`` counts them, so the snapshot can report the
amortization factor (tiles per dispatched task) a skewed grid enjoys.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

POOL_KINDS = ("process", "thread", "serial")


class _InlineFuture:
    """A completed-at-submit future for inline (serial) execution."""

    __slots__ = ("_value", "_error")

    def __init__(self, fn: Callable[[Any], Any], payload: Any) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        try:
            self._value = fn(payload)
        except BaseException as exc:  # re-raised at result() like a Future
            self._error = exc

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class WorkerPool:
    """A long-lived process/thread pool shared by one engine's queries."""

    def __init__(self, workers: int = 1, kind: str = "process") -> None:
        if kind not in POOL_KINDS:
            raise ValueError(
                f"pool kind must be one of {POOL_KINDS}, got {kind!r}"
            )
        self.workers = max(1, workers)
        #: The requested kind; single-worker pools execute inline
        #: regardless (a pool of one only adds shipping overhead).
        self.kind = kind if self.workers > 1 else "serial"
        self._executor: Optional[_FuturesExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        # -- stats (surfaced via snapshot / engine metrics) -------------
        self.tasks_dispatched = 0
        self.tasks_inline = 0
        self.tiles_dispatched = 0
        self.tiles_inline = 0
        self.pools_created = 0
        self.fallbacks = 0

    # -- lifecycle -------------------------------------------------------

    def _ensure_executor(self) -> Optional[_FuturesExecutor]:
        if self._executor is not None or self.kind == "serial":
            return self._executor
        if self.kind == "process":
            try:
                # Fork keeps startup off the hot path on POSIX; workers
                # inherit the imported modules instead of re-importing.
                methods = multiprocessing.get_all_start_methods()
                ctx = (
                    multiprocessing.get_context("fork")
                    if "fork" in methods else None
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            except (OSError, PermissionError, ValueError):
                # No working process support here (restricted sandbox):
                # degrade to threads for the life of the pool.
                self.kind = "thread"
                self.fallbacks += 1
        if self._executor is None and self.kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        if self._executor is not None:
            self.pools_created += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the pool (idempotent); the next submit recreates it."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], payload: Any,
               units: int = 1):
        """Schedule ``fn(payload)``; returns a future-like object.

        Serial pools compute inline at submit time.  ``fn`` must be a
        module-level callable and ``payload`` picklable when the pool
        is process-based.  ``units`` is how many tiles the task
        carries (1 for solo tasks, the batch length for batch tasks).
        """
        executor = self._ensure_executor()
        if executor is None:
            self.tasks_inline += 1
            self.tiles_inline += units
            return _InlineFuture(fn, payload)
        self.tasks_dispatched += 1
        self.tiles_dispatched += units
        return executor.submit(fn, payload)

    def run_inline(self, fn: Callable[[Any], Any], payload: Any,
                   units: int = 1):
        """Execute on the coordinator, counted separately from dispatch."""
        self.tasks_inline += 1
        self.tiles_inline += units
        return _InlineFuture(fn, payload)

    def recover(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        """Re-run a task whose pool died; future queries use threads.

        ``BrokenProcessPool`` poisons the whole executor, so the pool is
        torn down, the kind demoted to ``thread``, and the lost task
        recomputed inline — correctness over parallelism.
        """
        self.fallbacks += 1
        if self.kind == "process":
            self.kind = "thread"
        self.shutdown()
        return fn(payload)

    # -- observability ---------------------------------------------------

    @property
    def started(self) -> bool:
        return self._executor is not None

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "started": self.started,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "tiles_dispatched": self.tiles_dispatched,
            "tiles_inline": self.tiles_inline,
            "pools_created": self.pools_created,
            "fallbacks": self.fallbacks,
        }


def _shutdown_executor(executor: _FuturesExecutor) -> None:
    # Module-level so the finalizer holds no reference to the pool.
    executor.shutdown(wait=False)
