"""The engine's persistent worker pool.

Before this module the partitioned executor constructed a fresh
``ThreadPoolExecutor`` inside every query and tore it down afterwards —
pool startup on the hot path, and thread workers that serialize on the
GIL while running a pure-Python sweep.  :class:`WorkerPool` inverts
both decisions:

* **one pool per engine**, created lazily on the first task that needs
  it and reused by every subsequent query (the plan's ``workers`` count
  is a scheduling hint for the simulated critical path, not a pool
  size);
* **process-based by default** (``kind="process"``), so partition
  sweeps run on separate interpreters and genuinely use the cores;
  ``kind="thread"`` keeps the shared-memory fallback and
  ``kind="serial"`` executes inline on the coordinator.

Tasks must therefore be shipped, not shared: the executor encodes tiles
as :class:`~repro.core.columnar.ColumnarTile` columns and workers
return plain ``(rid_a, rid_b)`` lists (see
:func:`repro.engine.executor.sweep_tile_task`).  Shipping has a real
cost — pickle both ways plus scheduling — so the pool degrades
gracefully: single-worker pools run inline, a broken process pool
(sandboxes without working semaphores, forks that die) falls back to
threads once and re-runs the lost task inline, and callers are expected
to keep tiny tasks on the coordinator (the executor's
``min_ship_rects`` threshold).

Submission is streaming: :meth:`submit` hands one task to the pool the
moment its partition is materialized, so coordinator-side
materialization of later partitions overlaps with worker sweeps of
earlier ones.  A task may carry several tiles (the executor's batch
shipping); ``units`` counts them, so the snapshot can report the
amortization factor (tiles per dispatched task) a skewed grid enjoys.

Since the sharded catalog, one pool may serve **several engines**.
Each engine talks to the pool through a :class:`PoolClient` — a
ref-counted handle with its own dispatch counters, so per-shard
activity stays attributable while the pool keeps the shared totals
(the invariant the differential tests assert: client counters sum to
the pool's).  The pool's OS resources are released when the *last*
client releases its handle; an engine closing its own handle can
therefore never tear the pool out from under a sibling shard.  Shared
counters are lock-guarded: two engines may submit from two coordinator
threads at once.
"""

from __future__ import annotations

import multiprocessing
import threading
import weakref
from concurrent.futures import BrokenExecutor
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

POOL_KINDS = ("process", "thread", "serial")


class _InlineFuture:
    """A completed-at-submit future for inline (serial) execution.

    The recovery slots exist because the executor's task shipper tags
    every *submitted* future with its function/payload for broken-pool
    replay — and submit() itself returns an ``_InlineFuture`` on the
    broken-executor and shutdown-race fallback paths, so it must accept
    the same tags as a real future.
    """

    __slots__ = ("_value", "_error", "_repro_fn", "_repro_payload")

    def __init__(self, fn: Callable[[Any], Any], payload: Any) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        try:
            self._value = fn(payload)
        except BaseException as exc:  # re-raised at result() like a Future
            self._error = exc

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


class WorkerPool:
    """A long-lived process/thread pool shareable by several engines."""

    def __init__(self, workers: int = 1, kind: str = "process") -> None:
        if kind not in POOL_KINDS:
            raise ValueError(
                f"pool kind must be one of {POOL_KINDS}, got {kind!r}"
            )
        self.workers = max(1, workers)
        #: The requested kind; single-worker pools execute inline
        #: regardless (a pool of one only adds shipping overhead).
        self.kind = kind if self.workers > 1 else "serial"
        self._executor: Optional[_FuturesExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._lock = threading.Lock()
        #: Live client handles (see :meth:`client`); the pool's executor
        #: is torn down when the count returns to zero.
        self.refs = 0
        # -- stats (surfaced via snapshot / engine metrics) -------------
        self.tasks_dispatched = 0
        self.tasks_inline = 0
        self.tiles_dispatched = 0
        self.tiles_inline = 0
        self.pools_created = 0
        self.fallbacks = 0
        #: process->thread kind demotions (a subset of ``fallbacks``:
        #: only the fallbacks that permanently changed the pool kind).
        self.demotions = 0
        #: Every client ever attached, weakly held, so the snapshot can
        #: report per-client dispatch splits without the pool keeping
        #: dead engines alive.
        self._clients: "weakref.WeakSet[PoolClient]" = weakref.WeakSet()
        self._client_seq = 0

    # -- lifecycle -------------------------------------------------------

    def client(self) -> "PoolClient":
        """A ref-counted handle for one engine; see :class:`PoolClient`."""
        return PoolClient(self)

    def _attach(self) -> None:
        with self._lock:
            self.refs += 1

    def _detach(self) -> None:
        """Drop one client ref; the last one out stops the executor."""
        with self._lock:
            self.refs = max(0, self.refs - 1)
            last = self.refs == 0
        if last:
            self.shutdown()

    def _ensure_executor(self) -> Optional[_FuturesExecutor]:
        with self._lock:
            return self._ensure_executor_locked()

    def _ensure_executor_locked(self) -> Optional[_FuturesExecutor]:
        if self._executor is not None or self.kind == "serial":
            return self._executor
        if self.kind == "process":
            try:
                # Fork keeps startup off the hot path on POSIX; workers
                # inherit the imported modules instead of re-importing.
                methods = multiprocessing.get_all_start_methods()
                ctx = (
                    multiprocessing.get_context("fork")
                    if "fork" in methods else None
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            except (OSError, PermissionError, ValueError):
                # No working process support here (restricted sandbox):
                # degrade to threads for the life of the pool.
                self.kind = "thread"
                self.fallbacks += 1
                self.demotions += 1
        if self._executor is None and self.kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        if self._executor is not None:
            self.pools_created += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the pool (idempotent); the next submit recreates it.

        The executor handoff happens under the lock so a shutdown
        racing a sibling's lazy creation always sees (and stops) the
        executor that creation stored, never a half-initialized one;
        the potentially slow OS teardown runs outside the lock.
        """
        with self._lock:
            executor = self._executor
            self._executor = None
            finalizer = self._finalizer
            self._finalizer = None
        if finalizer is not None:
            finalizer.detach()
        if executor is not None:
            executor.shutdown(wait=True)

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], payload: Any,
               units: int = 1):
        """Schedule ``fn(payload)``; returns a future-like object.

        Serial pools compute inline at submit time.  ``fn`` must be a
        module-level callable and ``payload`` picklable when the pool
        is process-based.  ``units`` is how many tiles the task
        carries (1 for solo tasks, the batch length for batch tasks).
        """
        executor = self._ensure_executor()
        if executor is None:
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
            return _InlineFuture(fn, payload)
        try:
            fut = executor.submit(fn, payload)
        except BrokenExecutor:
            # Dead workers discovered at submit time (OOM-killed child,
            # failed fork): demote the kind and stop the broken
            # executor — recover()'s machinery — but defer the inline
            # recomputation into the future, so a task-body exception
            # surfaces at result() like on every other path.
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
                self.fallbacks += 1
                if self.kind == "process":
                    self.kind = "thread"
                    self.demotions += 1
            self.shutdown()
            return _InlineFuture(fn, payload)
        except RuntimeError:
            # The executor could not take the task — stopped between
            # the fetch above and the submit (a sibling engine's
            # recover()/release() on a shared pool), or resource
            # exhaustion.  The task still runs — inline, counted as
            # inline and as a fallback so the degradation is visible —
            # instead of crashing the unlucky coordinator.
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
                self.fallbacks += 1
            return _InlineFuture(fn, payload)
        with self._lock:
            self.tasks_dispatched += 1
            self.tiles_dispatched += units
        return fut

    def run_inline(self, fn: Callable[[Any], Any], payload: Any,
                   units: int = 1):
        """Execute on the coordinator, counted separately from dispatch."""
        with self._lock:
            self.tasks_inline += 1
            self.tiles_inline += units
        return _InlineFuture(fn, payload)

    def recover(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        """Re-run a task whose pool died; future queries use threads.

        ``BrokenProcessPool`` poisons the whole executor, so the pool is
        torn down, the kind demoted to ``thread``, and the lost task
        recomputed inline — correctness over parallelism.  On a shared
        pool the demotion is deliberately global: every client's next
        query runs on threads rather than re-discovering the same
        broken process support one shard at a time.
        """
        with self._lock:
            self.fallbacks += 1
            if self.kind == "process":
                self.kind = "thread"
                self.demotions += 1
        self.shutdown()
        return fn(payload)

    # -- observability ---------------------------------------------------

    @property
    def started(self) -> bool:
        return self._executor is not None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            clients = sorted(self._clients, key=lambda c: c.client_id)
        return {
            "kind": self.kind,
            "workers": self.workers,
            "started": self.started,
            "refs": self.refs,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "tiles_dispatched": self.tiles_dispatched,
            "tiles_inline": self.tiles_inline,
            "pools_created": self.pools_created,
            "fallbacks": self.fallbacks,
            "demotions": self.demotions,
            "per_client": [
                {
                    "client_id": c.client_id,
                    "tasks_dispatched": c.tasks_dispatched,
                    "tasks_inline": c.tasks_inline,
                    "tiles_dispatched": c.tiles_dispatched,
                    "tiles_inline": c.tiles_inline,
                }
                for c in clients
            ],
        }


class PoolClient:
    """One engine's ref-counted handle on a (possibly shared) pool.

    The client forwards every submission to the underlying
    :class:`WorkerPool` and mirrors its accounting locally, so a
    sharded deployment can attribute dispatch traffic per shard while
    the pool keeps the totals (``sum(client counters) == pool
    counters`` whenever every submitter goes through a client).
    Gauges — kind, worker count, creation/fallback counts — are reads
    of the shared pool.

    :meth:`release` drops this client's ref; the pool's executor is
    stopped only when the last client lets go, which is what makes
    ``engine.close()`` safe on a pool the engine does not own.  A
    released client stays usable — the next submission quietly
    re-takes its ref (so a close -> query -> close drain cycle stops
    the lazily recreated executor again instead of leaking it) —
    preserving the engine contract that ``close()`` keeps the engine
    queryable.
    """

    __slots__ = ("pool", "client_id", "tasks_dispatched", "tasks_inline",
                 "tiles_dispatched", "tiles_inline", "_released",
                 "__weakref__")

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.tasks_dispatched = 0
        self.tasks_inline = 0
        self.tiles_dispatched = 0
        self.tiles_inline = 0
        self._released = False
        pool._attach()
        with pool._lock:
            self.client_id = pool._client_seq
            pool._client_seq += 1
            pool._clients.add(self)

    # -- shared gauges ---------------------------------------------------

    @property
    def kind(self) -> str:
        return self.pool.kind

    @property
    def workers(self) -> int:
        return self.pool.workers

    @property
    def started(self) -> bool:
        return self.pool.started

    @property
    def pools_created(self) -> int:
        return self.pool.pools_created

    @property
    def fallbacks(self) -> int:
        return self.pool.fallbacks

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], payload: Any,
               units: int = 1):
        self._reattach()
        fut = self.pool.submit(fn, payload, units)
        # Mirror the pool's own inline-vs-dispatch verdict (an inline
        # future means the pool had no executor for this task).
        if isinstance(fut, _InlineFuture):
            self.tasks_inline += 1
            self.tiles_inline += units
        else:
            self.tasks_dispatched += 1
            self.tiles_dispatched += units
        return fut

    def run_inline(self, fn: Callable[[Any], Any], payload: Any,
                   units: int = 1):
        self._reattach()
        self.tasks_inline += 1
        self.tiles_inline += units
        return self.pool.run_inline(fn, payload, units)

    def recover(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        return self.pool.recover(fn, payload)

    # -- lifecycle -------------------------------------------------------

    def _reattach(self) -> None:
        # A submission on a released client re-takes the ref, so the
        # executor this submission may lazily create is stopped by the
        # next release rather than leaked.
        if self._released:
            self._released = False
            self.pool._attach()

    def release(self) -> None:
        """Drop this client's ref (idempotent); last one stops the pool."""
        if self._released:
            return
        self._released = True
        self.pool._detach()

    def shutdown(self) -> None:
        """Alias for :meth:`release` (the pre-sharing engine verb)."""
        self.release()

    # -- observability ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Pool gauges with this client's dispatch counters."""
        snap = self.pool.snapshot()
        snap.update({
            "client_id": self.client_id,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "tiles_dispatched": self.tiles_dispatched,
            "tiles_inline": self.tiles_inline,
        })
        return snap


def _shutdown_executor(executor: _FuturesExecutor) -> None:
    # Module-level so the finalizer holds no reference to the pool.
    executor.shutdown(wait=False)
