"""The engine's persistent worker pool.

Before this module the partitioned executor constructed a fresh
``ThreadPoolExecutor`` inside every query and tore it down afterwards —
pool startup on the hot path, and thread workers that serialize on the
GIL while running a pure-Python sweep.  :class:`WorkerPool` inverts
both decisions:

* **one pool per engine**, created lazily on the first task that needs
  it and reused by every subsequent query (the plan's ``workers`` count
  is a scheduling hint for the simulated critical path, not a pool
  size);
* **process-based by default** (``kind="process"``), so partition
  sweeps run on separate interpreters and genuinely use the cores;
  ``kind="thread"`` keeps the shared-memory fallback and
  ``kind="serial"`` executes inline on the coordinator.

Tasks must therefore be shipped, not shared: the executor encodes tiles
as :class:`~repro.core.columnar.ColumnarTile` columns and workers
return plain ``(rid_a, rid_b)`` lists (see
:func:`repro.engine.executor.sweep_tile_task`).  Shipping has a real
cost — pickle both ways plus scheduling — so the pool degrades
gracefully: single-worker pools run inline, a broken process pool
(sandboxes without working semaphores, forks that die) falls back to
threads once and re-runs the lost task inline, and callers are expected
to keep tiny tasks on the coordinator (the executor's
``min_ship_rects`` threshold).

Submission is streaming: :meth:`submit` hands one task to the pool the
moment its partition is materialized, so coordinator-side
materialization of later partitions overlaps with worker sweeps of
earlier ones.  A task may carry several tiles (the executor's batch
shipping); ``units`` counts them, so the snapshot can report the
amortization factor (tiles per dispatched task) a skewed grid enjoys.

Since the sharded catalog, one pool may serve **several engines**.
Each engine talks to the pool through a :class:`PoolClient` — a
ref-counted handle with its own dispatch counters, so per-shard
activity stays attributable while the pool keeps the shared totals
(the invariant the differential tests assert: client counters sum to
the pool's).  The pool's OS resources are released when the *last*
client releases its handle; an engine closing its own handle can
therefore never tear the pool out from under a sibling shard.  Shared
counters are lock-guarded: two engines may submit from two coordinator
threads at once.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.core.columnar import ColumnarTile
from repro.engine.faults import FaultPlan, InjectedCrash, InjectedFault

try:  # pragma: no cover - stdlib, but gate like any optional backend
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

POOL_KINDS = ("process", "thread", "serial")


class DeadlineExceeded(RuntimeError):
    """A query ran past its deadline and was cancelled mid-flight."""


class CancelToken:
    """A picklable per-query cancellation token.

    The serving layer hands one of these to ``engine.execute`` as the
    ``cancel=`` callable; the executor appends it to every shipped
    payload so workers can observe cancellation at tile boundaries.
    Two sources of truth, checked on every call:

    * an absolute ``time.monotonic()`` deadline — CLOCK_MONOTONIC is
      system-wide on Linux, so the same instant is comparable in forked
      pool workers without any cross-process signalling;
    * an explicit :class:`threading.Event` flag for coordinator-side
      cancellation (tests, client disconnects).  The event does not
      cross the process boundary — pickling keeps only its *current*
      value — which is fine: worker-side checks exist to stop
      deadline-doomed work, and the deadline travels exactly.
    """

    __slots__ = ("deadline", "_flag")

    def __init__(self, deadline: Optional[float] = None) -> None:
        #: Absolute ``time.monotonic()`` instant; ``None`` = no deadline.
        self.deadline = deadline
        self._flag = threading.Event()

    def cancel(self) -> None:
        """Flag the token cancelled (coordinator-side only)."""
        self._flag.set()

    @property
    def cancelled(self) -> bool:
        if self._flag.is_set():
            return True
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def __call__(self) -> None:
        """Checkpoint: raise :class:`DeadlineExceeded` once cancelled."""
        if self.cancelled:
            raise DeadlineExceeded(
                "deadline passed at a scatter checkpoint"
            )

    # Events hold OS state and do not pickle; ship the flag's value.
    def __getstate__(self):
        return (self.deadline, self._flag.is_set())

    def __setstate__(self, state) -> None:
        self.deadline, flagged = state
        self._flag = threading.Event()
        if flagged:
            self._flag.set()


class ShmTileRef(NamedTuple):
    """A pointer to one packed tile inside a shared-memory segment.

    What crosses the process boundary instead of pickled column bytes:
    the worker attaches ``segment`` once (cached per process) and
    reconstructs the tile as memoryview casts over the mapping
    (:meth:`~repro.core.columnar.ColumnarTile.view_over`).
    """

    segment: str
    offset: int
    count: int


class _ShmSegment:
    """Coordinator-side record of one owned segment."""

    __slots__ = ("shm", "nbytes", "pins", "inflight", "unlinked",
                 "closed")

    def __init__(self, shm, nbytes: int) -> None:
        self.shm = shm
        self.nbytes = nbytes
        #: Live packed tiles pointing into this segment; each pin is
        #: released by the tile's finalizer.
        self.pins = 0
        #: Shipped-but-ungathered tasks referencing this segment; the
        #: executor decrements in its gather ``finally``.
        self.inflight = 0
        self.unlinked = False
        self.closed = False


class ShmSegments:
    """Lifecycle manager for the pool's shared-memory tile segments.

    One instance per :class:`WorkerPool` (so sharded engines on a
    shared pool also share segments).  Tiles are packed on first ship
    and *cached by tile identity*: re-shipping a cached artifact tile
    re-sends a :class:`ShmTileRef` instead of re-packing (and instead
    of re-pickling 40 bytes/rect).  A segment is unlinked and closed
    when its last pinned tile dies and no shipped task still references
    it; :meth:`reset` (pool shutdown, broken-pool demotion) unlinks
    everything immediately, deferring only the closes that in-flight
    recovery still needs.

    Any ``OSError`` at segment creation (no ``/dev/shm``, rlimit)
    disables the manager for the pool's lifetime — shipping falls back
    to pickling, which is always correct.
    """

    def __init__(self) -> None:
        # Reentrant: a tile finalizer (``_unpin``) can fire on this
        # thread mid-allocation while the lock is already held.
        self._lock = threading.RLock()
        self._segments: Dict[str, _ShmSegment] = {}
        #: id(tile) -> (ref, finalizer); identity-keyed so the cached
        #: artifact tiles the executor re-ships resolve to their
        #: existing segment.
        self._tile_refs: Dict[int, Tuple[ShmTileRef, object]] = {}
        self._seq = 0
        self.enabled = shared_memory is not None
        # -- counters (surfaced via WorkerPool.snapshot) ----------------
        self.segments_created = 0
        self.segments_released = 0
        self.bytes_packed = 0
        self.tile_refs_reused = 0
        self.disabled_errors = 0

    @property
    def open_segments(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._segments.values() if not s.unlinked
            )

    @property
    def mapped_segments(self) -> int:
        with self._lock:
            return sum(
                1 for s in self._segments.values() if not s.closed
            )

    # -- packing (coordinator) -------------------------------------------

    def refs_for(self, tiles: List[ColumnarTile]
                 ) -> Optional[List[ShmTileRef]]:
        """Shared-memory refs for ``tiles``, packing the misses.

        Cache hits (a tile already packed, verified by length) reuse
        their segment; all misses are packed together into **one** new
        segment — a batch of small tiles costs one ``shm_open``, not
        one per tile.  Returns ``None`` when shared memory is
        unavailable (caller ships pickled columns instead).
        """
        if not self.enabled:
            return None
        with self._lock:
            refs: List[Optional[ShmTileRef]] = []
            misses: List[Tuple[int, ColumnarTile]] = []
            for i, tile in enumerate(tiles):
                hit = self._tile_refs.get(id(tile))
                if hit is not None and hit[0].count == len(tile):
                    seg = self._segments.get(hit[0].segment)
                    if seg is not None and not seg.unlinked:
                        refs.append(hit[0])
                        self.tile_refs_reused += 1
                        continue
                refs.append(None)
                misses.append((i, tile))
            if misses:
                total = sum(t.nbytes for _, t in misses)
                seg_name = self._create_locked(max(1, total))
                if seg_name is None:
                    return None
                seg = self._segments[seg_name]
                offset = 0
                for i, tile in misses:
                    tile.pack_into(seg.shm.buf, offset)
                    ref = ShmTileRef(seg_name, offset, len(tile))
                    offset += tile.nbytes
                    refs[i] = ref
                    seg.pins += 1
                    fin = weakref.finalize(
                        tile, self._unpin, seg_name
                    )
                    fin.atexit = False
                    self._tile_refs[id(tile)] = (ref, fin)
                self.bytes_packed += total
        return refs  # type: ignore[return-value]

    def _create_locked(self, nbytes: int) -> Optional[str]:
        self._seq += 1
        name = f"repro-{os.getpid()}-{id(self):x}-{self._seq}"
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=nbytes, name=name
            )
        except (OSError, ValueError):
            # No usable shared memory here: disable for the pool's
            # lifetime and let every ship fall back to pickling.
            self.enabled = False
            self.disabled_errors += 1
            return None
        self._segments[shm.name] = _ShmSegment(shm, nbytes)
        self.segments_created += 1
        return shm.name

    # -- task / pin accounting -------------------------------------------

    def add_inflight(self, names) -> None:
        with self._lock:
            for name in names:
                seg = self._segments.get(name)
                if seg is not None:
                    seg.inflight += 1

    def task_done(self, names) -> None:
        """Gather-side release: one in-flight count per task per segment."""
        with self._lock:
            for name in names:
                seg = self._segments.get(name)
                if seg is not None:
                    seg.inflight = max(0, seg.inflight - 1)
                    self._maybe_free_locked(name, seg)

    def _unpin(self, name: str) -> None:
        with self._lock:
            seg = self._segments.get(name)
            if seg is not None:
                seg.pins = max(0, seg.pins - 1)
                self._maybe_free_locked(name, seg)

    def _maybe_free_locked(self, name: str, seg: _ShmSegment) -> None:
        if seg.pins > 0 or seg.inflight > 0:
            return
        self._unlink_locked(seg)
        self._close_locked(seg)
        if seg.closed:
            del self._segments[name]
            self.segments_released += 1

    def _unlink_locked(self, seg: _ShmSegment) -> None:
        if seg.unlinked:
            return
        _worker_forget(seg.shm.name)
        try:
            seg.shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        seg.unlinked = True

    def _close_locked(self, seg: _ShmSegment) -> None:
        if seg.closed:
            return
        _worker_forget(seg.shm.name)
        try:
            seg.shm.close()
        except BufferError:
            # A live view still points into the mapping (an inline
            # recovery's tile, typically).  The name is already
            # unlinked; leave the mapping to the process teardown.
            return
        seg.closed = True

    # -- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Pool-shutdown hygiene: unlink every segment now.

        Runs on normal pool shutdown *and* on broken-pool demotion, so
        a worker that died mid-task can never leak a named segment.
        Segments still referenced by in-flight tasks keep their name
        until the executor's gather calls :meth:`task_done` (their
        inline recovery resolves through this manager's mapping);
        everything else is unlinked and closed here.  The tile-ref
        cache is dropped wholesale — the next ship repacks fresh
        segments.
        """
        with self._lock:
            for _tid, (_ref, fin) in list(self._tile_refs.items()):
                fin.detach()
            self._tile_refs.clear()
            for name, seg in list(self._segments.items()):
                seg.pins = 0
                if seg.inflight > 0:
                    # Unlink is deferred to task_done so a live worker
                    # (or the inline recovery) can still attach/read.
                    continue
                self._unlink_locked(seg)
                self._close_locked(seg)
                if seg.closed:
                    del self._segments[name]
                    self.segments_released += 1

    # -- resolution (same-process: inline recovery, thread dispatch) -----

    def buffer_of(self, name: str):
        with self._lock:
            seg = self._segments.get(name)
            if seg is None or seg.closed:
                return None
            return seg.shm.buf

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            open_segments = sum(
                1 for s in self._segments.values() if not s.unlinked
            )
            return {
                "enabled": self.enabled,
                "segments_created": self.segments_created,
                "segments_released": self.segments_released,
                "segments_open": open_segments,
                "bytes_packed": self.bytes_packed,
                "tile_refs_reused": self.tile_refs_reused,
                "disabled_errors": self.disabled_errors,
            }


#: Worker-process attach cache: segment name -> SharedMemory.  Reset
#: when the pid changes (a forked worker inherits the parent's dict;
#: the inherited *objects* belong to the parent's registry and are
#: simply dropped).  Bounded implicitly by the coordinator's segment
#: count.
_WORKER_SEGMENTS: Dict[str, object] = {}
#: Worker-process view-tile cache keyed by ref, so repeat tasks on a
#: cached artifact segment reuse one tile object — which also makes
#: the decode-sorted memo effective across queries.
_WORKER_VIEWS: "OrderedDict[ShmTileRef, ColumnarTile]" = OrderedDict()
_WORKER_VIEW_CAP = 512
_WORKER_PID = -1
#: The pool whose manager serves same-process resolution (coordinator
#: inline runs, thread workers).  Weakly referenced; set at manager
#: creation.  Multiple pools in one process each register; resolution
#: walks them.
_LOCAL_MANAGERS: "weakref.WeakSet[ShmSegments]" = weakref.WeakSet()


def _worker_forget(name: str) -> None:
    """Drop a worker/coordinator cache entry for a dying segment."""
    _WORKER_SEGMENTS.pop(name, None)
    for ref in [r for r in _WORKER_VIEWS if r.segment == name]:
        _WORKER_VIEWS.pop(ref, None)


def resolve_shm_tile(ref: ShmTileRef) -> ColumnarTile:
    """Materialize a zero-copy tile view for ``ref``.

    Runs on pool workers (attach by name, cached per process) and on
    the coordinator (inline recovery, thread pools — resolved straight
    from the owning manager's mapping, no second attach).  Raises
    ``FileNotFoundError`` if the segment is gone, which only happens
    after the owning pool was reset — by then every such task has been
    recovered inline.
    """
    global _WORKER_PID
    pid = os.getpid()
    if pid != _WORKER_PID:
        # Fresh process (first call, or a forked child that inherited
        # the parent's caches): drop inherited entries, never close
        # them — the objects belong to the parent's lifecycle.
        _WORKER_SEGMENTS.clear()
        _WORKER_VIEWS.clear()
        _WORKER_PID = pid
    tile = _WORKER_VIEWS.get(ref)
    if tile is not None:
        _WORKER_VIEWS.move_to_end(ref)
        return tile
    buf = None
    for manager in list(_LOCAL_MANAGERS):
        buf = manager.buffer_of(ref.segment)
        if buf is not None:
            break
    if buf is None:
        shm = _WORKER_SEGMENTS.get(ref.segment)
        if shm is None:
            # Attaching would register the segment with the resource
            # tracker, which the forked workers *share* with the
            # coordinator — the coordinator's later unlink would then
            # race every worker's unregister on one tracker set
            # (bpo-39959).  The coordinator owns the lifecycle, so
            # worker attaches are simply never tracked.
            if resource_tracker is not None:
                orig_register = resource_tracker.register
                resource_tracker.register = lambda name, rtype: None
                try:
                    shm = shared_memory.SharedMemory(name=ref.segment)
                finally:
                    resource_tracker.register = orig_register
            else:
                shm = shared_memory.SharedMemory(name=ref.segment)
            _WORKER_SEGMENTS[ref.segment] = shm
        buf = shm.buf
    tile = ColumnarTile.view_over(buf, ref.offset, ref.count)
    _WORKER_VIEWS[ref] = tile
    while len(_WORKER_VIEWS) > _WORKER_VIEW_CAP:
        _WORKER_VIEWS.popitem(last=False)
    return tile


class _InlineFuture:
    """A completed-at-submit future for inline (serial) execution.

    The recovery slots exist because the executor's task shipper tags
    every *submitted* future with its function/payload for broken-pool
    replay — and submit() itself returns an ``_InlineFuture`` on the
    broken-executor and shutdown-race fallback paths, so it must accept
    the same tags as a real future.
    """

    __slots__ = ("_value", "_error", "_repro_fn", "_repro_payload",
                 "_repro_shm")

    def __init__(self, fn: Callable[[Any], Any], payload: Any) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        try:
            self._value = fn(payload)
        except BaseException as exc:  # re-raised at result() like a Future
            self._error = exc

    def result(self) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


def _faulted_task(wrapped):
    """Run one task under an injected fault (module-level: picklable).

    ``wrapped`` is ``(kind, delay_seconds, coordinator_pid, fn,
    payload)``.  ``crash`` hard-exits the hosting process when it is a
    real pool worker — the coordinator then observes a genuine
    ``BrokenProcessPool`` — and raises :class:`InjectedCrash` (a
    ``BrokenExecutor``) when the task runs on the coordinator itself
    (thread/serial pools, inline futures), which the executor's gather
    handles through the same broken-pool recovery path.
    """
    kind, delay, coordinator_pid, fn, payload = wrapped
    if kind == "slow":
        if delay > 0:
            time.sleep(delay)
        return fn(payload)
    if kind == "crash":
        if os.getpid() != coordinator_pid:
            os._exit(3)
        raise InjectedCrash("injected worker crash")
    raise InjectedFault("injected task exception")


class WorkerPool:
    """A long-lived process/thread pool shareable by several engines."""

    def __init__(self, workers: int = 1, kind: str = "process",
                 faults: Optional[FaultPlan] = None) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(
                f"pool kind must be one of {POOL_KINDS}, got {kind!r}"
            )
        #: Optional chaos schedule consulted at ``pool.submit`` /
        #: ``pool.task`` (see :mod:`repro.engine.faults`); None in
        #: production.
        self.faults = faults
        self.workers = max(1, workers)
        #: The requested kind; single-worker pools execute inline
        #: regardless (a pool of one only adds shipping overhead).
        self.kind = kind if self.workers > 1 else "serial"
        self._executor: Optional[_FuturesExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._lock = threading.Lock()
        #: Live client handles (see :meth:`client`); the pool's executor
        #: is torn down when the count returns to zero.
        self.refs = 0
        # -- stats (surfaced via snapshot / engine metrics) -------------
        self.tasks_dispatched = 0
        self.tasks_inline = 0
        self.tiles_dispatched = 0
        self.tiles_inline = 0
        self.pools_created = 0
        self.fallbacks = 0
        #: process->thread kind demotions (a subset of ``fallbacks``:
        #: only the fallbacks that permanently changed the pool kind).
        self.demotions = 0
        #: Shipped tasks reclaimed by deadline cancellation: futures
        #: cancelled before a worker picked them up plus in-flight
        #: tasks that observed the token at a tile boundary.
        self.pool_tasks_cancelled = 0
        #: Every client ever attached, weakly held, so the snapshot can
        #: report per-client dispatch splits without the pool keeping
        #: dead engines alive.
        self._clients: "weakref.WeakSet[PoolClient]" = weakref.WeakSet()
        self._client_seq = 0
        #: Shared-memory segment manager for zero-copy tile shipping.
        #: Shared by every client on this pool; registered for
        #: same-process ref resolution (inline recovery, threads).
        self.shm = ShmSegments()
        _LOCAL_MANAGERS.add(self.shm)

    # -- lifecycle -------------------------------------------------------

    def client(self) -> "PoolClient":
        """A ref-counted handle for one engine; see :class:`PoolClient`."""
        return PoolClient(self)

    def _attach(self) -> None:
        with self._lock:
            self.refs += 1

    def _detach(self) -> None:
        """Drop one client ref; the last one out stops the executor."""
        with self._lock:
            self.refs = max(0, self.refs - 1)
            last = self.refs == 0
        if last:
            self.shutdown()

    def prestart(self) -> None:
        """Boot the workers now, off the serving path (idempotent).

        A process pool forks lazily — executor on first submit, one
        worker per queued task — which lands the whole startup cost
        (fork x workers, pipe setup) on the first partitioned query.
        Serving engines call this from ``prepare()`` so measured
        traffic starts against a running pool.  One short sleep per
        worker occupies every slot, forcing the executor to its full
        size; failures here are ignored — a pool that cannot start
        will demote itself on the first real submit, as before.
        """
        if self.kind == "serial":
            return
        executor = self._ensure_executor()
        if executor is None or self.kind != "process":
            return
        try:
            futures = [
                executor.submit(time.sleep, 0.005)
                for _ in range(self.workers)
            ]
            for fut in futures:
                fut.result(timeout=30)
        except Exception:
            pass

    def _ensure_executor(self) -> Optional[_FuturesExecutor]:
        with self._lock:
            return self._ensure_executor_locked()

    def _ensure_executor_locked(self) -> Optional[_FuturesExecutor]:
        if self._executor is not None or self.kind == "serial":
            return self._executor
        if self.kind == "process":
            try:
                # Fork keeps startup off the hot path on POSIX; workers
                # inherit the imported modules instead of re-importing.
                methods = multiprocessing.get_all_start_methods()
                ctx = (
                    multiprocessing.get_context("fork")
                    if "fork" in methods else None
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            except (OSError, PermissionError, ValueError):
                # No working process support here (restricted sandbox):
                # degrade to threads for the life of the pool.
                self.kind = "thread"
                self.fallbacks += 1
                self.demotions += 1
        if self._executor is None and self.kind == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        if self._executor is not None:
            self.pools_created += 1
            self._finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def shutdown(self) -> None:
        """Stop the pool (idempotent); the next submit recreates it.

        The executor handoff happens under the lock so a shutdown
        racing a sibling's lazy creation always sees (and stops) the
        executor that creation stored, never a half-initialized one;
        the potentially slow OS teardown runs outside the lock.
        """
        with self._lock:
            executor = self._executor
            self._executor = None
            finalizer = self._finalizer
            self._finalizer = None
        if finalizer is not None:
            finalizer.detach()
        if executor is not None:
            executor.shutdown(wait=True)
        # Shared-memory hygiene rides every shutdown path — normal
        # close, broken-pool demotion, submit-time fallback — so a
        # dead worker can never leave a named segment behind.
        self.shm.reset()

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], payload: Any,
               units: int = 1):
        """Schedule ``fn(payload)``; returns a future-like object.

        Serial pools compute inline at submit time.  ``fn`` must be a
        module-level callable and ``payload`` picklable when the pool
        is process-based.  ``units`` is how many tiles the task
        carries (1 for solo tasks, the batch length for batch tasks).
        """
        if self.faults is not None:
            rule = self.faults.fire(
                "pool.submit", fn=getattr(fn, "__name__", str(fn))
            )
            if rule is not None and rule.kind == "break":
                # Behave exactly like a broken executor discovered at
                # submit time: demote, tear down, recompute inline.
                with self._lock:
                    self.tasks_inline += 1
                    self.tiles_inline += units
                    self.fallbacks += 1
                    if self.kind == "process":
                        self.kind = "thread"
                        self.demotions += 1
                self.shutdown()
                return _InlineFuture(fn, payload)
            rule = self.faults.fire(
                "pool.task", fn=getattr(fn, "__name__", str(fn))
            )
            if rule is not None:
                # The wrapper travels to the worker; the executor's
                # recovery tags keep the *caller's* fn/payload, so an
                # inline replay of a crashed task is fault-free.
                payload = (rule.kind, rule.delay_seconds, os.getpid(),
                           fn, payload)
                fn = _faulted_task
        executor = self._ensure_executor()
        if executor is None:
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
            return _InlineFuture(fn, payload)
        try:
            fut = executor.submit(fn, payload)
        except BrokenExecutor:
            # Dead workers discovered at submit time (OOM-killed child,
            # failed fork): demote the kind and stop the broken
            # executor — recover()'s machinery — but defer the inline
            # recomputation into the future, so a task-body exception
            # surfaces at result() like on every other path.
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
                self.fallbacks += 1
                if self.kind == "process":
                    self.kind = "thread"
                    self.demotions += 1
            self.shutdown()
            return _InlineFuture(fn, payload)
        except RuntimeError:
            # The executor could not take the task — stopped between
            # the fetch above and the submit (a sibling engine's
            # recover()/release() on a shared pool), or resource
            # exhaustion.  The task still runs — inline, counted as
            # inline and as a fallback so the degradation is visible —
            # instead of crashing the unlucky coordinator.
            with self._lock:
                self.tasks_inline += 1
                self.tiles_inline += units
                self.fallbacks += 1
            return _InlineFuture(fn, payload)
        with self._lock:
            self.tasks_dispatched += 1
            self.tiles_dispatched += units
        return fut

    def run_inline(self, fn: Callable[[Any], Any], payload: Any,
                   units: int = 1):
        """Execute on the coordinator, counted separately from dispatch."""
        with self._lock:
            self.tasks_inline += 1
            self.tiles_inline += units
        return _InlineFuture(fn, payload)

    def recover(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        """Re-run a task whose pool died; future queries use threads.

        ``BrokenProcessPool`` poisons the whole executor, so the pool is
        torn down, the kind demoted to ``thread``, and the lost task
        recomputed inline — correctness over parallelism.  On a shared
        pool the demotion is deliberately global: every client's next
        query runs on threads rather than re-discovering the same
        broken process support one shard at a time.
        """
        with self._lock:
            self.fallbacks += 1
            if self.kind == "process":
                self.kind = "thread"
                self.demotions += 1
        self.shutdown()
        return fn(payload)

    def note_cancelled(self, n: int = 1) -> None:
        """Count ``n`` shipped tasks reclaimed by cancellation."""
        if n <= 0:
            return
        with self._lock:
            self.pool_tasks_cancelled += n

    # -- observability ---------------------------------------------------

    @property
    def started(self) -> bool:
        return self._executor is not None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            clients = sorted(self._clients, key=lambda c: c.client_id)
        return {
            "kind": self.kind,
            "workers": self.workers,
            "started": self.started,
            "refs": self.refs,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "tiles_dispatched": self.tiles_dispatched,
            "tiles_inline": self.tiles_inline,
            "pools_created": self.pools_created,
            "fallbacks": self.fallbacks,
            "demotions": self.demotions,
            "pool_tasks_cancelled": self.pool_tasks_cancelled,
            "faults": (
                self.faults.snapshot()
                if self.faults is not None else None
            ),
            "shm": self.shm.snapshot(),
            "per_client": [
                {
                    "client_id": c.client_id,
                    "tasks_dispatched": c.tasks_dispatched,
                    "tasks_inline": c.tasks_inline,
                    "tiles_dispatched": c.tiles_dispatched,
                    "tiles_inline": c.tiles_inline,
                }
                for c in clients
            ],
        }


class PoolClient:
    """One engine's ref-counted handle on a (possibly shared) pool.

    The client forwards every submission to the underlying
    :class:`WorkerPool` and mirrors its accounting locally, so a
    sharded deployment can attribute dispatch traffic per shard while
    the pool keeps the totals (``sum(client counters) == pool
    counters`` whenever every submitter goes through a client).
    Gauges — kind, worker count, creation/fallback counts — are reads
    of the shared pool.

    :meth:`release` drops this client's ref; the pool's executor is
    stopped only when the last client lets go, which is what makes
    ``engine.close()`` safe on a pool the engine does not own.  A
    released client stays usable — the next submission quietly
    re-takes its ref (so a close -> query -> close drain cycle stops
    the lazily recreated executor again instead of leaking it) —
    preserving the engine contract that ``close()`` keeps the engine
    queryable.
    """

    __slots__ = ("pool", "client_id", "tasks_dispatched", "tasks_inline",
                 "tiles_dispatched", "tiles_inline", "_released",
                 "__weakref__")

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.tasks_dispatched = 0
        self.tasks_inline = 0
        self.tiles_dispatched = 0
        self.tiles_inline = 0
        self._released = False
        pool._attach()
        with pool._lock:
            self.client_id = pool._client_seq
            pool._client_seq += 1
            pool._clients.add(self)

    # -- shared gauges ---------------------------------------------------

    @property
    def kind(self) -> str:
        return self.pool.kind

    @property
    def workers(self) -> int:
        return self.pool.workers

    @property
    def started(self) -> bool:
        return self.pool.started

    @property
    def shm(self) -> ShmSegments:
        return self.pool.shm

    def prestart(self) -> None:
        self.pool.prestart()

    @property
    def pools_created(self) -> int:
        return self.pool.pools_created

    @property
    def fallbacks(self) -> int:
        return self.pool.fallbacks

    # -- submission ------------------------------------------------------

    def submit(self, fn: Callable[[Any], Any], payload: Any,
               units: int = 1):
        self._reattach()
        fut = self.pool.submit(fn, payload, units)
        # Mirror the pool's own inline-vs-dispatch verdict (an inline
        # future means the pool had no executor for this task).
        if isinstance(fut, _InlineFuture):
            self.tasks_inline += 1
            self.tiles_inline += units
        else:
            self.tasks_dispatched += 1
            self.tiles_dispatched += units
        return fut

    def run_inline(self, fn: Callable[[Any], Any], payload: Any,
                   units: int = 1):
        self._reattach()
        self.tasks_inline += 1
        self.tiles_inline += units
        return self.pool.run_inline(fn, payload, units)

    def recover(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        return self.pool.recover(fn, payload)

    def note_cancelled(self, n: int = 1) -> None:
        self.pool.note_cancelled(n)

    # -- lifecycle -------------------------------------------------------

    def _reattach(self) -> None:
        # A submission on a released client re-takes the ref, so the
        # executor this submission may lazily create is stopped by the
        # next release rather than leaked.
        if self._released:
            self._released = False
            self.pool._attach()

    def release(self) -> None:
        """Drop this client's ref (idempotent); last one stops the pool."""
        if self._released:
            return
        self._released = True
        self.pool._detach()

    def shutdown(self) -> None:
        """Alias for :meth:`release` (the pre-sharing engine verb)."""
        self.release()

    # -- observability ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Pool gauges with this client's dispatch counters."""
        snap = self.pool.snapshot()
        snap.update({
            "client_id": self.client_id,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inline": self.tasks_inline,
            "tiles_dispatched": self.tiles_dispatched,
            "tiles_inline": self.tiles_inline,
        })
        return snap


def _shutdown_executor(executor: _FuturesExecutor) -> None:
    # Module-level so the finalizer holds no reference to the pool.
    executor.shutdown(wait=False)
