"""Synthetic serving workloads and the serve-bench harness.

A production engine sees a *mix*: dense nationwide overlays, localized
window joins (the Section 6.3 scenario), and plenty of exact repeats —
dashboards refresh the same query.  :func:`make_workload` generates
such a mix deterministically from a seed; :func:`run_workload` replays
it against a :class:`~repro.engine.engine.SpatialQueryEngine` — or a
:class:`~repro.engine.shard.ShardedEngine`, whose aggregate facades
expose the same serving surface — and returns the serving report that
both the ``serve-bench`` CLI subcommand and
``benchmarks/bench_engine_throughput.py`` print.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Dict, List, Optional, Union

from repro.data.datasets import build_dataset
from repro.engine.engine import SpatialQueryEngine
from repro.engine.faults import FaultPlan
from repro.engine.query import Query
from repro.engine.serve import ServingFrontend
from repro.engine.shard import ShardedEngine
from repro.geom.rect import Rect
from repro.sim.machines import MACHINE_3, MachineSpec
from repro.sim.scale import ScaleConfig

#: Anything run_workload can serve against.
ServingEngine = Union[SpatialQueryEngine, ShardedEngine]

#: Workload mix: share of queries that repeat an earlier query verbatim
#: (cache-hit traffic), and share of localized window queries among the
#: fresh ones.
REPEAT_SHARE = 0.4
WINDOW_SHARE = 0.6


def engine_for_dataset(
    dataset: str,
    scale: ScaleConfig,
    machine: MachineSpec = MACHINE_3,
    workers: int = 1,
    cache_capacity: int = 64,
    memory_bytes: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    pool_kind: str = "process",
    min_ship_rects: Optional[int] = None,
    artifact_cache_bytes: Optional[int] = None,
    artifact_dir: Optional[str] = None,
    tile_batch_bytes: Optional[int] = None,
    trace: bool = False,
    slow_log_capacity: Optional[int] = None,
    slow_threshold_seconds: float = 0.0,
    kernel: str = "auto",
    shm_min_bytes: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> SpatialQueryEngine:
    """An engine with one Table 2 dataset registered as two relations.

    ``memory_bytes`` overrides the engine's memory budget (default:
    the scaled paper budget); ``cache_bytes`` bounds the result cache
    in bytes.  ``pool_kind``/``min_ship_rects``/``tile_batch_bytes``
    configure the persistent worker pool and its batch shipping,
    ``artifact_cache_bytes`` caps (or with 0 disables) the artifact
    cache, and ``artifact_dir`` persists artifacts to a sidecar
    directory that survives engine restarts.  ``kernel`` selects the
    sweep implementation and ``shm_min_bytes`` tunes (or with a
    negative value disables) shared-memory tile shipping.
    """
    ds = build_dataset(dataset, scale)
    extra = {}
    if min_ship_rects is not None:
        extra["min_ship_rects"] = min_ship_rects
    if tile_batch_bytes is not None:
        extra["tile_batch_bytes"] = tile_batch_bytes
    engine = SpatialQueryEngine(
        kernel=kernel, shm_min_bytes=shm_min_bytes,
        scale=scale, machine=machine, workers=workers,
        cache_capacity=cache_capacity,
        memory_bytes=memory_bytes, cache_bytes=cache_bytes,
        pool_kind=pool_kind,
        artifact_cache_bytes=artifact_cache_bytes,
        artifact_dir=artifact_dir,
        faults=faults,
        trace=trace,
        slow_log_capacity=slow_log_capacity,
        slow_threshold_seconds=slow_threshold_seconds,
        **extra,
    )
    engine.register("roads", ds.roads, universe=ds.universe)
    engine.register("hydro", ds.hydro, universe=ds.universe)
    engine.prepare()
    return engine


def sharded_engine_for_dataset(
    dataset: str,
    scale: ScaleConfig,
    shards: int,
    machine: MachineSpec = MACHINE_3,
    workers: int = 1,
    cache_capacity: int = 64,
    memory_bytes: Optional[int] = None,
    cache_bytes: Optional[int] = None,
    pool_kind: str = "process",
    min_ship_rects: Optional[int] = None,
    artifact_cache_bytes: Optional[int] = None,
    tile_batch_bytes: Optional[int] = None,
    trace: bool = False,
    slow_log_capacity: Optional[int] = None,
    slow_threshold_seconds: float = 0.0,
    kernel: str = "auto",
    shm_min_bytes: Optional[int] = None,
    replicas: int = 1,
    artifact_dir: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    result_store_bytes: Optional[int] = None,
    scatter_threads: Optional[int] = None,
) -> ShardedEngine:
    """Like :func:`engine_for_dataset`, but scattered over N shards.

    ``memory_bytes`` here is the *total* budget, sliced evenly across
    the shards; all shards share one worker pool of ``workers``
    workers.  ``replicas`` places that many identical engines on every
    shard (scatter fails over between them), ``artifact_dir`` persists
    per-replica artifacts and the shared result store under one root,
    and ``faults`` threads a :class:`~repro.engine.faults.FaultPlan`
    through the pool, the artifact stores and shard execution.
    """
    ds = build_dataset(dataset, scale)
    extra = {}
    if min_ship_rects is not None:
        extra["min_ship_rects"] = min_ship_rects
    if tile_batch_bytes is not None:
        extra["tile_batch_bytes"] = tile_batch_bytes
    engine = ShardedEngine(
        kernel=kernel, shm_min_bytes=shm_min_bytes,
        shards=shards, scale=scale, machine=machine, workers=workers,
        cache_capacity=cache_capacity,
        memory_bytes=memory_bytes, cache_bytes=cache_bytes,
        pool_kind=pool_kind,
        artifact_cache_bytes=artifact_cache_bytes,
        replicas=replicas,
        artifact_dir=artifact_dir,
        faults=faults,
        result_store_bytes=result_store_bytes,
        scatter_threads=scatter_threads,
        trace=trace,
        slow_log_capacity=slow_log_capacity,
        slow_threshold_seconds=slow_threshold_seconds,
        **extra,
    )
    engine.register("roads", ds.roads, universe=ds.universe)
    engine.register("hydro", ds.hydro, universe=ds.universe)
    engine.prepare()
    return engine


def make_workload(universe: Rect, n_queries: int,
                  seed: int = 7) -> List[Query]:
    """A deterministic mixed stream of pairwise queries.

    Roughly ``REPEAT_SHARE`` of the queries repeat a previously issued
    query (eligible for the result cache); fresh queries are windowed
    localized joins with ``WINDOW_SHARE`` probability, full overlays
    otherwise.
    """
    rng = random.Random(seed)
    queries: List[Query] = []
    for _ in range(n_queries):
        if queries and rng.random() < REPEAT_SHARE:
            queries.append(rng.choice(queries))
            continue
        if rng.random() < WINDOW_SHARE:
            # A window covering a few percent of the universe, placed
            # uniformly — the localized-join regime where indexes win.
            w = (universe.xhi - universe.xlo) * rng.uniform(0.08, 0.25)
            h = (universe.yhi - universe.ylo) * rng.uniform(0.08, 0.25)
            x = rng.uniform(universe.xlo, universe.xhi - w)
            y = rng.uniform(universe.ylo, universe.yhi - h)
            window: Optional[Rect] = Rect(x, x + w, y, y + h, 0)
        else:
            window = None
        queries.append(Query(relations=("roads", "hydro"), window=window))
    return queries


def _quantile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_workload(engine: ServingEngine,
                 queries: List[Query]) -> Dict[str, object]:
    """Serve ``queries`` and summarize the engine's behaviour.

    The report contains real wall seconds, simulated engine seconds
    (the machine-trio-faithful cost of serving), throughput against
    both clocks, per-query latency percentiles, pool and
    artifact-cache activity, and the full metrics snapshot.  Every
    per-run figure — clocks, spills, latencies, pool/artifact
    counters — is a delta over *this* workload, not the engine's
    lifetime (the engine may have served earlier traffic); only
    gauges (pool kind/size, artifact entries/bytes, the snapshot) and
    the budget snapshot reflect current engine state.
    """
    sim_before = engine.metrics.sim_wall_seconds
    spilled_before = engine.metrics.spilled_rects
    pool_before = engine.worker_pool.snapshot()
    art_before = engine.artifacts.snapshot()
    latencies: List[float] = []
    t0 = time.perf_counter()
    total_pairs = 0
    for q in queries:
        out = engine.execute(q)
        total_pairs += out.result.n_pairs
        latencies.append(out.wall_seconds)
    wall = time.perf_counter() - t0
    snap = engine.metrics_snapshot()
    sim_wall = engine.metrics.sim_wall_seconds - sim_before
    pool = engine.worker_pool.snapshot()
    for key in ("tasks_dispatched", "tasks_inline", "tiles_dispatched",
                "tiles_inline", "pools_created", "fallbacks",
                "demotions", "pool_tasks_cancelled"):
        pool[key] -= pool_before[key]
    artifacts = engine.artifacts.snapshot()
    for key in ("hits", "misses", "puts", "evictions", "invalidations",
                "rejections", "disk_restores", "disk_restore_bytes"):
        artifacts[key] -= art_before[key]
    probes = artifacts["hits"] + artifacts["misses"]
    artifacts["hit_rate"] = artifacts["hits"] / probes if probes else 0.0
    latencies.sort()
    last_trace = getattr(engine, "last_trace", None)
    slow_log = getattr(engine, "slow_log", None)
    report: Dict[str, object] = {
        "queries": len(queries),
        "pairs_returned": total_pairs,
        "wall_seconds": wall,
        "sim_wall_seconds": sim_wall,
        "queries_per_sec_wall": len(queries) / wall if wall > 0 else 0.0,
        "queries_per_sec_sim": (
            len(queries) / sim_wall if sim_wall > 0 else float("inf")
        ),
        "spilled_rects": engine.metrics.spilled_rects - spilled_before,
        "budget": engine.budget.snapshot(),
        "pool": pool,
        "artifacts": artifacts,
        "latency_p50_seconds": _quantile(latencies, 0.50),
        "latency_p95_seconds": _quantile(latencies, 0.95),
        "latency_max_seconds": latencies[-1] if latencies else 0.0,
        "metrics": snap,
    }
    if last_trace is not None:
        report["trace"] = last_trace.to_dict()
    if slow_log is not None:
        report["slow_queries"] = slow_log.entries()
    return report


def assign_classes(n_queries: int, batch_share: float = 0.25,
                   seed: int = 11) -> List[str]:
    """A deterministic interactive/batch class per query."""
    rng = random.Random(seed)
    return ["batch" if rng.random() < batch_share else "interactive"
            for _ in range(n_queries)]


def run_concurrent_workload(
    engine: ServingEngine,
    queries: List[Query],
    clients: int = 8,
    batch_share: float = 0.25,
    deadline_seconds: Optional[float] = None,
    open_loop_qps: Optional[float] = None,
    queue_depth: Optional[int] = None,
    admission_bytes: Optional[int] = None,
    grant_bytes: Optional[Dict[str, int]] = None,
    max_concurrency: Optional[int] = None,
    aging_seconds: Optional[float] = None,
    adaptive_grants: bool = False,
    faults: Optional[FaultPlan] = None,
    seed: int = 11,
) -> Dict[str, object]:
    """Serve ``queries`` through a concurrent front-end and report.

    The concurrent sibling of :func:`run_workload`: the same report
    keys (so the bench JSON rows stay comparable), measured through a
    :class:`~repro.engine.serve.ServingFrontend` driven by ``clients``
    concurrent callers.  **Closed loop** (the default): each client
    pulls the next unserved query as soon as its previous one resolves
    — aggregate throughput under sustained concurrency.  **Open loop**
    (``open_loop_qps``): queries arrive on a fixed schedule regardless
    of completions — the saturation regime where arrival rate exceeds
    service rate and the front-end must shed rather than queue without
    bound.

    Queries are deterministically classed interactive/batch
    (``batch_share``, ``seed``); latency percentiles cover *served*
    queries only, while shed/expired/rejected/error fates are counted
    in the ``serve`` block.  ``pairs_returned`` likewise sums served
    queries — differential checks against a serial run must compare
    runs where every query was served.
    """
    classes = assign_classes(len(queries), batch_share, seed)
    fe_kwargs: Dict[str, object] = {"faults": faults}
    if queue_depth is not None:
        fe_kwargs["queue_depth"] = queue_depth
    if admission_bytes is not None:
        fe_kwargs["admission_bytes"] = admission_bytes
    if grant_bytes is not None:
        fe_kwargs["grant_bytes"] = grant_bytes
    if aging_seconds is not None:
        fe_kwargs["aging_seconds"] = aging_seconds
    if adaptive_grants:
        fe_kwargs["adaptive_grants"] = True
    fe_kwargs["max_concurrency"] = (
        max_concurrency if max_concurrency is not None else max(1, clients)
    )
    frontend = ServingFrontend(engine, **fe_kwargs)

    async def closed_loop() -> List[object]:
        responses: List[object] = [None] * len(queries)
        cursor = {"next": 0}

        async def client() -> None:
            while cursor["next"] < len(queries):
                i = cursor["next"]
                cursor["next"] = i + 1
                responses[i] = await frontend.submit(
                    queries[i], classes[i], deadline_seconds
                )

        await asyncio.gather(*(client() for _ in range(clients)))
        return responses

    async def open_loop() -> List[object]:
        interval = 1.0 / open_loop_qps
        # One shared schedule origin: each arrival sleeps to an
        # absolute offset from t0 rather than its own coroutine start,
        # so scheduling jitter between coroutine launches cannot drift
        # the whole arrival process late (open-loop means the schedule
        # is the schedule).
        loop = asyncio.get_running_loop()
        t0 = loop.time()

        async def one(i: int) -> object:
            await asyncio.sleep(max(0.0, t0 + i * interval - loop.time()))
            return await frontend.submit(
                queries[i], classes[i], deadline_seconds
            )

        return await asyncio.gather(
            *(one(i) for i in range(len(queries)))
        )

    sim_before = engine.metrics.sim_wall_seconds
    spilled_before = engine.metrics.spilled_rects
    pool_before = engine.worker_pool.snapshot()
    art_before = engine.artifacts.snapshot()
    t0 = time.perf_counter()
    try:
        responses = asyncio.run(
            open_loop() if open_loop_qps else closed_loop()
        )
    finally:
        frontend.close()
    wall = time.perf_counter() - t0
    served = [r for r in responses if r.ok]
    latencies = sorted(r.wall_seconds for r in served)
    total_pairs = sum(r.pairs or 0 for r in served)
    sim_wall = engine.metrics.sim_wall_seconds - sim_before
    pool = engine.worker_pool.snapshot()
    for key in ("tasks_dispatched", "tasks_inline", "tiles_dispatched",
                "tiles_inline", "pools_created", "fallbacks",
                "demotions", "pool_tasks_cancelled"):
        pool[key] -= pool_before[key]
    artifacts = engine.artifacts.snapshot()
    for key in ("hits", "misses", "puts", "evictions", "invalidations",
                "rejections", "disk_restores", "disk_restore_bytes"):
        artifacts[key] -= art_before[key]
    probes = artifacts["hits"] + artifacts["misses"]
    artifacts["hit_rate"] = artifacts["hits"] / probes if probes else 0.0
    serve_snap = frontend.snapshot()
    report: Dict[str, object] = {
        "queries": len(queries),
        "served": len(served),
        "clients": clients,
        "open_loop_qps": open_loop_qps,
        "pairs_returned": total_pairs,
        "wall_seconds": wall,
        "sim_wall_seconds": sim_wall,
        "queries_per_sec_wall": (
            len(served) / wall if wall > 0 else 0.0
        ),
        "queries_per_sec_sim": (
            len(served) / sim_wall if sim_wall > 0 else float("inf")
        ),
        "spilled_rects": engine.metrics.spilled_rects - spilled_before,
        "budget": engine.budget.snapshot(),
        "pool": pool,
        "artifacts": artifacts,
        "latency_p50_seconds": _quantile(latencies, 0.50),
        "latency_p95_seconds": _quantile(latencies, 0.95),
        "latency_max_seconds": latencies[-1] if latencies else 0.0,
        "serve": serve_snap,
        "metrics": frontend.metrics_snapshot(),
    }
    return report
