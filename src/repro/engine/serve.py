"""Concurrent serving front-end: admission queueing, deadlines, shedding.

The engines below this layer answer one blocking call at a time and
protect themselves with a hard gate: a query whose minimum grant cannot
fit raises :class:`~repro.engine.resources.AdmissionError`.  That is
the right contract for a library call and the wrong one for a server —
under a traffic burst, "refuse anything that does not fit right now"
rejects work the deployment could have served a few milliseconds later.

:class:`ServingFrontend` turns the blocking engine into a bounded
concurrent service with three production behaviours:

**Admission queue.**  Every query declares a class (``interactive`` or
``batch``) and is admitted by taking a per-class byte grant from a
serve-level :class:`~repro.engine.resources.ResourceBudget` via
``try_acquire`` — the refusal-capable sibling of ``acquire``.  When the
grant is not free the query *parks* in a FIFO queue instead of failing;
each released grant pumps the queue head.  The queue is bounded: past
``queue_depth`` the front-end load-sheds, evicting the **oldest batch**
waiter first (batch traffic absorbs overload so dashboards stay up) and
only shedding interactive work when no batch waiter is left.

**Deadlines.**  A query may carry a deadline.  While parked it expires
via the queue future's timeout; once running, a cooperative cancel
checkpoint (threaded into ``ShardedEngine.execute``'s entry, per-shard
dispatch and gather boundaries) raises :class:`DeadlineExceeded` between
shard sub-queries, so an expired query frees its grant and its pool
slots instead of running to completion.  Expiry never corrupts shared
state — checkpoints only fire between whole sub-queries.

**Graceful degradation.**  Overload produces ``shed`` and ``expired``
responses with correct counters, never unbounded queue growth and never
a surprise ``AdmissionError`` (oversized singletons still get a clean
``rejected``).  Every outcome is a first-class state in
:meth:`ServingFrontend.snapshot`, which rides the engine's metrics
snapshot into the Prometheus/JSON exporters unchanged.

The fault plan participates: ``serve.queue`` rules fire at admission
(``exception`` fails the admission, ``slow`` delays the grant attempt)
and ``serve.deadline`` rules fire at dispatch (``exception`` forces the
deadline-expired path, ``slow`` burns queue-to-dispatch time), so chaos
tests cover the queue and deadline paths the same way they cover
replica failover.

:func:`serve_http` exposes the front-end over a thin stdlib HTTP
endpoint (``POST /query``, ``GET /metrics``, ``GET /healthz``) — no
framework dependency, one connection per request.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.engine import EngineResult
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.query import Query
from repro.engine.resources import AdmissionError, ResourceBudget
from repro.geom.rect import Rect

QUERY_CLASSES = ("interactive", "batch")

#: Admission charge per in-flight query, by class.  Batch queries are
#: billed more: they tend to be full overlays, and a bigger charge
#: means fewer of them run concurrently — the budget itself becomes
#: the concurrency limiter for heavy traffic.
DEFAULT_GRANT_BYTES = {
    "interactive": 1 << 20,
    "batch": 4 << 20,
}

#: Default admission budget: eight interactive grants' worth.
DEFAULT_ADMISSION_BYTES = 8 << 20

DEFAULT_QUEUE_DEPTH = 64

#: Threads executing blocking engine calls (the true in-flight cap).
DEFAULT_MAX_CONCURRENCY = 8


class DeadlineExceeded(RuntimeError):
    """Raised at a cooperative checkpoint once a query's deadline passed."""


@dataclass
class ServeResponse:
    """One query's fate at the front-end.

    ``status`` is one of ``ok`` (served; ``degraded`` marks a reply
    that needed replica failover), ``shed`` (evicted from a full
    queue), ``expired`` (deadline passed while queued or running),
    ``rejected`` (could never be admitted — grant larger than the
    whole budget), or ``error`` (the engine or an injected fault
    raised).
    """

    status: str
    query_class: str
    wall_seconds: float
    queue_seconds: float
    pairs: Optional[int] = None
    degraded: bool = False
    error: Optional[str] = None
    result: Optional[EngineResult] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "status": self.status,
            "class": self.query_class,
            "wall_ms": round(self.wall_seconds * 1e3, 3),
            "queue_ms": round(self.queue_seconds * 1e3, 3),
        }
        if self.pairs is not None:
            body["pairs"] = self.pairs
        if self.degraded:
            body["degraded"] = True
        if self.error is not None:
            body["error"] = self.error
        return body


class _Waiter:
    """One parked query: its class and the future its grant arrives on."""

    __slots__ = ("query_class", "nbytes", "future", "enqueued_at")

    def __init__(self, query_class: str, nbytes: int,
                 future: "asyncio.Future", enqueued_at: float) -> None:
        self.query_class = query_class
        self.nbytes = nbytes
        self.future = future
        self.enqueued_at = enqueued_at


class ServingFrontend:
    """Bounded concurrent admission over one (sharded) engine.

    All queue and counter state is owned by the event loop — `submit`
    is a coroutine and every mutation happens between awaits, so no
    lock is needed.  Blocking engine calls run on a dedicated thread
    pool of ``max_concurrency`` workers; the admission budget decides
    how many queries may *hold grants* at once, the thread pool decides
    how many actually execute.

    Engines advertise concurrent execution with an
    ``execute_thread_safe`` attribute (``ShardedEngine`` sets it: its
    coordinator state is lock-guarded and each replica serializes its
    own sub-queries).  An engine without it — a bare
    ``SpatialQueryEngine``, whose ``execute`` is not reentrant — has
    its calls serialized under a front-end lock: concurrency still
    helps (admission, queueing and deadlines overlap), but only one
    query touches the engine at a time, so the env counters, metrics
    and result cache never race.
    """

    def __init__(self, engine, *,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 admission_bytes: int = DEFAULT_ADMISSION_BYTES,
                 grant_bytes: Optional[Dict[str, int]] = None,
                 default_deadline_seconds: Optional[float] = None,
                 max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
                 faults: Optional[FaultPlan] = None) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        if max_concurrency < 1:
            raise ValueError("max concurrency must be at least 1")
        self.engine = engine
        self.queue_depth = queue_depth
        self.admission = ResourceBudget(admission_bytes)
        self.grant_bytes = dict(DEFAULT_GRANT_BYTES)
        if grant_bytes:
            unknown = set(grant_bytes) - set(QUERY_CLASSES)
            if unknown:
                raise ValueError(
                    f"unknown query classes: {sorted(unknown)}"
                )
            self.grant_bytes.update(grant_bytes)
        self.default_deadline_seconds = default_deadline_seconds
        # One plan governs the deployment: absent an explicit plan the
        # front-end joins the engine's, so serve.* rules in an engine
        # fault plan reach the admission/deadline sites.
        if faults is None:
            faults = getattr(engine, "faults", None)
        self.faults = faults
        self._queue: list = []  # FIFO of _Waiter (small; O(n) ops fine)
        #: Engines that do not declare ``execute_thread_safe`` get
        #: their blocking calls serialized here (see class docstring).
        self._engine_lock = (
            None if getattr(engine, "execute_thread_safe", False)
            else threading.Lock()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="serve"
        )
        self.max_concurrency = max_concurrency
        # -- counters (event-loop owned) -----------------------------------
        self.submitted = 0
        self.served_ok = 0
        self.served_degraded = 0
        self.queued_total = 0
        self.shed = 0
        self.expired = 0
        self.rejected = 0
        self.errors = 0
        self.in_flight = 0
        self.in_flight_high_water = 0
        self.queue_high_water = 0
        self.queue_wait_seconds = 0.0
        self.per_class: Dict[str, Dict[str, int]] = {
            c: {"submitted": 0, "ok": 0, "shed": 0, "expired": 0,
                "rejected": 0, "errors": 0}
            for c in QUERY_CLASSES
        }

    # -- admission ---------------------------------------------------------

    def _shed_for(self, incoming_class: str) -> bool:
        """Make room in a full queue; False if *incoming* must shed.

        Oldest-batch-first: batch waiters absorb overload before any
        interactive waiter is touched.  A batch arrival into a queue
        of interactive waiters sheds itself — it must not evict more
        latency-sensitive work.
        """
        for i, waiter in enumerate(self._queue):
            if waiter.query_class == "batch":
                self._resolve_shed(i)
                return True
        if incoming_class == "batch":
            return False
        if self._queue:  # all waiters interactive: oldest one sheds
            self._resolve_shed(0)
            return True
        return False

    def _resolve_shed(self, index: int) -> None:
        waiter = self._queue.pop(index)
        if not waiter.future.done():
            waiter.future.set_result(None)

    def _pump(self) -> None:
        """Grant queue heads while the admission budget has room."""
        while self._queue:
            waiter = self._queue[0]
            if waiter.future.done():  # expired while parked
                self._queue.pop(0)
                continue
            grant = self.admission.try_acquire(
                waiter.query_class, waiter.nbytes
            )
            if grant is None:
                return
            self._queue.pop(0)
            waiter.future.set_result(grant)

    async def _admit(self, query_class: str, nbytes: int,
                     deadline: Optional[float], t0: float):
        """A grant for this query, or None when it shed/expired.

        Raises :class:`AdmissionError` for queries that could never be
        admitted and :class:`InjectedFault` when a ``serve.queue``
        chaos rule fires.
        """
        if nbytes > self.admission.total_bytes:
            raise AdmissionError(
                f"a {query_class} grant of {nbytes} bytes exceeds the "
                f"admission budget of {self.admission.total_bytes}"
            )
        if self.faults is not None:
            rule = self.faults.fire("serve.queue",
                                    query_class=query_class)
            if rule is not None:
                if rule.kind == "exception":
                    raise InjectedFault(
                        "injected admission failure (serve.queue)"
                    )
                await asyncio.sleep(rule.delay_seconds)
        # FIFO fairness: nobody barges past parked waiters.
        if not self._queue:
            grant = self.admission.try_acquire(query_class, nbytes)
            if grant is not None:
                return grant
        if len(self._queue) >= self.queue_depth:
            if not self._shed_for(query_class):
                return None  # incoming query sheds itself
        future = asyncio.get_running_loop().create_future()
        waiter = _Waiter(query_class, nbytes, future, t0)
        self._queue.append(waiter)
        self.queued_total += 1
        self.queue_high_water = max(
            self.queue_high_water, len(self._queue)
        )
        timeout = (deadline - time.monotonic()
                   if deadline is not None else None)
        try:
            grant = await asyncio.wait_for(
                asyncio.shield(future), timeout
            )
        except asyncio.TimeoutError:
            # Expired while parked.  Whatever fate won the race, the
            # time this waiter spent queued is queue wait.
            self.queue_wait_seconds += (
                time.monotonic() - waiter.enqueued_at
            )
            if future.done():
                resolved = future.result()
                if resolved is None:
                    # Shed in the same tick the deadline fired: the
                    # shed decision already removed the waiter and
                    # charged nothing — report it as shed.
                    return None
                # The pump granted concurrently — hand it straight back.
                resolved.release()
                self._pump()
            else:
                future.cancel()
            if waiter in self._queue:
                self._queue.remove(waiter)
            raise DeadlineExceeded("deadline passed while queued")
        self.queue_wait_seconds += time.monotonic() - waiter.enqueued_at
        return grant  # a ResourceGrant, or None when shed

    # -- serving -----------------------------------------------------------

    async def submit(self, query: Query,
                     query_class: str = "interactive",
                     deadline_seconds: Optional[float] = None,
                     ) -> ServeResponse:
        """Serve one query through admission, returning its fate."""
        if query_class not in QUERY_CLASSES:
            raise ValueError(
                f"unknown query class {query_class!r}; expected one "
                f"of {QUERY_CLASSES}"
            )
        t0 = time.monotonic()
        self.submitted += 1
        self.per_class[query_class]["submitted"] += 1
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        deadline = (t0 + deadline_seconds
                    if deadline_seconds is not None else None)
        nbytes = self.grant_bytes[query_class]

        def finish(status: str, queue_seconds: float,
                   **kw) -> ServeResponse:
            return ServeResponse(
                status=status, query_class=query_class,
                wall_seconds=time.monotonic() - t0,
                queue_seconds=queue_seconds, **kw,
            )

        try:
            grant = await self._admit(query_class, nbytes, deadline, t0)
        except DeadlineExceeded:
            self.expired += 1
            self.per_class[query_class]["expired"] += 1
            return finish("expired", time.monotonic() - t0,
                          error="deadline passed while queued")
        except AdmissionError as exc:
            self.rejected += 1
            self.per_class[query_class]["rejected"] += 1
            return finish("rejected", 0.0, error=str(exc))
        except InjectedFault as exc:
            self.errors += 1
            self.per_class[query_class]["errors"] += 1
            return finish("error", 0.0, error=str(exc))
        if grant is None:
            self.shed += 1
            self.per_class[query_class]["shed"] += 1
            return finish("shed", time.monotonic() - t0,
                          error="load shed: admission queue full")
        queue_seconds = time.monotonic() - t0
        try:
            if self.faults is not None:
                rule = self.faults.fire("serve.deadline",
                                        query_class=query_class)
                if rule is not None:
                    if rule.kind == "exception":
                        raise DeadlineExceeded(
                            "injected deadline expiry (serve.deadline)"
                        )
                    await asyncio.sleep(rule.delay_seconds)
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceeded(
                    "deadline passed before dispatch"
                )

            def checkpoint() -> None:
                if deadline is not None and time.monotonic() > deadline:
                    raise DeadlineExceeded(
                        "deadline passed at a scatter checkpoint"
                    )

            self.in_flight += 1
            self.in_flight_high_water = max(
                self.in_flight_high_water, self.in_flight
            )
            def call() -> EngineResult:
                if self._engine_lock is None:
                    return self.engine.execute(query, cancel=checkpoint)
                with self._engine_lock:
                    # The wait for the engine counts against the
                    # deadline like any other checkpoint.
                    checkpoint()
                    return self.engine.execute(query, cancel=checkpoint)

            try:
                out = await asyncio.get_running_loop().run_in_executor(
                    self._executor, call,
                )
            finally:
                self.in_flight -= 1
            degraded = bool(out.result.detail.get("degraded"))
            self.served_ok += 1
            if degraded:
                self.served_degraded += 1
            self.per_class[query_class]["ok"] += 1
            return finish("ok", queue_seconds,
                          pairs=out.result.n_pairs, degraded=degraded,
                          result=out)
        except DeadlineExceeded as exc:
            self.expired += 1
            self.per_class[query_class]["expired"] += 1
            return finish("expired", queue_seconds, error=str(exc))
        except AdmissionError as exc:
            # The engine's own gate (a per-query grant below this
            # layer): surfaced as a rejection, not an exception.
            self.rejected += 1
            self.per_class[query_class]["rejected"] += 1
            return finish("rejected", queue_seconds, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — fate, not crash
            self.errors += 1
            self.per_class[query_class]["errors"] += 1
            return finish("error", queue_seconds,
                          error=f"{type(exc).__name__}: {exc}")
        finally:
            grant.release()
            self._pump()

    # -- observability / lifecycle -----------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "served_ok": self.served_ok,
            "served_degraded": self.served_degraded,
            "queued_total": self.queued_total,
            "queue_length": len(self._queue),
            "queue_depth": self.queue_depth,
            "queue_high_water": self.queue_high_water,
            "queue_wait_seconds": self.queue_wait_seconds,
            "shed": self.shed,
            "expired": self.expired,
            "rejected": self.rejected,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "in_flight_high_water": self.in_flight_high_water,
            "max_concurrency": self.max_concurrency,
            "admission": self.admission.snapshot(),
            "per_class": {
                c: dict(v) for c, v in self.per_class.items()
            },
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The engine's snapshot with the serve layer nested under it.

        The Prometheus walker flattens unknown nested dicts, so every
        serve counter lands in the exporter as ``repro_serve_*`` with
        no exporter changes.
        """
        snap = self.engine.metrics_snapshot()
        snap["serve"] = self.snapshot()
        return snap

    def close(self) -> None:
        # Resolve parked waiters as shed first: a submit coroutine
        # still awaiting its queue future must not hang forever when
        # close() is called from inside a live event loop.
        while self._queue:
            waiter = self._queue.pop(0)
            if not waiter.future.done():
                try:
                    waiter.future.set_result(None)
                except RuntimeError:
                    # The future's loop already closed (close() after
                    # asyncio.run): nobody is waiting on it anymore.
                    pass
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- HTTP endpoint ---------------------------------------------------------

_STATUS_HTTP = {
    "ok": 200,
    "shed": 503,
    "expired": 504,
    "rejected": 413,
    "error": 500,
}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


def _http_response(code: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(code, "OK")
    head = (f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


def parse_query_body(body: bytes) -> Dict[str, object]:
    """Decode one POST /query body into ``submit`` keyword arguments.

    Accepted JSON keys: ``relations`` (list of names, required),
    ``window`` (``[xlo, xhi, ylo, yhi]``), ``count_only`` (bool),
    ``class`` (``interactive``/``batch``), ``deadline_ms`` (number).
    Raises ``ValueError`` on anything malformed — the endpoint turns
    that into a 400, never a served query.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"invalid JSON body: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("query body must be a JSON object")
    allowed = {"relations", "window", "count_only", "class",
               "deadline_ms"}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown query keys: {sorted(unknown)}")
    relations = data.get("relations")
    if (not isinstance(relations, list) or len(relations) < 2
            or not all(isinstance(r, str) for r in relations)):
        raise ValueError(
            "relations must be a list of at least two names"
        )
    window = None
    if data.get("window") is not None:
        w = data["window"]
        if (not isinstance(w, list) or len(w) != 4
                or not all(isinstance(v, (int, float)) for v in w)):
            raise ValueError("window must be [xlo, xhi, ylo, yhi]")
        window = Rect(float(w[0]), float(w[1]),
                      float(w[2]), float(w[3]), 0)
    query_class = data.get("class", "interactive")
    if query_class not in QUERY_CLASSES:
        raise ValueError(
            f"class must be one of {list(QUERY_CLASSES)}"
        )
    deadline_seconds = None
    if data.get("deadline_ms") is not None:
        ms = data["deadline_ms"]
        if not isinstance(ms, (int, float)) or ms <= 0:
            raise ValueError("deadline_ms must be a positive number")
        deadline_seconds = float(ms) / 1e3
    query = Query(
        relations=tuple(relations), window=window,
        collect_pairs=not bool(data.get("count_only", False)),
    )
    return {"query": query, "query_class": query_class,
            "deadline_seconds": deadline_seconds}


#: Largest request body the endpoint will buffer.  Query bodies are a
#: few hundred bytes; anything near the cap is abuse or a bug, and an
#: unbounded Content-Length must not let one connection claim
#: arbitrary memory.
MAX_BODY_BYTES = 1 << 20


async def _read_request(reader) -> Optional[Dict[str, object]]:
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    length = max(0, length)
    if length > MAX_BODY_BYTES:
        # Don't read the body — the connection closes after the
        # response anyway, and draining it would buffer what the cap
        # exists to refuse.
        return {"method": method, "path": path, "body": b"",
                "too_large": True}
    body = await reader.readexactly(length) if length else b""
    return {"method": method, "path": path, "body": body}


async def serve_http(frontend: ServingFrontend,
                     host: str = "127.0.0.1", port: int = 0):
    """Serve the front-end over HTTP; returns the asyncio server.

    ``POST /query`` runs a query (JSON body, see
    :func:`parse_query_body`); ``GET /metrics`` renders the merged
    engine+serve snapshot in Prometheus exposition format;
    ``GET /healthz`` answers liveness probes.  One request per
    connection — load drivers open many short connections, which is
    exactly the regime the admission queue exists for.
    """
    from repro.engine.obs import render_prometheus

    async def handle(reader, writer) -> None:
        try:
            req = await _read_request(reader)
            if req is None:
                return
            if req.get("too_large"):
                out = _http_response(
                    413, b'{"error": "request body too large"}\n'
                )
            elif req["path"] == "/healthz" and req["method"] == "GET":
                out = _http_response(200, b'{"status": "ok"}\n')
            elif req["path"] == "/metrics" and req["method"] == "GET":
                text = render_prometheus(frontend.metrics_snapshot())
                out = _http_response(
                    200, text.encode("utf-8"),
                    content_type="text/plain; version=0.0.4",
                )
            elif req["path"] == "/query":
                if req["method"] != "POST":
                    out = _http_response(
                        405, b'{"error": "use POST"}\n'
                    )
                else:
                    try:
                        kwargs = parse_query_body(req["body"])
                    except ValueError as exc:
                        out = _http_response(
                            400,
                            json.dumps(
                                {"error": str(exc)}
                            ).encode("utf-8") + b"\n",
                        )
                    else:
                        resp = await frontend.submit(**kwargs)
                        out = _http_response(
                            _STATUS_HTTP[resp.status],
                            json.dumps(
                                resp.to_dict()
                            ).encode("utf-8") + b"\n",
                        )
            else:
                out = _http_response(404, b'{"error": "not found"}\n')
            writer.write(out)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError,
                ValueError):
            # ValueError covers malformed reads (e.g. readexactly on a
            # bogus length): drop the connection rather than the task.
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
