"""Concurrent serving front-end: admission queueing, deadlines, shedding.

The engines below this layer answer one blocking call at a time and
protect themselves with a hard gate: a query whose minimum grant cannot
fit raises :class:`~repro.engine.resources.AdmissionError`.  That is
the right contract for a library call and the wrong one for a server —
under a traffic burst, "refuse anything that does not fit right now"
rejects work the deployment could have served a few milliseconds later.

:class:`ServingFrontend` turns the blocking engine into a bounded
concurrent service with three production behaviours:

**Admission queue with priority aging.**  Every query declares a class
(``interactive`` or ``batch``) and is admitted by taking a per-class
byte grant from a serve-level
:class:`~repro.engine.resources.ResourceBudget` via ``try_acquire`` —
the refusal-capable sibling of ``acquire``.  When the grant is not
free the query *parks* in a FIFO queue instead of failing; each
released grant pumps the queue head.  The queue is bounded: past
``queue_depth`` the front-end load-sheds, evicting the **oldest
un-aged batch** waiter first (batch traffic absorbs overload so
dashboards stay up).  A batch waiter parked longer than
``aging_seconds`` is *promoted* — it accrues interactive-equivalent
priority and sheds only under the oldest-first rule that governs
interactive waiters — so oldest-batch-first shedding can never become
batch starvation under sustained interactive pressure
(``aged_promotions`` counts the promotions;
``queue_age_max_seconds`` bounds the starvation story per class).

**Deadlines, propagated into the pool.**  A query may carry a
deadline.  While parked it expires via the queue future's timeout;
once running, its :class:`~repro.engine.pool.CancelToken` is threaded
through ``ShardedEngine.execute`` into every replica's partitioned
executor and — riding inside each shipped pool payload — down to the
workers themselves: not-yet-started pool tasks are dropped
(``pool_tasks_cancelled`` counts the reclaimed CPU) and in-flight ones
stop at tile boundaries.  Expiry never corrupts shared state —
checkpoints fire only between whole units of work.

**Adaptive admission.**  With ``adaptive_grants`` on, per-class grant
sizes track the *observed* per-class memory high-water that served
queries report (``ResourceBudget.note_observation``) instead of the
static configured bytes — a deployment whose interactive queries
measure 200 KiB stops billing them 1 MiB, and one whose batch overlays
measure 6 MiB stops letting two of them melt an 8 MiB budget.

**Graceful degradation.**  Overload produces ``shed`` and ``expired``
responses with correct counters, never unbounded queue growth and never
a surprise ``AdmissionError`` (oversized singletons still get a clean
``rejected``).  Every outcome is a first-class state in
:meth:`ServingFrontend.snapshot`, which rides the engine's metrics
snapshot into the Prometheus/JSON exporters unchanged.

The fault plan participates: ``serve.queue`` rules fire at admission
(``exception`` fails the admission, ``slow`` delays the grant attempt)
and ``serve.deadline`` rules fire at dispatch (``exception`` forces the
deadline-expired path, ``slow`` burns queue-to-dispatch time), so chaos
tests cover the queue and deadline paths the same way they cover
replica failover.

:func:`serve_http` exposes the front-end over a thin stdlib HTTP
endpoint (``POST /query``, ``GET /metrics``, ``GET /healthz``) — no
framework dependency.  Connections are persistent by default
(HTTP/1.1 keep-alive with sequential pipelined request handling);
``Connection:`` headers are honoured and per-connection request and
concurrent-connection limits bound the exposure.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.engine.engine import EngineResult
from repro.engine.faults import FaultPlan, InjectedFault
from repro.engine.pool import CancelToken, DeadlineExceeded
from repro.engine.query import Query
from repro.engine.resources import AdmissionError, ResourceBudget
from repro.geom.rect import Rect

__all__ = [
    "CancelToken",
    "DeadlineExceeded",
    "ServeResponse",
    "ServingFrontend",
    "parse_query_body",
    "serve_http",
]

QUERY_CLASSES = ("interactive", "batch")

#: Admission charge per in-flight query, by class.  Batch queries are
#: billed more: they tend to be full overlays, and a bigger charge
#: means fewer of them run concurrently — the budget itself becomes
#: the concurrency limiter for heavy traffic.
DEFAULT_GRANT_BYTES = {
    "interactive": 1 << 20,
    "batch": 4 << 20,
}

#: Default admission budget: eight interactive grants' worth.
DEFAULT_ADMISSION_BYTES = 8 << 20

DEFAULT_QUEUE_DEPTH = 64

#: Threads executing blocking engine calls (the true in-flight cap).
DEFAULT_MAX_CONCURRENCY = 8

#: A batch waiter parked at least this long is promoted to
#: interactive-equivalent shed priority (see ``_shed_for``).  ``<= 0``
#: disables aging (the pre-aging oldest-batch-first behaviour).
DEFAULT_AGING_SECONDS = 0.5

#: Floor for adaptively sized grants: observations below this would
#: let a burst of trivially-small queries admit an unbounded crowd.
MIN_ADAPTIVE_GRANT_BYTES = 64 << 10


@dataclass
class ServeResponse:
    """One query's fate at the front-end.

    ``status`` is one of ``ok`` (served; ``degraded`` marks a reply
    that needed replica failover), ``shed`` (evicted from a full
    queue), ``expired`` (deadline passed while queued or running),
    ``rejected`` (could never be admitted — grant larger than the
    whole budget), or ``error`` (the engine or an injected fault
    raised).
    """

    status: str
    query_class: str
    wall_seconds: float
    queue_seconds: float
    pairs: Optional[int] = None
    degraded: bool = False
    error: Optional[str] = None
    result: Optional[EngineResult] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        body: Dict[str, object] = {
            "status": self.status,
            "class": self.query_class,
            "wall_ms": round(self.wall_seconds * 1e3, 3),
            "queue_ms": round(self.queue_seconds * 1e3, 3),
        }
        if self.pairs is not None:
            body["pairs"] = self.pairs
        if self.degraded:
            body["degraded"] = True
        if self.error is not None:
            body["error"] = self.error
        return body


class _Waiter:
    """One parked query: its class and the future its grant arrives on."""

    __slots__ = ("query_class", "nbytes", "future", "enqueued_at",
                 "promoted")

    def __init__(self, query_class: str, nbytes: int,
                 future: "asyncio.Future", enqueued_at: float) -> None:
        self.query_class = query_class
        self.nbytes = nbytes
        self.future = future
        self.enqueued_at = enqueued_at
        #: Aged past ``aging_seconds``: this batch waiter now sheds
        #: under interactive rules instead of batch-first.
        self.promoted = False


class ServingFrontend:
    """Bounded concurrent admission over one (sharded) engine.

    All queue and counter state is owned by the event loop — `submit`
    is a coroutine and every mutation happens between awaits, so no
    lock is needed.  Blocking engine calls run on a dedicated thread
    pool of ``max_concurrency`` workers; the admission budget decides
    how many queries may *hold grants* at once, the thread pool decides
    how many actually execute.

    Engines advertise concurrent execution with an
    ``execute_thread_safe`` attribute (``ShardedEngine`` sets it: its
    coordinator state is lock-guarded and each replica serializes its
    own sub-queries).  An engine without it — a bare
    ``SpatialQueryEngine``, whose ``execute`` is not reentrant — has
    its calls serialized under a front-end lock: concurrency still
    helps (admission, queueing and deadlines overlap), but only one
    query touches the engine at a time, so the env counters, metrics
    and result cache never race.
    """

    def __init__(self, engine, *,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 admission_bytes: int = DEFAULT_ADMISSION_BYTES,
                 grant_bytes: Optional[Dict[str, int]] = None,
                 default_deadline_seconds: Optional[float] = None,
                 max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
                 aging_seconds: float = DEFAULT_AGING_SECONDS,
                 adaptive_grants: bool = False,
                 faults: Optional[FaultPlan] = None) -> None:
        if queue_depth < 1:
            raise ValueError("queue depth must be at least 1")
        if max_concurrency < 1:
            raise ValueError("max concurrency must be at least 1")
        self.engine = engine
        self.queue_depth = queue_depth
        self.admission = ResourceBudget(admission_bytes)
        self.grant_bytes = dict(DEFAULT_GRANT_BYTES)
        if grant_bytes:
            unknown = set(grant_bytes) - set(QUERY_CLASSES)
            if unknown:
                raise ValueError(
                    f"unknown query classes: {sorted(unknown)}"
                )
            self.grant_bytes.update(grant_bytes)
        self.default_deadline_seconds = default_deadline_seconds
        self.aging_seconds = aging_seconds
        #: Size grants from observed per-class memory high-water (fed
        #: back by served queries) instead of the static table above.
        self.adaptive_grants = adaptive_grants
        # One plan governs the deployment: absent an explicit plan the
        # front-end joins the engine's, so serve.* rules in an engine
        # fault plan reach the admission/deadline sites.
        if faults is None:
            faults = getattr(engine, "faults", None)
        self.faults = faults
        self._queue: list = []  # FIFO of _Waiter (small; O(n) ops fine)
        #: Engines that do not declare ``execute_thread_safe`` get
        #: their blocking calls serialized here (see class docstring).
        self._engine_lock = (
            None if getattr(engine, "execute_thread_safe", False)
            else threading.Lock()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="serve"
        )
        self.max_concurrency = max_concurrency
        # -- counters (event-loop owned) -----------------------------------
        self.submitted = 0
        self.served_ok = 0
        self.served_degraded = 0
        self.queued_total = 0
        self.shed = 0
        self.expired = 0
        self.rejected = 0
        self.errors = 0
        self.in_flight = 0
        self.in_flight_high_water = 0
        self.queue_high_water = 0
        self.queue_wait_seconds = 0.0
        #: Batch waiters promoted by queue age (the anti-starvation
        #: counter the starvation gate watches).
        self.aged_promotions = 0
        #: Longest time any waiter of each class spent parked before
        #: its fate resolved (grant, shed, expiry, or close).
        self.queue_age_max_seconds: Dict[str, float] = {
            c: 0.0 for c in QUERY_CLASSES
        }
        self.per_class: Dict[str, Dict[str, int]] = {
            c: {"submitted": 0, "ok": 0, "shed": 0, "expired": 0,
                "rejected": 0, "errors": 0}
            for c in QUERY_CLASSES
        }

    # -- admission ---------------------------------------------------------

    def _age_queue(self) -> None:
        """Promote batch waiters that out-waited ``aging_seconds``."""
        if self.aging_seconds <= 0:
            return
        cutoff = time.monotonic() - self.aging_seconds
        for waiter in self._queue:
            if (waiter.query_class == "batch" and not waiter.promoted
                    and waiter.enqueued_at <= cutoff):
                waiter.promoted = True
                self.aged_promotions += 1

    def _note_dequeue(self, waiter: _Waiter) -> None:
        """Fold one resolved waiter's queue age into the per-class max."""
        age = time.monotonic() - waiter.enqueued_at
        if age > self.queue_age_max_seconds[waiter.query_class]:
            self.queue_age_max_seconds[waiter.query_class] = age

    def _shed_for(self, incoming_class: str) -> bool:
        """Make room in a full queue; False if *incoming* must shed.

        Oldest-batch-first, with priority aging: *un-aged* batch
        waiters absorb overload before anything else is touched, but a
        batch waiter parked past ``aging_seconds`` is promoted first
        and then sheds only under the oldest-first rule that governs
        interactive waiters — sustained interactive pressure can no
        longer starve a parked batch query indefinitely.  A batch
        arrival into a queue of interactive (or promoted) waiters
        sheds itself — it must not evict higher-priority work.
        """
        self._age_queue()
        for i, waiter in enumerate(self._queue):
            if waiter.query_class == "batch" and not waiter.promoted:
                self._resolve_shed(i)
                return True
        if incoming_class == "batch":
            return False
        if self._queue:  # interactive/promoted only: oldest one sheds
            self._resolve_shed(0)
            return True
        return False

    def _resolve_shed(self, index: int) -> None:
        waiter = self._queue.pop(index)
        self._note_dequeue(waiter)
        if not waiter.future.done():
            waiter.future.set_result(None)

    def _pump(self) -> None:
        """Grant queue heads while the admission budget has room."""
        while self._queue:
            waiter = self._queue[0]
            if waiter.future.done():  # expired while parked
                self._note_dequeue(self._queue.pop(0))
                continue
            grant = self.admission.try_acquire(
                waiter.query_class, waiter.nbytes
            )
            if grant is None:
                return
            self._note_dequeue(self._queue.pop(0))
            waiter.future.set_result(grant)

    def _effective_grant(self, query_class: str) -> int:
        """The admission charge for one query of ``query_class``.

        Static configuration unless ``adaptive_grants`` is on and at
        least one served query of the class has reported its measured
        peak (:meth:`ResourceBudget.note_observation`); then the
        observed high-water governs, floored at
        :data:`MIN_ADAPTIVE_GRANT_BYTES` and capped at the admission
        budget so an outsized observation degrades to serialize-the-
        class instead of rejecting it outright.
        """
        configured = self.grant_bytes[query_class]
        if not self.adaptive_grants:
            return configured
        observed = self.admission.observed_high_water(query_class)
        if observed <= 0:
            return configured
        return max(MIN_ADAPTIVE_GRANT_BYTES,
                   min(observed, self.admission.total_bytes))

    def _observe_served(self, query_class: str,
                        out: EngineResult) -> None:
        """Feed one served query's measured peak back to admission."""
        observed = int(
            getattr(out.result, "max_memory_bytes", 0) or 0
        )
        if observed > 0:
            self.admission.note_observation(query_class, observed)

    async def _admit(self, query_class: str, nbytes: int,
                     deadline: Optional[float], t0: float):
        """A grant for this query, or None when it shed/expired.

        Raises :class:`AdmissionError` for queries that could never be
        admitted and :class:`InjectedFault` when a ``serve.queue``
        chaos rule fires.
        """
        if nbytes > self.admission.total_bytes:
            raise AdmissionError(
                f"a {query_class} grant of {nbytes} bytes exceeds the "
                f"admission budget of {self.admission.total_bytes}"
            )
        if self.faults is not None:
            rule = self.faults.fire("serve.queue",
                                    query_class=query_class)
            if rule is not None:
                if rule.kind == "exception":
                    raise InjectedFault(
                        "injected admission failure (serve.queue)"
                    )
                await asyncio.sleep(rule.delay_seconds)
        # FIFO fairness: nobody barges past parked waiters.
        if not self._queue:
            grant = self.admission.try_acquire(query_class, nbytes)
            if grant is not None:
                return grant
        if len(self._queue) >= self.queue_depth:
            if not self._shed_for(query_class):
                return None  # incoming query sheds itself
        future = asyncio.get_running_loop().create_future()
        waiter = _Waiter(query_class, nbytes, future, t0)
        self._queue.append(waiter)
        self.queued_total += 1
        self.queue_high_water = max(
            self.queue_high_water, len(self._queue)
        )
        timeout = (deadline - time.monotonic()
                   if deadline is not None else None)
        try:
            grant = await asyncio.wait_for(
                asyncio.shield(future), timeout
            )
        except asyncio.TimeoutError:
            # Expired while parked.  Whatever fate won the race, the
            # time this waiter spent queued is queue wait.
            self.queue_wait_seconds += (
                time.monotonic() - waiter.enqueued_at
            )
            self._note_dequeue(waiter)
            if future.done():
                resolved = future.result()
                if resolved is None:
                    # Shed in the same tick the deadline fired: the
                    # shed decision already removed the waiter and
                    # charged nothing — report it as shed.
                    return None
                # The pump granted concurrently — hand it straight back.
                resolved.release()
                self._pump()
            else:
                future.cancel()
            if waiter in self._queue:
                self._queue.remove(waiter)
            raise DeadlineExceeded("deadline passed while queued")
        self.queue_wait_seconds += time.monotonic() - waiter.enqueued_at
        return grant  # a ResourceGrant, or None when shed

    # -- serving -----------------------------------------------------------

    async def submit(self, query: Query,
                     query_class: str = "interactive",
                     deadline_seconds: Optional[float] = None,
                     ) -> ServeResponse:
        """Serve one query through admission, returning its fate."""
        if query_class not in QUERY_CLASSES:
            raise ValueError(
                f"unknown query class {query_class!r}; expected one "
                f"of {QUERY_CLASSES}"
            )
        t0 = time.monotonic()
        self.submitted += 1
        self.per_class[query_class]["submitted"] += 1
        if deadline_seconds is None:
            deadline_seconds = self.default_deadline_seconds
        deadline = (t0 + deadline_seconds
                    if deadline_seconds is not None else None)
        nbytes = self._effective_grant(query_class)

        def finish(status: str, queue_seconds: float,
                   **kw) -> ServeResponse:
            return ServeResponse(
                status=status, query_class=query_class,
                wall_seconds=time.monotonic() - t0,
                queue_seconds=queue_seconds, **kw,
            )

        try:
            grant = await self._admit(query_class, nbytes, deadline, t0)
        except DeadlineExceeded:
            self.expired += 1
            self.per_class[query_class]["expired"] += 1
            return finish("expired", time.monotonic() - t0,
                          error="deadline passed while queued")
        except AdmissionError as exc:
            self.rejected += 1
            self.per_class[query_class]["rejected"] += 1
            return finish("rejected", 0.0, error=str(exc))
        except InjectedFault as exc:
            self.errors += 1
            self.per_class[query_class]["errors"] += 1
            return finish("error", 0.0, error=str(exc))
        if grant is None:
            self.shed += 1
            self.per_class[query_class]["shed"] += 1
            return finish("shed", time.monotonic() - t0,
                          error="load shed: admission queue full")
        queue_seconds = time.monotonic() - t0
        try:
            if self.faults is not None:
                rule = self.faults.fire("serve.deadline",
                                        query_class=query_class)
                if rule is not None:
                    if rule.kind == "exception":
                        raise DeadlineExceeded(
                            "injected deadline expiry (serve.deadline)"
                        )
                    await asyncio.sleep(rule.delay_seconds)
            if deadline is not None and time.monotonic() > deadline:
                raise DeadlineExceeded(
                    "deadline passed before dispatch"
                )

            # The token is both the engine's cooperative checkpoint
            # and — because it pickles — the per-payload cancellation
            # flag pool workers check at tile boundaries.  An absolute
            # monotonic deadline travels exactly across fork.
            token = CancelToken(deadline)

            self.in_flight += 1
            self.in_flight_high_water = max(
                self.in_flight_high_water, self.in_flight
            )
            def call() -> EngineResult:
                if self._engine_lock is None:
                    return self.engine.execute(query, cancel=token)
                with self._engine_lock:
                    # The wait for the engine counts against the
                    # deadline like any other checkpoint.
                    token()
                    return self.engine.execute(query, cancel=token)

            try:
                out = await asyncio.get_running_loop().run_in_executor(
                    self._executor, call,
                )
            finally:
                self.in_flight -= 1
            degraded = bool(out.result.detail.get("degraded"))
            self.served_ok += 1
            if degraded:
                self.served_degraded += 1
            self.per_class[query_class]["ok"] += 1
            if self.adaptive_grants:
                self._observe_served(query_class, out)
            return finish("ok", queue_seconds,
                          pairs=out.result.n_pairs, degraded=degraded,
                          result=out)
        except DeadlineExceeded as exc:
            self.expired += 1
            self.per_class[query_class]["expired"] += 1
            return finish("expired", queue_seconds, error=str(exc))
        except AdmissionError as exc:
            # The engine's own gate (a per-query grant below this
            # layer): surfaced as a rejection, not an exception.
            self.rejected += 1
            self.per_class[query_class]["rejected"] += 1
            return finish("rejected", queue_seconds, error=str(exc))
        except Exception as exc:  # noqa: BLE001 — fate, not crash
            self.errors += 1
            self.per_class[query_class]["errors"] += 1
            return finish("error", queue_seconds,
                          error=f"{type(exc).__name__}: {exc}")
        finally:
            grant.release()
            self._pump()

    # -- observability / lifecycle -----------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "served_ok": self.served_ok,
            "served_degraded": self.served_degraded,
            "queued_total": self.queued_total,
            "queue_length": len(self._queue),
            "queue_depth": self.queue_depth,
            "queue_high_water": self.queue_high_water,
            "queue_wait_seconds": self.queue_wait_seconds,
            "shed": self.shed,
            "expired": self.expired,
            "rejected": self.rejected,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "in_flight_high_water": self.in_flight_high_water,
            "max_concurrency": self.max_concurrency,
            "aged_promotions": self.aged_promotions,
            "queue_age_max_seconds": dict(self.queue_age_max_seconds),
            "adaptive_grants": self.adaptive_grants,
            "effective_grant_bytes": {
                c: self._effective_grant(c) for c in QUERY_CLASSES
            },
            "admission": self.admission.snapshot(),
            "per_class": {
                c: dict(v) for c, v in self.per_class.items()
            },
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The engine's snapshot with the serve layer nested under it.

        The Prometheus walker flattens unknown nested dicts under the
        exporter's ``repro_engine`` namespace, so every serve counter
        lands in the scrape as ``repro_engine_serve_*`` with no
        exporter changes (``validate_prometheus``'s ``prefix``
        argument pins exactly this).
        """
        snap = self.engine.metrics_snapshot()
        snap["serve"] = self.snapshot()
        return snap

    def close(self) -> None:
        # Resolve parked waiters as shed first: a submit coroutine
        # still awaiting its queue future must not hang forever when
        # close() is called from inside a live event loop.
        while self._queue:
            waiter = self._queue.pop(0)
            self._note_dequeue(waiter)
            if not waiter.future.done():
                try:
                    waiter.future.set_result(None)
                except RuntimeError:
                    # The future's loop already closed (close() after
                    # asyncio.run): nobody is waiting on it anymore.
                    pass
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- HTTP endpoint ---------------------------------------------------------

_STATUS_HTTP = {
    "ok": 200,
    "shed": 503,
    "expired": 504,
    "rejected": 413,
    "error": 500,
}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


def _http_response(code: int, body: bytes,
                   content_type: str = "application/json",
                   keep_alive: bool = False) -> bytes:
    reason = _REASONS.get(code, "OK")
    conn = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {conn}\r\n\r\n")
    return head.encode("ascii") + body


def parse_query_body(body: bytes) -> Dict[str, object]:
    """Decode one POST /query body into ``submit`` keyword arguments.

    Accepted JSON keys: ``relations`` (list of names, required),
    ``window`` (``[xlo, xhi, ylo, yhi]``), ``count_only`` (bool),
    ``class`` (``interactive``/``batch``), ``deadline_ms`` (number).
    Raises ``ValueError`` on anything malformed — the endpoint turns
    that into a 400, never a served query.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"invalid JSON body: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("query body must be a JSON object")
    allowed = {"relations", "window", "count_only", "class",
               "deadline_ms"}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown query keys: {sorted(unknown)}")
    relations = data.get("relations")
    if (not isinstance(relations, list) or len(relations) < 2
            or not all(isinstance(r, str) for r in relations)):
        raise ValueError(
            "relations must be a list of at least two names"
        )
    window = None
    if data.get("window") is not None:
        w = data["window"]
        if (not isinstance(w, list) or len(w) != 4
                or not all(isinstance(v, (int, float)) for v in w)):
            raise ValueError("window must be [xlo, xhi, ylo, yhi]")
        window = Rect(float(w[0]), float(w[1]),
                      float(w[2]), float(w[3]), 0)
    query_class = data.get("class", "interactive")
    if query_class not in QUERY_CLASSES:
        raise ValueError(
            f"class must be one of {list(QUERY_CLASSES)}"
        )
    deadline_seconds = None
    if data.get("deadline_ms") is not None:
        ms = data["deadline_ms"]
        if not isinstance(ms, (int, float)) or ms <= 0:
            raise ValueError("deadline_ms must be a positive number")
        deadline_seconds = float(ms) / 1e3
    query = Query(
        relations=tuple(relations), window=window,
        collect_pairs=not bool(data.get("count_only", False)),
    )
    return {"query": query, "query_class": query_class,
            "deadline_seconds": deadline_seconds}


#: Largest request body the endpoint will buffer.  Query bodies are a
#: few hundred bytes; anything near the cap is abuse or a bug, and an
#: unbounded Content-Length must not let one connection claim
#: arbitrary memory.
MAX_BODY_BYTES = 1 << 20

#: Largest declared body the endpoint will *drain* (discard without
#: buffering) to keep a persistent connection usable after a 413.
#: Beyond this, draining costs more than the connection is worth and
#: the response forces ``Connection: close`` instead.
MAX_DRAIN_BYTES = 8 << 20

#: Requests served on one connection before the endpoint closes it —
#: persistent connections must not pin server tasks forever.
MAX_REQUESTS_PER_CONNECTION = 100

#: Concurrent connections the endpoint handles; beyond this an
#: immediate 503 tells load balancers to back off without the request
#: ever reaching the admission queue.
MAX_CONNECTIONS = 256


async def _read_request(reader) -> Optional[Dict[str, object]]:
    """Parse one request; returns None at clean EOF.

    The returned dict always carries ``keep_alive`` (whether the
    *client* allows reuse: HTTP/1.1 defaults on, HTTP/1.0 defaults
    off, an explicit ``Connection:`` header wins either way) and has
    consumed the declared body from the stream on every path —
    including 413s up to :data:`MAX_DRAIN_BYTES` and bodies attached
    to GETs — so the next request on a persistent connection starts at
    a request line, never mid-body.
    """
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    version = parts[2].upper() if len(parts) > 2 else "HTTP/1.0"
    keep_alive = version == "HTTP/1.1"
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
        elif name == "connection":
            tokens = {t.strip().lower() for t in value.split(",")}
            if "close" in tokens:
                keep_alive = False
            elif "keep-alive" in tokens:
                keep_alive = True
    length = max(0, length)
    if length > MAX_BODY_BYTES:
        # Refuse to buffer, but drain what's reasonable so the
        # connection stays usable; past the drain cap, force close.
        if length <= MAX_DRAIN_BYTES:
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    raise asyncio.IncompleteReadError(b"", remaining)
                remaining -= len(chunk)
        else:
            keep_alive = False
        return {"method": method, "path": path, "body": b"",
                "too_large": True, "keep_alive": keep_alive}
    body = await reader.readexactly(length) if length else b""
    return {"method": method, "path": path, "body": body,
            "keep_alive": keep_alive}


async def serve_http(frontend: ServingFrontend,
                     host: str = "127.0.0.1", port: int = 0,
                     max_connections: int = MAX_CONNECTIONS):
    """Serve the front-end over HTTP; returns the asyncio server.

    ``POST /query`` runs a query (JSON body, see
    :func:`parse_query_body`); ``GET /metrics`` renders the merged
    engine+serve snapshot in Prometheus exposition format;
    ``GET /healthz`` answers liveness probes.

    Connections are persistent (HTTP/1.1 keep-alive) by default:
    requests are handled back-to-back on one connection until the
    client sends ``Connection: close``, EOF, or
    :data:`MAX_REQUESTS_PER_CONNECTION` is reached — so a load driver
    reuses one socket instead of paying a handshake per query.
    Requests already buffered behind the current one are naturally
    served in arrival order (pipelining).  At most ``max_connections``
    connections are handled concurrently; beyond that the endpoint
    answers an immediate 503 and closes.
    """
    from repro.engine.obs import render_prometheus

    active = 0

    async def respond(req) -> Tuple[bytes, bool]:
        keep = bool(req.get("keep_alive"))
        if req.get("too_large"):
            return _http_response(
                413, b'{"error": "request body too large"}\n',
                keep_alive=keep,
            ), keep
        if req["path"] == "/healthz" and req["method"] == "GET":
            return _http_response(200, b'{"status": "ok"}\n',
                                  keep_alive=keep), keep
        if req["path"] == "/metrics" and req["method"] == "GET":
            text = render_prometheus(frontend.metrics_snapshot())
            return _http_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4",
                keep_alive=keep,
            ), keep
        if req["path"] == "/query":
            if req["method"] != "POST":
                return _http_response(
                    405, b'{"error": "use POST"}\n', keep_alive=keep
                ), keep
            try:
                kwargs = parse_query_body(req["body"])
            except ValueError as exc:
                return _http_response(
                    400,
                    json.dumps({"error": str(exc)}).encode("utf-8")
                    + b"\n",
                    keep_alive=keep,
                ), keep
            resp = await frontend.submit(**kwargs)
            return _http_response(
                _STATUS_HTTP[resp.status],
                json.dumps(resp.to_dict()).encode("utf-8") + b"\n",
                keep_alive=keep,
            ), keep
        return _http_response(404, b'{"error": "not found"}\n',
                              keep_alive=keep), keep

    async def handle(reader, writer) -> None:
        nonlocal active
        if active >= max_connections:
            try:
                writer.write(_http_response(
                    503, b'{"error": "too many connections"}\n'
                ))
                await writer.drain()
            except ConnectionError:
                pass
            finally:
                writer.close()
            return
        active += 1
        served = 0
        try:
            while served < MAX_REQUESTS_PER_CONNECTION:
                req = await _read_request(reader)
                if req is None:
                    return
                served += 1
                if served >= MAX_REQUESTS_PER_CONNECTION:
                    req["keep_alive"] = False
                out, keep = await respond(req)
                writer.write(out)
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.IncompleteReadError,
                ValueError):
            # ValueError covers malformed reads (e.g. readexactly on a
            # bogus length): drop the connection rather than the task.
            pass
        except asyncio.CancelledError:
            # Shutdown while parked between requests on a persistent
            # connection: a normal fate for a keep-alive handler, not
            # an error to propagate out of the dying loop.
            pass
        finally:
            active -= 1
            writer.close()

    return await asyncio.start_server(handle, host, port)
