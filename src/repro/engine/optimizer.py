"""Query -> physical plan, with the paper's cost model in the middle.

The optimizer is the engine-level generalization of
:func:`repro.core.planner.choose_method`: it prices every feasible
strategy for the queried relations (index traversal, mixed, sort-based,
synchronized tree traversal) on the engine's machine, folds the query
window into the selectivity fractions, and emits an explainable
:class:`PhysicalPlan`.  Two strategies exist only at the engine level:

* ``"st"`` — synchronized R-tree traversal through the engine's shared
  LRU buffer pool (priced with :meth:`CostModel.estimate_st`); a warm
  pool across queries is precisely what the one-shot planner cannot
  exploit;
* ``"pbsm-grid"`` — PBSM-style tile partitioning fanned out over the
  executor's worker pool; considered only when the engine runs more
  than one worker, and priced as the single sequential partition pass
  it costs (tiles stay in memory).

Plans are priced against the engine's shared
:class:`~repro.engine.resources.ResourceBudget`: the ``pbsm-grid``
candidate's tile footprint is compared with the bytes the budget can
actually grant, and any overflow is priced as spill I/O (one write plus
one re-read of the spilled bytes, writes at the paper's 1.5x factor) —
so a plan that fits in memory is preferred over one that spills, and
``explain()`` shows the memory verdict.  Every plan also carries its
*minimum grant* — the floor below which the strategy cannot run even
with maximal spilling — which the engine's admission control checks
against the budget before executing.

``explain()`` renders the full decision — candidates, fractions,
memory verdict, chosen strategy — so a regression in plan choice is a
string diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cost_model import WRITE_FACTOR, CostModel, JoinCostEstimate
from repro.core.histogram import SpatialHistogram
from repro.core.planner import Relation, candidate_estimates
from repro.engine.artifacts import (
    ArtifactStore,
    partition_token,
    sorted_run_token,
)
from repro.engine.cache import (
    SORTED_RUN_KIND,
    ArtifactCache,
    artifact_key,
    grid_tiles,
    sorted_run_key,
)
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.query import Query
from repro.engine.resources import ResourceBudget
from repro.geom.rect import RECT_BYTES, Rect, intersection, union_mbr
from repro.sim.machines import MachineSpec
from repro.sim.scale import ScaleConfig

#: Tile partitions handed to each worker (over-partitioning smooths the
#: load when tiles are skewed, the classic morsel trick).
PARTITIONS_PER_WORKER = 4

#: Irreducible per-input working set: one sweep-ready chunk of this
#: many rectangles (matching the external sort's smallest viable run).
#: A query's minimum grant is this times its input count; admission
#: control refuses queries whose minimum exceeds the whole budget.
MIN_GRANT_RECTS = 64


def min_grant_bytes(n_inputs: int) -> int:
    """The smallest budget grant under which a join can still run."""
    return n_inputs * MIN_GRANT_RECTS * RECT_BYTES


def effective_region(universe: Optional[Rect],
                     window: Optional[Rect]) -> Optional[Rect]:
    """The region a windowed query can actually touch, or ``None``.

    The optimizer uses this to clip each relation's universe to the
    query window (an empty clip compiles to the empty plan); the
    sharded scatter layer uses the *same* predicate to prune shards
    whose strip a window cannot reach, so both layers agree on what
    "the window misses this region" means.
    """
    if window is None:
        return universe
    if universe is None:
        return None
    return intersection(universe, window)


@dataclass
class PlanActuals:
    """What one execution of a plan actually cost (EXPLAIN ANALYZE).

    Filled by ``SpatialQueryEngine.execute(..., analyze=True)`` from
    the same environment deltas the engine feeds its metrics, so plan
    actuals and :class:`~repro.engine.metrics.EngineMetrics` deltas
    agree bit for bit on serial pools (and up to worker scheduling
    nondeterminism nowhere — op accounting is pool-kind-invariant).
    """

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cpu_ops: int = 0
    sim_io_seconds: float = 0.0
    sim_cpu_seconds: float = 0.0
    sim_wall_seconds: float = 0.0
    wall_seconds: float = 0.0
    pairs: int = 0
    spilled_rects: int = 0
    artifact_restores: int = 0
    artifact_restore_bytes: int = 0


@dataclass
class PhysicalPlan:
    """An executable, explainable join plan."""

    query: Query
    mode: str  # "pairwise" | "partitioned" | "multiway" | "empty"
    strategy: str
    estimate: JoinCostEstimate
    candidates: List[Tuple[str, JoinCostEstimate]] = field(
        default_factory=list
    )
    workers: int = 1
    partitions: int = 1
    #: Effective per-relation regions after clipping to the window.
    regions: List[Optional[Rect]] = field(default_factory=list)
    fractions: List[float] = field(default_factory=list)
    machine: str = ""
    notes: List[str] = field(default_factory=list)
    #: Memory governance: the engine budget the plan was priced under,
    #: the estimated in-memory tile footprint (partitioned mode), the
    #: bytes expected to spill, and the floor below which the plan
    #: cannot run at all (checked by admission control).
    memory_bytes: int = 0
    tile_bytes: int = 0
    spill_bytes: int = 0
    min_grant_bytes: int = 0
    #: Measured execution costs, set only by EXPLAIN ANALYZE
    #: (``engine.execute(query, analyze=True)``).
    actuals: Optional[PlanActuals] = None

    def explain(self) -> str:
        lines = [
            f"Query   : {self.query.describe()}",
            f"Machine : {self.machine}",
            f"Mode    : {self.mode}"
            + (f"  ({self.workers} workers, {self.partitions} partitions)"
               if self.mode == "partitioned" else ""),
        ]
        if self.memory_bytes:
            if self.mode == "partitioned":
                verdict = (
                    "fits in budget" if self.spill_bytes == 0
                    else f"spills ~{self.spill_bytes:,} B to disk"
                )
                lines.append(
                    f"Memory  : budget {self.memory_bytes:,} B, "
                    f"tiles ~{self.tile_bytes:,} B -> {verdict}"
                )
            else:
                lines.append(
                    f"Memory  : budget {self.memory_bytes:,} B, "
                    f"min grant {self.min_grant_bytes:,} B"
                )
        if self.fractions:
            fr = ", ".join(
                f"{n}={f:.0%}"
                for n, f in zip(self.query.relations, self.fractions)
            )
            lines.append(f"Participation fractions: {fr}")
        if self.candidates:
            lines.append("Candidates:")
            width = max(len(name) for name, _ in self.candidates)
            for name, est in self.candidates:
                marker = "->" if name == self.strategy else "  "
                lines.append(
                    f"  {marker} {name.ljust(width)}  "
                    f"{est.io_seconds:.4f}s I/O  ({est.detail})"
                )
        lines.append(
            f"Chosen  : {self.strategy} "
            f"(estimated {self.estimate.io_seconds:.4f}s I/O)"
        )
        if self.actuals is not None:
            a = self.actuals
            est = self.estimate.io_seconds
            err = (
                f"{a.sim_io_seconds - est:+.4f}s vs estimate"
                if est == est else "no estimate (forced)"
            )
            lines.append(
                f"Actual  : {a.sim_io_seconds:.4f}s I/O ({err}), "
                f"{a.sim_cpu_seconds:.4f}s CPU, "
                f"{a.sim_wall_seconds:.4f}s simulated wall"
            )
            lines.append(
                f"Actual  : {a.pages_read:,} pages read, "
                f"{a.pages_written:,} written, {a.cpu_ops:,} cpu ops, "
                f"{a.pairs:,} pairs"
                + (f", {a.spilled_rects:,} rects spilled"
                   if a.spilled_rects else "")
                + (f", {a.artifact_restores} artifact restores "
                   f"({a.artifact_restore_bytes:,} B)"
                   if a.artifact_restores else "")
            )
        for note in self.notes:
            lines.append(f"Note    : {note}")
        return "\n".join(lines)


class Optimizer:
    """Compile :class:`Query` objects against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        machine: MachineSpec,
        scale: ScaleConfig,
        workers: int = 1,
        auto_index: bool = True,
        budget: Optional[ResourceBudget] = None,
        artifacts: Optional[ArtifactCache] = None,
        tiles_per_side: int = 32,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.catalog = catalog
        self.machine = machine
        self.scale = scale
        self.workers = max(1, workers)
        self.auto_index = auto_index
        self.budget = budget
        # The executor's artifact cache/store and tile resolution: the
        # cost model probes whether a pbsm-grid plan's distribute phase
        # or an sssj plan's sorted runs are already warm — in memory
        # (priced free: the warm pool starts sweeping immediately) or
        # in the disk sidecar (priced as one sequential restore read).
        # Plan choice can therefore flip between the partitioned and
        # sort paths based on what is warm.  ``tiles_per_side`` must
        # match the executor's (DEFAULT_TILES_PER_SIDE) for probe keys
        # to align.
        self.artifacts = artifacts
        self.tiles_per_side = tiles_per_side
        self.store = store
        #: (name, version, universe) -> histogram rebuilt on a common
        #: universe for multiway pricing (see
        #: :meth:`_histograms_on_common_universe`).
        self._rebuilt_histograms: dict = {}

    # -- public ----------------------------------------------------------

    def compile(self, query: Query) -> PhysicalPlan:
        entries = [self.catalog.get(n) for n in query.relations]
        regions = [self._effective_region(e, query.window) for e in entries]
        if any(r is None for r in regions):
            return PhysicalPlan(
                query=query, mode="empty", strategy="empty",
                estimate=JoinCostEstimate("empty", 0.0, "window misses data"),
                regions=regions, machine=self.machine.name,
                notes=["query window does not intersect every relation"],
                memory_bytes=self._budget_total(),
            )
        if query.is_multiway:
            return self._compile_multiway(query, entries, regions)
        if query.is_self_join:
            return self._compile_self_join(query, entries, regions)
        return self._compile_pairwise(query, entries, regions)

    # -- internals -------------------------------------------------------

    def _budget_total(self) -> int:
        return self.budget.total_bytes if self.budget is not None else 0

    def _artifacts_enabled(self) -> bool:
        return (self.artifacts is not None
                and self.artifacts.max_bytes != 0)

    def _partition_artifact_state(
        self, entries: List[CatalogEntry],
        regions: List[Optional[Rect]], query: Query,
    ) -> Tuple[Optional[str], int]:
        """Where this plan's distributed tiles are warm, if anywhere.

        Returns ``("memory", 0)``, ``("disk", logical_bytes)`` or
        ``(None, 0)``.  Mirrors the executor's probe order: the exact
        (windowed) key first, then — for windowed queries — the full
        distribution of the same relations, which the executor can
        sweep and post-filter with identical results; memory outranks
        the sidecar.
        """
        if not self._artifacts_enabled():
            return None, 0
        self_join = query.is_self_join
        chosen = entries[:1] if self_join else entries
        versions = tuple((e.name, e.version) for e in chosen)
        partitions = self.workers * PARTITIONS_PER_WORKER
        candidates = [(union_mbr(regions[0], regions[1]), query.window)]
        if query.window is not None:
            candidates.append((
                union_mbr(entries[0].universe, entries[-1].universe),
                None,
            ))
        for universe, window in candidates:
            if self.artifacts.has(artifact_key(
                versions, universe, self.tiles_per_side, partitions,
                window,
            )):
                return "memory", 0
        if self.store is not None:
            fps = tuple((e.name, e.fingerprint) for e in chosen)
            for universe, window in candidates:
                meta = self.store.peek(partition_token(
                    fps, universe,
                    grid_tiles(self.tiles_per_side, partitions),
                    partitions, window,
                ))
                if meta is not None:
                    return "disk", int(meta["logical_bytes"])
        return None, 0

    def _sorted_run_state(
        self, entry: CatalogEntry,
    ) -> Tuple[Optional[str], int]:
        """Where one relation's sorted run is warm, if anywhere."""
        if not self._artifacts_enabled():
            return None, 0
        if self.artifacts.has(sorted_run_key(entry.name, entry.version),
                              kind=SORTED_RUN_KIND):
            return "memory", 0
        if self.store is not None:
            meta = self.store.peek(
                sorted_run_token(entry.name, entry.fingerprint)
            )
            if meta is not None:
                return "disk", int(meta["logical_bytes"])
        return None, 0

    def _pbsm_estimate(
        self, model: CostModel, scan_bytes: int, label: str,
        artifact_state: Optional[str] = None, restore_bytes: int = 0,
    ) -> Tuple[JoinCostEstimate, int]:
        """Price the partitioned path, including any spill overflow.

        The tile footprint is approximated by the partition-pass bytes
        (boundary replication adds a few percent on real data); the
        bytes the budget cannot grant are priced as one spill write at
        the paper's 1.5x write factor plus one re-read.  Returns the
        estimate and the expected spilled bytes.

        ``artifact_state`` folds in the artifact layer: a ``"memory"``
        hit replaces the whole scan + distribute + spill phase with a
        cache lookup (no I/O at all — the persistent pool starts
        sweeping cached tiles immediately); a ``"disk"`` hit replaces
        it with one sequential restore read of the persisted tiles.
        """
        if artifact_state == "memory":
            return JoinCostEstimate(
                "pbsm-grid", 0.0,
                f"{label}, distributed tiles cached (artifact layer)",
            ), 0
        if artifact_state == "disk":
            return JoinCostEstimate(
                "pbsm-grid",
                model.sequential_read_seconds(restore_bytes),
                f"{label}, restores {restore_bytes} persisted tile "
                f"bytes (artifact sidecar)",
            ), 0
        secs = model.sequential_read_seconds(scan_bytes)
        spill = 0
        if self.budget is not None:
            spill = max(0, scan_bytes - self.budget.available_bytes)
        if spill:
            secs += (1.0 + WRITE_FACTOR) * model.sequential_read_seconds(
                spill
            )
            detail = (
                f"{label}, spills ~{spill} of {scan_bytes} tile bytes"
            )
        else:
            detail = f"{label}, tiles fit the memory budget"
        return JoinCostEstimate("pbsm-grid", secs, detail), spill

    def _sssj_estimate_with_runs(
        self, model: CostModel, rel_a: Relation, rel_b: Relation,
        states: List[Tuple[Optional[str], int]],
    ) -> Optional[JoinCostEstimate]:
        """Re-price ``sssj`` when sorted-run artifacts are warm.

        A side whose run is cached in memory contributes nothing — no
        sort, and the sweep scans it straight out of the cache.  A
        side restorable from the sidecar costs one sequential read of
        its persisted run.  Only cold sides pay the full sort-path
        passes.  Returns ``None`` when nothing is warm (the standard
        estimate stands).
        """
        if not any(state for state, _ in states):
            return None
        cold = 0
        secs = 0.0
        labels = []
        for rel, (state, nbytes) in zip((rel_a, rel_b), states):
            if state == "memory":
                labels.append(f"{rel.name}: sorted run in memory")
            elif state == "disk":
                secs += model.sequential_read_seconds(nbytes)
                labels.append(f"{rel.name}: sorted run on disk")
            else:
                cold += rel.data_bytes
        if cold:
            labels.append(f"{cold} bytes sorted cold")
        secs += model.estimate_sssj(cold, 0).io_seconds
        return JoinCostEstimate("SSSJ", secs, "; ".join(labels))

    def _effective_region(self, entry: CatalogEntry,
                          window: Optional[Rect]) -> Optional[Rect]:
        return effective_region(entry.universe, window)

    def _view(self, entry: CatalogEntry, region: Rect) -> Relation:
        return entry.relation(universe=region, with_tree=self.auto_index)

    def _compile_pairwise(
        self,
        query: Query,
        entries: List[CatalogEntry],
        regions: List[Optional[Rect]],
    ) -> PhysicalPlan:
        rel_a = self._view(entries[0], regions[0])
        rel_b = self._view(entries[1], regions[1])
        model = CostModel(self.machine, self.scale)
        candidates = candidate_estimates(
            rel_a, rel_b, self.machine, self.scale
        )
        notes: List[str] = []

        # Sorted-run artifacts make the sort path cheap: re-price the
        # sssj candidate so plan choice can flip toward (or away from)
        # it based on what is warm.
        run_states = [self._sorted_run_state(e) for e in entries]
        warm_sssj = self._sssj_estimate_with_runs(
            model, rel_a, rel_b, run_states
        )
        if warm_sssj is not None:
            candidates = [
                (name, warm_sssj if name == "sssj" else est)
                for name, est in candidates
            ]
            notes.append(
                "sorted-run artifacts warm — sssj priced sort-free "
                f"({warm_sssj.detail})"
            )

        if (rel_a.tree is not None and rel_b.tree is not None
                and query.window is None):
            # Whole-relation joins can ride the engine's warm buffer
            # pool through the synchronized traversal.
            candidates.append((
                "st",
                model.estimate_st(rel_a.tree.page_count,
                                  rel_b.tree.page_count),
            ))
        tile_bytes = rel_a.data_bytes + rel_b.data_bytes
        spill_bytes = 0
        artifact_state, restore_bytes = self._partition_artifact_state(
            entries, regions, query
        )
        if self.workers > 1:
            est, spill_bytes = self._pbsm_estimate(
                model, tile_bytes,
                f"1 partition pass over {tile_bytes} bytes "
                f"x{self.workers} workers",
                artifact_state=artifact_state,
                restore_bytes=restore_bytes,
            )
            candidates.append(("pbsm-grid", est))
            notes.append(
                f"partitioned execution available "
                f"({self.workers}-worker pool stays warm across queries)"
            )
            if artifact_state == "memory":
                notes.append(
                    "distributed tiles cached by a previous run — the "
                    "partition pass is free"
                )
            elif artifact_state == "disk":
                notes.append(
                    "distributed tiles persisted by a previous run — "
                    "the partition pass is one restore read"
                )

        fractions = [
            rel_a.fraction_in(regions[1]),
            rel_b.fraction_in(regions[0]),
        ]
        if not candidates:
            raise ValueError(
                f"no feasible strategy for {query.describe()!r}"
            )
        if query.force is not None:
            strategy = query.force
            priced = dict(candidates)
            if strategy not in priced:
                # Engine strategies excluded from the candidate list
                # (st under a window, pbsm-grid at 1 worker) are still
                # forceable; price them so detail never carries NaN.
                if strategy == "st":
                    priced["st"] = model.estimate_st(
                        entries[0].tree.page_count,
                        entries[1].tree.page_count,
                    )
                elif strategy == "pbsm-grid":
                    est, spill_bytes = self._pbsm_estimate(
                        model, tile_bytes,
                        f"1 partition pass over {tile_bytes} bytes",
                        artifact_state=artifact_state,
                        restore_bytes=restore_bytes,
                    )
                    priced["pbsm-grid"] = est
            estimate = priced.get(
                strategy, JoinCostEstimate(strategy, float("nan"), "forced")
            )
            notes.append("strategy forced by query")
        else:
            strategy, estimate = min(
                candidates, key=lambda c: c[1].io_seconds
            )
        mode = "partitioned" if strategy == "pbsm-grid" else "pairwise"
        return PhysicalPlan(
            query=query,
            mode=mode,
            strategy=strategy,
            estimate=estimate,
            candidates=candidates,
            workers=self.workers if mode == "partitioned" else 1,
            partitions=(
                self.workers * PARTITIONS_PER_WORKER
                if mode == "partitioned" else 1
            ),
            regions=regions,
            fractions=fractions,
            machine=self.machine.name,
            notes=notes,
            memory_bytes=self._budget_total(),
            tile_bytes=tile_bytes if mode == "partitioned" else 0,
            spill_bytes=spill_bytes if mode == "partitioned" else 0,
            min_grant_bytes=min_grant_bytes(2),
        )

    def _compile_self_join(
        self,
        query: Query,
        entries: List[CatalogEntry],
        regions: List[Optional[Rect]],
    ) -> PhysicalPlan:
        """Self-joins always take the partitioned PBSM/sweep path.

        The single input is distributed once into tile partitions and
        each partition is swept against itself; the executor keeps one
        representative per unordered pair (``rid_a < rid_b``), the
        "dedupe the symmetric pair once" rule.  The index and
        sort-based pairwise paths are not defined for identical inputs
        here, so forcing any other strategy is an error.
        """
        if query.force not in (None, "pbsm-grid"):
            raise ValueError(
                f"self-joins execute via pbsm-grid only "
                f"(force={query.force!r} is not supported)"
            )
        entry = entries[0]
        model = CostModel(self.machine, self.scale)
        tile_bytes = entry.stream.data_bytes
        artifact_state, restore_bytes = self._partition_artifact_state(
            entries, regions, query
        )
        estimate, spill_bytes = self._pbsm_estimate(
            model, tile_bytes,
            f"self-join: 1 partition pass over {tile_bytes} bytes",
            artifact_state=artifact_state,
            restore_bytes=restore_bytes,
        )
        return PhysicalPlan(
            query=query,
            mode="partitioned",
            strategy="pbsm-grid",
            estimate=estimate,
            candidates=[("pbsm-grid", estimate)],
            workers=self.workers,
            partitions=self.workers * PARTITIONS_PER_WORKER,
            regions=regions,
            fractions=[1.0, 1.0],
            machine=self.machine.name,
            notes=["self-join: symmetric pairs deduplicated at the sink"],
            memory_bytes=self._budget_total(),
            tile_bytes=tile_bytes,
            spill_bytes=spill_bytes,
            min_grant_bytes=min_grant_bytes(2),
        )

    def _compile_multiway(
        self,
        query: Query,
        entries: List[CatalogEntry],
        regions: List[Optional[Rect]],
    ) -> PhysicalPlan:
        """Price the PQ cascade with the pairwise model, step by step.

        The first step pays the full sort-based cost for both inputs.
        Every later step joins an already-sorted intermediate (Section
        4: cascade outputs arrive sorted and are never re-sorted)
        against the next input, so it pays the next input's sort path
        plus one sequential pass over the intermediate.  Intermediate
        cardinalities come from
        :meth:`SpatialHistogram.estimate_join_pairs`; an intermediate
        tuple is carried forward as if it were its component from the
        later relation, so the chain multiplies by
        ``pairs(k, k+1) / |R_k|`` at each step.
        """
        model = CostModel(self.machine, self.scale)
        hists = self._histograms_on_common_universe(entries)
        sizes = [len(e) for e in entries]
        bytes_of = [n * RECT_BYTES for n in sizes]

        total_io = model.estimate_sssj(bytes_of[0], bytes_of[1]).io_seconds
        card = hists[0].estimate_join_pairs(hists[1])
        cardinalities = [card]
        for k in range(2, len(entries)):
            inter_bytes = int(card) * RECT_BYTES
            total_io += model.estimate_sssj(0, bytes_of[k]).io_seconds
            total_io += model.sequential_read_seconds(inter_bytes)
            card *= hists[k - 1].estimate_join_pairs(hists[k]) / max(
                1, sizes[k - 1]
            )
            cardinalities.append(card)
        estimate = JoinCostEstimate(
            "pq-multiway", total_io,
            f"cascaded pairwise cost over {len(entries)} inputs, "
            f"histogram intermediates ~"
            + " -> ".join(f"{c:.0f}" for c in cardinalities),
        )
        return PhysicalPlan(
            query=query,
            mode="multiway",
            strategy="pq-multiway",
            estimate=estimate,
            regions=regions,
            machine=self.machine.name,
            notes=[
                "multiway joins cascade PQ; intermediate results stay "
                "sorted and are never re-sorted (Section 4)",
                "intermediate cardinalities estimated from spatial "
                "histograms",
            ],
            memory_bytes=self._budget_total(),
            min_grant_bytes=min_grant_bytes(len(entries)),
        )

    def _histograms_on_common_universe(
        self, entries: List[CatalogEntry],
    ) -> List[SpatialHistogram]:
        """Per-entry histograms sharing one universe and grid.

        ``estimate_join_pairs`` requires compatible histograms.  When
        all entries already share a universe their cached catalog
        histograms are reused; otherwise fresh ones are built on the
        union MBR and memoized per (name, version, universe), so
        recompiling the same multiway query is a dict lookup, not an
        O(rects) rebuild.
        """
        universes = {e.universe for e in entries}
        if len(universes) == 1:
            return [e.histogram for e in entries]
        common = entries[0].universe
        for e in entries[1:]:
            common = union_mbr(common, e.universe)
        grid = self.catalog.histogram_grid
        hists = []
        for e in entries:
            key = (e.name, e.version, common)
            hist = self._rebuilt_histograms.get(key)
            if hist is None:
                hist = SpatialHistogram.build(e.rects, common, grid=grid)
                self._rebuilt_histograms[key] = hist
            hists.append(hist)
        return hists
