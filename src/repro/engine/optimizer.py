"""Query -> physical plan, with the paper's cost model in the middle.

The optimizer is the engine-level generalization of
:func:`repro.core.planner.choose_method`: it prices every feasible
strategy for the queried relations (index traversal, mixed, sort-based,
synchronized tree traversal) on the engine's machine, folds the query
window into the selectivity fractions, and emits an explainable
:class:`PhysicalPlan`.  Two strategies exist only at the engine level:

* ``"st"`` — synchronized R-tree traversal through the engine's shared
  LRU buffer pool (priced with :meth:`CostModel.estimate_st`); a warm
  pool across queries is precisely what the one-shot planner cannot
  exploit;
* ``"pbsm-grid"`` — PBSM-style tile partitioning fanned out over the
  executor's worker pool; considered only when the engine runs more
  than one worker, and priced as the single sequential partition pass
  it costs (tiles stay in memory).

``explain()`` renders the full decision — candidates, fractions,
chosen strategy — so a regression in plan choice is a string diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cost_model import CostModel, JoinCostEstimate
from repro.core.planner import Relation, candidate_estimates
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.query import Query
from repro.geom.rect import RECT_BYTES, Rect, intersection
from repro.sim.machines import MachineSpec
from repro.sim.scale import ScaleConfig

#: Tile partitions handed to each worker (over-partitioning smooths the
#: load when tiles are skewed, the classic morsel trick).
PARTITIONS_PER_WORKER = 4


@dataclass
class PhysicalPlan:
    """An executable, explainable join plan."""

    query: Query
    mode: str  # "pairwise" | "partitioned" | "multiway" | "empty"
    strategy: str
    estimate: JoinCostEstimate
    candidates: List[Tuple[str, JoinCostEstimate]] = field(
        default_factory=list
    )
    workers: int = 1
    partitions: int = 1
    #: Effective per-relation regions after clipping to the window.
    regions: List[Optional[Rect]] = field(default_factory=list)
    fractions: List[float] = field(default_factory=list)
    machine: str = ""
    notes: List[str] = field(default_factory=list)

    def explain(self) -> str:
        lines = [
            f"Query   : {self.query.describe()}",
            f"Machine : {self.machine}",
            f"Mode    : {self.mode}"
            + (f"  ({self.workers} workers, {self.partitions} partitions)"
               if self.mode == "partitioned" else ""),
        ]
        if self.fractions:
            fr = ", ".join(
                f"{n}={f:.0%}"
                for n, f in zip(self.query.relations, self.fractions)
            )
            lines.append(f"Participation fractions: {fr}")
        if self.candidates:
            lines.append("Candidates:")
            width = max(len(name) for name, _ in self.candidates)
            for name, est in self.candidates:
                marker = "->" if name == self.strategy else "  "
                lines.append(
                    f"  {marker} {name.ljust(width)}  "
                    f"{est.io_seconds:.4f}s I/O  ({est.detail})"
                )
        lines.append(
            f"Chosen  : {self.strategy} "
            f"(estimated {self.estimate.io_seconds:.4f}s I/O)"
        )
        for note in self.notes:
            lines.append(f"Note    : {note}")
        return "\n".join(lines)


class Optimizer:
    """Compile :class:`Query` objects against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        machine: MachineSpec,
        scale: ScaleConfig,
        workers: int = 1,
        auto_index: bool = True,
    ) -> None:
        self.catalog = catalog
        self.machine = machine
        self.scale = scale
        self.workers = max(1, workers)
        self.auto_index = auto_index

    # -- public ----------------------------------------------------------

    def compile(self, query: Query) -> PhysicalPlan:
        entries = [self.catalog.get(n) for n in query.relations]
        regions = [self._effective_region(e, query.window) for e in entries]
        if any(r is None for r in regions):
            return PhysicalPlan(
                query=query, mode="empty", strategy="empty",
                estimate=JoinCostEstimate("empty", 0.0, "window misses data"),
                regions=regions, machine=self.machine.name,
                notes=["query window does not intersect every relation"],
            )
        if query.is_multiway:
            return self._compile_multiway(query, entries, regions)
        return self._compile_pairwise(query, entries, regions)

    # -- internals -------------------------------------------------------

    def _effective_region(self, entry: CatalogEntry,
                          window: Optional[Rect]) -> Optional[Rect]:
        if window is None:
            return entry.universe
        return intersection(entry.universe, window)

    def _view(self, entry: CatalogEntry, region: Rect) -> Relation:
        return entry.relation(universe=region, with_tree=self.auto_index)

    def _compile_pairwise(
        self,
        query: Query,
        entries: List[CatalogEntry],
        regions: List[Optional[Rect]],
    ) -> PhysicalPlan:
        rel_a = self._view(entries[0], regions[0])
        rel_b = self._view(entries[1], regions[1])
        model = CostModel(self.machine, self.scale)
        candidates = candidate_estimates(
            rel_a, rel_b, self.machine, self.scale
        )
        notes: List[str] = []

        if (rel_a.tree is not None and rel_b.tree is not None
                and query.window is None):
            # Whole-relation joins can ride the engine's warm buffer
            # pool through the synchronized traversal.
            candidates.append((
                "st",
                model.estimate_st(rel_a.tree.page_count,
                                  rel_b.tree.page_count),
            ))
        if self.workers > 1:
            scan_bytes = rel_a.data_bytes + rel_b.data_bytes
            est = JoinCostEstimate(
                "pbsm-grid",
                model.sequential_read_seconds(scan_bytes),
                f"1 partition pass over {scan_bytes} bytes, "
                f"in-memory tiles x{self.workers} workers",
            )
            candidates.append(("pbsm-grid", est))
            notes.append(
                f"partitioned execution available ({self.workers} workers)"
            )

        fractions = [
            rel_a.fraction_in(regions[1]),
            rel_b.fraction_in(regions[0]),
        ]
        if not candidates:
            raise ValueError(
                f"no feasible strategy for {query.describe()!r}"
            )
        if query.force is not None:
            strategy = query.force
            priced = dict(candidates)
            if strategy not in priced:
                # Engine strategies excluded from the candidate list
                # (st under a window, pbsm-grid at 1 worker) are still
                # forceable; price them so detail never carries NaN.
                if strategy == "st":
                    priced["st"] = model.estimate_st(
                        entries[0].tree.page_count,
                        entries[1].tree.page_count,
                    )
                elif strategy == "pbsm-grid":
                    scan_bytes = rel_a.data_bytes + rel_b.data_bytes
                    priced["pbsm-grid"] = JoinCostEstimate(
                        "pbsm-grid",
                        model.sequential_read_seconds(scan_bytes),
                        f"1 partition pass over {scan_bytes} bytes",
                    )
            estimate = priced.get(
                strategy, JoinCostEstimate(strategy, float("nan"), "forced")
            )
            notes.append("strategy forced by query")
        else:
            strategy, estimate = min(
                candidates, key=lambda c: c[1].io_seconds
            )
        mode = "partitioned" if strategy == "pbsm-grid" else "pairwise"
        return PhysicalPlan(
            query=query,
            mode=mode,
            strategy=strategy,
            estimate=estimate,
            candidates=candidates,
            workers=self.workers if mode == "partitioned" else 1,
            partitions=(
                self.workers * PARTITIONS_PER_WORKER
                if mode == "partitioned" else 1
            ),
            regions=regions,
            fractions=fractions,
            machine=self.machine.name,
            notes=notes,
        )

    def _compile_multiway(
        self,
        query: Query,
        entries: List[CatalogEntry],
        regions: List[Optional[Rect]],
    ) -> PhysicalPlan:
        model = CostModel(self.machine, self.scale)
        total_bytes = sum(len(e) * RECT_BYTES for e in entries)
        estimate = JoinCostEstimate(
            "pq-multiway",
            model.estimate_sssj(total_bytes, 0).io_seconds,
            f"cascaded PQ over {len(entries)} inputs (sort-pass bound)",
        )
        return PhysicalPlan(
            query=query,
            mode="multiway",
            strategy="pq-multiway",
            estimate=estimate,
            regions=regions,
            machine=self.machine.name,
            notes=[
                "multiway joins cascade PQ; intermediate results stay "
                "sorted and are never re-sorted (Section 4)"
            ],
        )
