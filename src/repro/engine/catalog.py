"""The engine's relation catalog: register once, query many times.

The one-shot planner of :mod:`repro.core.planner` rebuilds streams,
indexes and histograms for every call.  A serving engine registers each
relation **once**; the catalog materializes the expensive
representations lazily, on first use, and keeps them:

* the base :class:`~repro.storage.stream.Stream` (written on
  registration — the relation's ground truth on disk);
* the R-tree (bulk-loaded on first demand, or loaded from a persisted
  index file via :mod:`repro.rtree.persist`);
* the grid :class:`~repro.core.histogram.SpatialHistogram` feeding the
  optimizer's selectivity fractions.

Every entry carries a monotonically increasing ``version``;
re-registering a name bumps it, which is what invalidates cached query
results (the result cache folds entry versions into its keys).
"""

from __future__ import annotations

import zlib
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.histogram import DEFAULT_GRID, SpatialHistogram
from repro.core.planner import Relation
from repro.geom.rect import Rect, mbr_of
from repro.rtree.bulk_load import bulk_load
from repro.rtree.persist import load_rtree, save_rtree
from repro.rtree.rtree import RTree
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

#: Geometry payload: object id -> polyline (sequence of (x, y) points).
GeometryMap = Dict[int, Sequence[Tuple[float, float]]]


def rects_fingerprint(rects: Sequence[Rect]) -> int:
    """Content identity of a rectangle sequence (CRC32 + size).

    The formula behind :attr:`CatalogEntry.fingerprint`, extracted so
    layers that never build a catalog entry for the *full* relation —
    the sharded scatter layer keys persisted results by the unsharded
    input — derive the identical value for identical data.
    """
    buf = array("d")
    for r in rects:
        buf.extend((r.xlo, r.xhi, r.ylo, r.yhi, float(r.rid)))
    return (zlib.crc32(buf.tobytes()) << 20) | (len(rects) & 0xFFFFF)


class CatalogEntry:
    """One registered relation and its lazily-built representations."""

    def __init__(
        self,
        catalog: "Catalog",
        name: str,
        rects: List[Rect],
        universe: Optional[Rect],
        geometries: Optional[GeometryMap],
        version: int,
    ) -> None:
        self.catalog = catalog
        self.name = name
        self.rects = rects
        self.universe = universe if universe is not None else mbr_of(rects)
        self.geometries = geometries
        self.version = version
        self.by_id: Dict[int, Rect] = {r.rid: r for r in rects}
        self._stream: Optional[Stream] = None
        self._tree: Optional[RTree] = None
        self._histogram: Optional[SpatialHistogram] = None
        self._fingerprint: Optional[int] = None

    # -- lazy representations -------------------------------------------

    @property
    def stream(self) -> Stream:
        """The relation as a closed on-disk stream (built on first use)."""
        if self._stream is None:
            self._stream = Stream.from_rects(
                self.catalog.disk, self.rects, name=self.name
            )
        return self._stream

    @property
    def tree(self) -> RTree:
        """The relation's R-tree, bulk-loaded on first use."""
        if self._tree is None:
            self._tree = bulk_load(
                self.catalog.store, self.rects, name=self.name
            )
            self.catalog.indexes_built += 1
        return self._tree

    @property
    def histogram(self) -> SpatialHistogram:
        if self._histogram is None:
            self._histogram = SpatialHistogram.build(
                self.rects, self.universe, grid=self.catalog.histogram_grid
            )
        return self._histogram

    @property
    def has_tree(self) -> bool:
        return self._tree is not None

    @property
    def fingerprint(self) -> int:
        """Content identity of the registered rectangles (CRC32 + size).

        Catalog *versions* are process-local counters — they identify
        an entry within one engine's lifetime but mean nothing after a
        restart.  The fingerprint is derived from the data itself
        (coordinates and ids, in registration order), so a restarted
        engine that registers the same relation computes the same
        value; the disk artifact store keys on it.  Computed lazily —
        only persistence needs it — and cached for the entry's life
        (entries are immutable; re-registration makes a new entry).
        """
        if self._fingerprint is None:
            self._fingerprint = rects_fingerprint(self.rects)
        return self._fingerprint

    def relation(self, universe: Optional[Rect] = None,
                 with_tree: bool = True) -> Relation:
        """A planner view of this entry.

        ``universe`` overrides the relation's extent (the optimizer
        passes the window-clipped region so selectivity fractions see
        the restricted query).  ``with_tree=False`` prices/executes the
        stream-only paths without triggering a lazy index build.
        """
        return Relation(
            name=self.name,
            stream=self.stream,
            tree=self.tree if (with_tree or self.has_tree) else None,
            universe=universe if universe is not None else self.universe,
            histogram=self.histogram,
        )

    def __len__(self) -> int:
        return len(self.rects)


class Catalog:
    """Name -> :class:`CatalogEntry` registry on one simulated disk."""

    def __init__(self, disk: Disk, store: PageStore,
                 histogram_grid: int = DEFAULT_GRID) -> None:
        self.disk = disk
        self.store = store
        self.histogram_grid = histogram_grid
        self.entries: Dict[str, CatalogEntry] = {}
        self.indexes_built = 0
        self._next_version = 1

    def register(
        self,
        name: str,
        rects: Sequence[Rect],
        universe: Optional[Rect] = None,
        geometries: Optional[GeometryMap] = None,
    ) -> CatalogEntry:
        """(Re-)register a relation; returns the fresh entry.

        Re-registering an existing name replaces the entry under a new
        version, so previously cached results for it become unreachable.
        """
        rect_list = list(rects)
        if not rect_list:
            raise ValueError(f"relation {name!r} has no rectangles")
        entry = CatalogEntry(
            self, name, rect_list, universe, geometries, self._next_version
        )
        self._next_version += 1
        self.entries[name] = entry
        return entry

    def get(self, name: str) -> CatalogEntry:
        try:
            return self.entries[name]
        except KeyError:
            known = ", ".join(sorted(self.entries)) or "<empty catalog>"
            raise KeyError(
                f"unknown relation {name!r}; registered: {known}"
            ) from None

    def drop(self, name: str) -> None:
        self.get(name)
        del self.entries[name]

    def names(self) -> List[str]:
        return sorted(self.entries)

    def versions_of(self, names: Sequence[str]) -> Tuple[Tuple[str, int], ...]:
        """(name, version) pairs — the catalog part of a cache key."""
        return tuple((n, self.get(n).version) for n in names)

    # -- index persistence ----------------------------------------------

    def save_index(self, name: str, path: str) -> None:
        """Persist a relation's R-tree (building it first if needed)."""
        save_rtree(self.get(name).tree, path)

    def load_index(self, name: str, path: str) -> RTree:
        """Attach a persisted R-tree to a registered relation.

        Skips the lazy bulk load: the pages land in the catalog's store
        via :func:`repro.rtree.persist.load_rtree`.
        """
        entry = self.get(name)
        entry._tree = load_rtree(self.store, path, name=name)
        return entry._tree
