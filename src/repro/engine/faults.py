"""Deterministic fault injection for chaos-testing the serving stack.

A replicated sharded engine only earns its availability story if the
failure paths actually run — and they never run in a healthy test
environment.  :class:`FaultPlan` makes failure a first-class, *seeded*
input: a list of :class:`FaultRule` triggers ("the 3rd task on this
pool raises", "the first artifact load reads a flipped byte") that the
:class:`~repro.engine.pool.WorkerPool`,
:class:`~repro.engine.artifacts.ArtifactStore` and
:class:`~repro.engine.shard.ShardedEngine` consult at well-defined
**sites**.  The plan is plain state + an optional seeded RNG, so the
same plan object replays the same fault schedule — chaos runs are
reproducible in tests and CI, not flaky.

Sites and the fault kinds they honour:

``pool.task``
    Wraps a submitted task.  ``exception`` raises
    :class:`InjectedFault` from the task body (propagates to the
    caller like any worker bug — a replicated scatter fails over);
    ``crash`` kills the worker process (``os._exit``) on a real
    process pool, or raises :class:`InjectedCrash` — a
    ``BrokenExecutor`` — on thread/serial pools, exercising the
    broken-pool demotion path either way; ``slow`` sleeps
    ``delay_seconds`` before running the task unchanged.
``pool.submit``
    ``break`` makes the submission behave as if the executor were
    found broken: the pool demotes its kind, tears the executor down
    and recomputes the task inline (the exact degraded path a dead
    worker triggers at submit time).
``shard.execute``
    ``exception`` raises :class:`InjectedFault` *before* the chosen
    replica runs the sub-query — a whole-replica outage from the
    scatter layer's point of view; ``slow`` sleeps first (tripping the
    replica-timeout health penalty) and then runs normally.
``artifact.save`` / ``artifact.load``
    ``corrupt`` flips one payload byte in the just-written / about-to-
    be-read ``.art`` file, so the store's CRC verification fires and
    the query degrades to a cold run (never a wrong answer).
``result.save`` / ``result.load``
    Same, for persisted result-cache entries.
``serve.queue``
    Consulted when the serving front-end admits one query.
    ``exception`` fails the admission (the caller sees an error
    response, never a hang); ``slow`` delays the grant attempt, which
    under load turns into real queueing pressure.
``serve.deadline``
    Consulted when a granted query is about to dispatch.  ``exception``
    forces the deadline-expired path (grant released, query never
    reaches the engine); ``slow`` burns queue-to-dispatch time first,
    the way a stalled event loop would.

Rules fire deterministically: each rule counts the calls that reach
its site (``seen``), skips the first ``after`` of them, then fires up
to ``times`` times (``times=None`` fires forever).  ``probability``
below 1.0 draws from the plan's seeded RNG — still reproducible for a
fixed seed and call order.  ``match`` restricts a rule to calls whose
attributes contain a substring (e.g. ``match="shard=1"`` faults only
shard 1's replicas), which is how a test kills *one specific replica*.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

FAULT_SITES = (
    "pool.task",
    "pool.submit",
    "shard.execute",
    "artifact.save",
    "artifact.load",
    "result.save",
    "result.load",
    "serve.queue",
    "serve.deadline",
)

FAULT_KINDS = ("exception", "crash", "slow", "break", "corrupt")

#: Which kinds make sense where; ``FaultPlan`` rejects the rest up
#: front so a typo'd plan fails at construction, not silently.
_SITE_KINDS = {
    "pool.task": ("exception", "crash", "slow"),
    "pool.submit": ("break",),
    "shard.execute": ("exception", "slow"),
    "artifact.save": ("corrupt",),
    "artifact.load": ("corrupt",),
    "result.save": ("corrupt",),
    "result.load": ("corrupt",),
    "serve.queue": ("exception", "slow"),
    "serve.deadline": ("exception", "slow"),
}


class InjectedFault(RuntimeError):
    """A deliberate task/replica failure raised by a fault rule."""


class InjectedCrash(BrokenExecutor):
    """A deliberate worker 'crash' for pools with no process to kill.

    Subclasses :class:`concurrent.futures.BrokenExecutor` so the
    executor's gather treats it exactly like a real dead worker:
    broken-pool demotion plus inline recovery of the lost task.
    """


@dataclass
class FaultRule:
    """One trigger: at ``site``, inject ``kind`` on selected calls."""

    site: str
    kind: str
    #: How many times to fire (None = every matching call forever).
    times: Optional[int] = 1
    #: Matching calls to let pass before the first firing.
    after: int = 0
    #: Firing probability once eligible (1.0 = deterministic).
    probability: float = 1.0
    #: Sleep injected by ``slow`` kinds, seconds.
    delay_seconds: float = 0.05
    #: Substring that must appear in the call's rendered attributes
    #: (``"key=value"`` tokens) for the rule to consider the call.
    match: Optional[str] = None
    # -- runtime state (owned by the plan's lock) ----------------------
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {FAULT_SITES}"
            )
        if self.kind not in _SITE_KINDS[self.site]:
            raise ValueError(
                f"fault kind {self.kind!r} is not valid at "
                f"{self.site!r}; expected one of "
                f"{_SITE_KINDS[self.site]}"
            )
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0 or None")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def snapshot(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "kind": self.kind,
            "times": self.times,
            "after": self.after,
            "probability": self.probability,
            "match": self.match,
            "seen": self.seen,
            "fired": self.fired,
        }


class FaultPlan:
    """A seeded schedule of fault rules, consulted at injection sites.

    Thread-safe: a shared worker pool consults the plan from several
    coordinator threads, and rule counters must not race.  The plan is
    intended to be shared by every component of one deployment (pool,
    stores, scatter layer), so one plan describes one chaos scenario.
    """

    def __init__(self, rules: Sequence[FaultRule] = (),
                 seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._rng = Random(seed)
        self._lock = threading.Lock()
        #: ``"site:kind" -> count`` of faults actually injected.
        self.injected: Dict[str, int] = {}

    @classmethod
    def from_json(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a JSON list of rule objects.

        The CLI surface: ``--faults '[{"site": "pool.task", "kind":
        "crash"}]'``.  Unknown keys are rejected so a misspelled field
        cannot silently disable a rule.
        """
        data = json.loads(text)
        if not isinstance(data, list):
            raise ValueError("fault plan JSON must be a list of rules")
        allowed = {"site", "kind", "times", "after", "probability",
                   "delay_seconds", "match"}
        rules = []
        for obj in data:
            if not isinstance(obj, dict):
                raise ValueError("each fault rule must be an object")
            unknown = set(obj) - allowed
            if unknown:
                raise ValueError(
                    f"unknown fault rule keys: {sorted(unknown)}"
                )
            rules.append(FaultRule(**obj))
        return cls(rules, seed=seed)

    def fire(self, site: str, **attrs) -> Optional[FaultRule]:
        """The rule injecting at this call, or None to proceed cleanly.

        At most one rule fires per call (first declared wins), so a
        plan listing several rules for one site spreads them over
        successive calls via their ``after``/``times`` windows.
        """
        if not self.rules:
            return None
        rendered = None
        with self._lock:
            for rule in self.rules:
                if rule.site != site:
                    continue
                if rule.match is not None:
                    if rendered is None:
                        rendered = " ".join(
                            f"{k}={v}" for k, v in sorted(attrs.items())
                        )
                    if rule.match not in rendered:
                        continue
                rule.seen += 1
                if rule.seen <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                if (rule.probability < 1.0
                        and self._rng.random() >= rule.probability):
                    continue
                rule.fired += 1
                key = f"{site}:{rule.kind}"
                self.injected[key] = self.injected.get(key, 0) + 1
                return rule
        return None

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "rules": [r.snapshot() for r in self.rules],
                "injected": dict(self.injected),
            }


def corrupt_file(path: str) -> bool:
    """Flip the last byte of ``path`` in place (checksum poison).

    The artifact codec's CRC32 covers the whole body, so flipping any
    body byte makes the next verified read fail and take the
    corrupt-drop path.  The *last* byte is always body (the header is
    line one), so this needs no knowledge of the file layout.  Returns
    False when the file is missing or empty.
    """
    try:
        with open(path, "r+b") as fh:
            fh.seek(0, 2)
            size = fh.tell()
            if size == 0:
                return False
            fh.seek(size - 1)
            last = fh.read(1)
            fh.seek(size - 1)
            fh.write(bytes([last[0] ^ 0xFF]))
        return True
    except OSError:
        return False
