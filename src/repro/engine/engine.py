"""The serving facade: catalog + optimizer + executor + caches + metrics.

:class:`SpatialQueryEngine` is the persistent layer the one-shot
experiment runner never needed: register relations once, then serve an
arbitrary stream of :class:`~repro.engine.query.Query` objects.  Every
query flows

    cache lookup -> optimize (cost model) -> execute -> cache fill

and the engine accounts for each stage: simulated I/O and CPU seconds
on the engine's machine (with the partitioned executor's parallel CPU
savings applied), raw page/byte counters, result-cache and buffer-pool
hit rates — all visible through ``metrics_snapshot()``.

The engine deliberately owns its whole simulated hardware stack
(environment, disk, page store, LRU buffer pool), so two engines never
share counters and a long-lived engine's buffer pool stays warm across
queries — the serving advantage the paper's one-shot experiments could
not show.

It also owns one :class:`~repro.engine.resources.ResourceBudget` — by
default the paper's internal-memory grant plus the ST buffer pool
(Section 5.1's 24 MB + 22 MB, scaled) — attached to the environment so
every layer of *execution* charges the same ledger: the buffer pool's
resident pages, external sorts' run-formation chunks, and the
partitioned executor's tile grants (with disk spill beyond them).
Result memory is governed separately by the size-aware cache's own
byte bound.  Queries whose minimum grant exceeds the whole budget are
refused up front (:class:`~repro.engine.resources.AdmissionError`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.core.join_result import JoinResult
from repro.engine.artifacts import ArtifactStore, check_store_layout
from repro.engine.faults import FaultPlan
from repro.engine.cache import ArtifactCache, ResultCache
from repro.engine.catalog import Catalog, GeometryMap
from repro.engine.executor import (
    DEFAULT_MIN_SHIP_RECTS,
    DEFAULT_TILE_BATCH_BYTES,
    DEFAULT_TILES_PER_SIDE,
    Executor,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.obs import SlowQueryLog
from repro.engine.optimizer import Optimizer, PhysicalPlan, PlanActuals
from repro.engine.pool import DeadlineExceeded, WorkerPool
from repro.engine.query import Query
from repro.engine.resources import AdmissionError, ResourceBudget
from repro.engine.trace import Span, span_meter
from repro.geom.rect import Rect
from repro.sim.env import SimEnv
from repro.sim.machines import MACHINE_3, MachineSpec
from repro.sim.scale import DEFAULT_SCALE, ScaleConfig
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

#: Results larger than this many pairs are served but not cached (a
#: result cache must not become an accidental copy of the data).
MAX_CACHED_PAIRS = 250_000


def _copy_result(result: JoinResult) -> JoinResult:
    """A structurally independent copy (pairs and detail are fresh)."""
    return replace(
        result,
        pairs=list(result.pairs) if result.pairs is not None else None,
        detail=dict(result.detail),
    )


def flatten_cache_keys(artifacts: dict, budget: dict,
                       store_snapshot: Optional[dict] = None) -> dict:
    """Artifact-cache and budget snapshots as serving-snapshot keys.

    One flattening shared by :meth:`SpatialQueryEngine.metrics_snapshot`
    and :meth:`ShardedEngine.metrics_snapshot` (whose inputs are shard
    sums), so single-engine and sharded reports stay key-compatible —
    a counter added here appears in both.
    """
    return {
        "artifact_cache_entries": artifacts["entries"],
        "artifact_cache_bytes": artifacts["bytes"],
        "artifact_cache_hits": artifacts["hits"],
        "artifact_cache_misses": artifacts["misses"],
        "artifact_cache_hit_rate": artifacts["hit_rate"],
        "artifact_cache_evictions": artifacts["evictions"],
        "artifact_cache_invalidations": artifacts["invalidations"],
        "artifact_kinds": artifacts["kinds"],
        "artifact_disk_restores": artifacts["disk_restores"],
        "artifact_disk_restore_bytes": artifacts["disk_restore_bytes"],
        "artifact_store": store_snapshot,
        "budget_total_bytes": budget["total_bytes"],
        "budget_in_use_bytes": budget["in_use_bytes"],
        "budget_high_water_bytes": budget["high_water_bytes"],
        "budget_high_water_by_category":
            budget["high_water_by_category"],
        "budget_overcommits": budget["overcommits"],
    }


def flatten_result_cache_keys(cache: "ResultCache") -> dict:
    """A result cache's gauges as serving-snapshot keys (shared too)."""
    return {
        "result_cache_entries": len(cache),
        "result_cache_bytes": cache.bytes_used,
        "result_cache_hits": cache.hits,
        "result_cache_misses": cache.misses,
        "result_cache_hit_rate": cache.hit_rate,
        "result_cache_evictions": cache.evictions,
        "result_cache_invalidations": cache.invalidations,
    }


@dataclass
class EngineResult:
    """What ``execute`` hands back: the join result plus provenance."""

    query: Query
    result: JoinResult
    plan: Optional[PhysicalPlan]
    from_cache: bool
    wall_seconds: float
    sim_wall_seconds: float
    trace: Optional[Span] = None


class SpatialQueryEngine:
    """A persistent spatial-join serving layer over the repro stack."""

    #: ``execute`` is not reentrant: the env page counter, metrics and
    #: result cache are mutated without locks.  Concurrent deployments
    #: must serialize calls (the serving front-end does) or shard
    #: (``ShardedEngine`` holds one lock per replica engine).
    execute_thread_safe = False

    def __init__(
        self,
        scale: ScaleConfig = DEFAULT_SCALE,
        machine: MachineSpec = MACHINE_3,
        workers: int = 1,
        cache_capacity: int = 64,
        auto_index: bool = True,
        histogram_grid: int = 32,
        memory_bytes: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        pool_kind: str = "process",
        min_ship_rects: int = DEFAULT_MIN_SHIP_RECTS,
        artifact_cache_bytes: Optional[int] = None,
        artifact_dir: Optional[str] = None,
        tile_batch_bytes: int = DEFAULT_TILE_BATCH_BYTES,
        worker_pool: Optional[WorkerPool] = None,
        trace: bool = False,
        slow_log_capacity: Optional[int] = None,
        slow_threshold_seconds: float = 0.0,
        kernel: str = "auto",
        shm_min_bytes: Optional[int] = None,
        inline_plan_ops: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.scale = scale
        self.machine = machine
        self.workers = max(1, workers)
        # The enforced internal-memory contract.  The default mirrors
        # the paper's Section 5.1 split: the algorithms' memory grant
        # plus the tree join's LRU pool, both already scaled.
        self.budget = ResourceBudget(
            memory_bytes if memory_bytes is not None
            else scale.memory_bytes + scale.buffer_pool_bytes
        )
        self.env = SimEnv(scale=scale, machines=(machine,))
        self.env.budget = self.budget
        self.disk = Disk(self.env)
        self.store = PageStore(self.disk, scale.index_page_bytes)
        self.pool = BufferPool(
            self.store, scale.buffer_pool_pages, budget=self.budget
        )
        self.catalog = Catalog(
            self.disk, self.store, histogram_grid=histogram_grid
        )
        # The persistent worker pool (process-based by default) and the
        # artifact cache are engine-lived: the pool is created lazily
        # on the first shipped task and reused by every query;
        # artifacts (distributed tiles and sorted runs) occupy only
        # free budget bytes and are evicted before they could ever
        # starve a tile grant.  ``artifact_cache_bytes=0`` disables
        # artifact reuse; ``artifact_dir`` additionally persists
        # artifacts to a content-keyed sidecar there, so a restarted
        # engine pointed at the same directory restores its warm state
        # lazily on first touch.
        #
        # ``worker_pool`` shares an externally-owned pool (a sharded
        # catalog runs many engines on one pool); the engine then holds
        # a ref-counted client handle, so ``close()`` releases its ref
        # rather than tearing down a pool a sibling engine still uses.
        # When a pool is shared, ``pool_kind`` is ignored (the pool
        # already has a kind).
        self.worker_pool = (
            worker_pool if worker_pool is not None
            else WorkerPool(self.workers, kind=pool_kind, faults=faults)
        ).client()
        self.faults = faults
        self.artifacts = ArtifactCache(
            budget=self.budget, max_bytes=artifact_cache_bytes,
        )
        if artifact_dir:
            # A single engine must not be pointed at the *root* of a
            # sharded tree (tokens would never match and the files
            # would interleave); ShardedEngine hands its per-replica
            # engines leaf subdirectories, which pass this check.
            check_store_layout(artifact_dir, sharded=False)
        self.artifact_store = (
            ArtifactStore(artifact_dir, faults=faults)
            if artifact_dir else None
        )
        self.optimizer = Optimizer(
            self.catalog, machine, scale,
            workers=self.workers, auto_index=auto_index,
            budget=self.budget,
            artifacts=self.artifacts,
            tiles_per_side=DEFAULT_TILES_PER_SIDE,
            store=self.artifact_store,
        )
        # ``kernel`` selects the sweep implementation ("auto" resolves
        # to numpy when importable; results are bit-identical either
        # way).  ``shm_min_bytes`` tunes zero-copy tile shipping on
        # process pools: None keeps the executor default, negative
        # disables shared memory entirely (tiles pickle as before).
        # ``inline_plan_ops`` tunes cost-aware dispatch (repeat plans
        # measured cheaper than a pool round-trip sweep inline): None
        # keeps the executor default, 0 disables the memo.
        extra = {}
        if shm_min_bytes is not None:
            extra["shm_min_bytes"] = shm_min_bytes
        if inline_plan_ops is not None:
            extra["inline_plan_ops"] = inline_plan_ops
        self.executor = Executor(
            self.disk, machine, pool=self.pool, budget=self.budget,
            worker_pool=self.worker_pool, artifacts=self.artifacts,
            min_ship_rects=min_ship_rects,
            tile_batch_bytes=tile_batch_bytes,
            store=self.artifact_store,
            kernel=kernel,
            **extra,
        )
        self.kernel = self.executor.kernel
        # The cache governs result memory with its own byte ledger
        # (``cache_bytes``); the execution budget above stays dedicated
        # to algorithm memory, as in the paper's Section 5.1 split.
        self.cache = ResultCache(
            capacity=cache_capacity, max_bytes=cache_bytes,
        )
        self.metrics = EngineMetrics()
        # Observability.  ``trace`` turns on per-query span trees; the
        # slow-query log keeps the N worst traces (it also works with
        # tracing off, logging latencies without trees).  Both are off
        # by default so the serving hot path stays allocation-free.
        self.tracing = bool(trace)
        if slow_log_capacity is None:
            slow_log_capacity = 8 if self.tracing else 0
        self.slow_log = (
            SlowQueryLog(slow_log_capacity, slow_threshold_seconds)
            if slow_log_capacity > 0 else None
        )
        self.last_trace: Optional[Span] = None

    # -- catalog management ----------------------------------------------

    def register(
        self,
        name: str,
        rects: Sequence[Rect],
        universe: Optional[Rect] = None,
        geometries: Optional[GeometryMap] = None,
    ) -> None:
        """(Re-)register a relation and invalidate its cached results."""
        self.catalog.register(
            name, rects, universe=universe, geometries=geometries
        )
        self.cache.invalidate_relation(name)
        self.artifacts.invalidate_relation(name)

    def drop(self, name: str) -> None:
        self.catalog.drop(name)
        self.cache.invalidate_relation(name)
        self.artifacts.invalidate_relation(name)

    def universe_of(self, name: str) -> Rect:
        """A relation's registered universe (shared with ShardedEngine)."""
        return self.catalog.get(name).universe

    def prepare(self, *names: str) -> None:
        """Force-build streams, indexes and histograms now.

        The catalog builds lazily, which charges the build to the first
        query that needs it; benchmark-style callers prepare up front so
        every measured query starts from built representations, like
        the paper's build-once-measure-many runner.
        """
        for name in (names or self.catalog.names()):
            entry = self.catalog.get(name)
            entry.stream, entry.tree, entry.histogram  # noqa: B018
        # Boot the worker pool alongside the data structures: forking
        # the workers belongs to the build phase, not to whichever
        # query happens to be the first partitioned one.
        self.worker_pool.prestart()
        # Likewise, restore-heavy restarts should not pay the sidecar
        # reads on the first queries: stage the manifest's hottest
        # artifacts in the background while traffic ramps.
        if self.artifact_store is not None:
            self.artifact_store.start_prewarm()

    # -- serving ---------------------------------------------------------

    def execute(self, query: Query, analyze: bool = False,
                cancel: Optional[Callable[[], None]] = None,
                ) -> EngineResult:
        # ``cancel`` is a cooperative cancellation checkpoint (see
        # ShardedEngine.execute), honoured at entry and forwarded into
        # the executor, whose partitioned path checks it per gathered
        # task — and ships a CancelToken inside every pool payload so
        # workers stop at tile boundaries too.
        if cancel is not None:
            cancel()
        t_start = time.perf_counter()
        trace = (
            Span("query", query=query.describe(), engine="single")
            if self.tracing else None
        )
        key = (query.canonical(),
               self.catalog.versions_of(query.relations))
        cached = self.cache.get(key)
        if cached is not None:
            result = _copy_result(cached)
            result.detail["cache_hit"] = True
            hit_wall = time.perf_counter() - t_start
            self.metrics.record_hit(cached.n_pairs, hit_wall)
            if trace is not None:
                lookup = trace.child("lookup", hit=True)
                lookup.wall_seconds = hit_wall
                trace.wall_seconds = hit_wall
                trace.attrs["pairs"] = cached.n_pairs
            self._observe_query(query, hit_wall, 0.0, trace, True)
            return EngineResult(
                query=query, result=result, plan=None, from_cache=True,
                wall_seconds=hit_wall, sim_wall_seconds=0.0,
                trace=trace,
            )

        # Snapshot counters before compiling: plan-time lazy builds
        # (streams, indexes, histograms) are charged to the query that
        # triggered them, as the catalog's laziness contract promises.
        obs = self.env.observer_for(self.machine)
        before = (
            self.env.page_reads, self.env.page_writes,
            self.env.bytes_read, self.env.bytes_written,
            self.env.cpu_ops, obs.io_seconds, obs.cpu_seconds,
        )
        t0 = time.perf_counter()
        if trace is not None:
            lookup = trace.child("lookup", hit=False)
            lookup.wall_seconds = t0 - t_start
        with span_meter(self.env, self.machine, trace, "plan") as pspan:
            plan = self.optimizer.compile(query)
            if pspan is not None:
                pspan.attrs["strategy"] = plan.strategy
        if plan.min_grant_bytes > self.budget.total_bytes:
            # Admission control: even with maximal spilling this query
            # could not run under the engine's memory contract; refuse
            # it instead of degrading every other query.
            self.metrics.record_rejection()
            raise AdmissionError(
                f"query {query.describe()!r} needs a minimum grant of "
                f"{plan.min_grant_bytes} bytes but the engine budget is "
                f"{self.budget.total_bytes} bytes"
            )
        with span_meter(self.env, self.machine, trace, "execute",
                        strategy=plan.strategy) as espan:
            try:
                result = self.executor.execute(plan, self.catalog,
                                               trace=espan,
                                               cancel=cancel)
            except DeadlineExceeded:
                self.metrics.record_cancellation()
                raise
        wall = time.perf_counter() - t0

        d_pages_r = self.env.page_reads - before[0]
        d_pages_w = self.env.page_writes - before[1]
        d_bytes_r = self.env.bytes_read - before[2]
        d_bytes_w = self.env.bytes_written - before[3]
        d_cpu_ops = self.env.cpu_ops - before[4]
        d_io = obs.io_seconds - before[5]
        d_cpu = obs.cpu_seconds - before[6]
        # Partitioned plans overlap sweep CPU across workers; the
        # executor reports how many CPU-seconds the overlap hides.
        saved = float(result.detail.get("parallel_cpu_seconds_saved", 0.0))
        sim_wall = d_io + max(0.0, d_cpu - saved)

        strategy = str(result.detail.get("strategy", plan.strategy))
        self.metrics.record_execution(
            strategy=strategy,
            n_pairs=result.n_pairs,
            pages_read=d_pages_r, pages_written=d_pages_w,
            bytes_read=d_bytes_r, bytes_written=d_bytes_w,
            cpu_ops=d_cpu_ops,
            sim_io_seconds=d_io, sim_cpu_seconds=d_cpu,
            sim_wall_seconds=sim_wall, wall_seconds=wall,
            spilled_rects=int(result.detail.get("spilled_rects", 0)),
            artifact_restores=int(
                result.detail.get("artifact_restores", 0)
            ),
            artifact_restore_bytes=int(
                result.detail.get("artifact_restore_bytes", 0)
            ),
        )
        self.metrics.record_estimate(
            strategy, plan.estimate.io_seconds, d_io
        )
        if analyze:
            # EXPLAIN ANALYZE contract: the actuals attached to the
            # plan are the exact deltas just fed to the metrics, so
            # ``plan.explain()`` and ``metrics_snapshot()`` can never
            # disagree about what a query cost.
            plan.actuals = PlanActuals(
                pages_read=d_pages_r, pages_written=d_pages_w,
                bytes_read=d_bytes_r, bytes_written=d_bytes_w,
                cpu_ops=d_cpu_ops,
                sim_io_seconds=d_io, sim_cpu_seconds=d_cpu,
                sim_wall_seconds=sim_wall, wall_seconds=wall,
                pairs=result.n_pairs,
                spilled_rects=int(result.detail.get("spilled_rects", 0)),
                artifact_restores=int(
                    result.detail.get("artifact_restores", 0)
                ),
                artifact_restore_bytes=int(
                    result.detail.get("artifact_restore_bytes", 0)
                ),
            )
        if result.pairs is None or len(result.pairs) <= MAX_CACHED_PAIRS:
            # Cache a private copy: the caller owns the returned object
            # and may mutate it without corrupting future hits.
            with span_meter(self.env, self.machine, trace, "finalize"):
                self.cache.put(key, _copy_result(result))
        total_wall = time.perf_counter() - t_start
        if trace is not None:
            # The root span carries the whole query's deltas — the same
            # numbers record_execution saw — so summing a trace always
            # reconciles with the metrics snapshot.
            trace.wall_seconds = total_wall
            trace.pages_read = d_pages_r
            trace.pages_written = d_pages_w
            trace.bytes_read = d_bytes_r
            trace.bytes_written = d_bytes_w
            trace.cpu_ops = d_cpu_ops
            trace.sim_io_seconds = d_io
            trace.sim_cpu_seconds = d_cpu
            trace.attrs.update({
                "strategy": strategy,
                "pairs": result.n_pairs,
                "sim_wall_seconds": sim_wall,
            })
        self._observe_query(query, total_wall, sim_wall, trace, False)
        return EngineResult(
            query=query, result=result, plan=plan, from_cache=False,
            wall_seconds=wall, sim_wall_seconds=sim_wall, trace=trace,
        )

    def _observe_query(self, query: Query, wall: float, sim_wall: float,
                       trace: Optional[Span], from_cache: bool) -> None:
        if trace is not None:
            self.last_trace = trace
        if self.slow_log is not None:
            self.slow_log.offer(
                query.describe(), wall, sim_wall,
                trace=trace, from_cache=from_cache,
            )

    def explain_analyze(self, query: Query) -> str:
        """Execute the query and return its plan annotated with actuals.

        The cache is bypassed on lookup (a hit would have no plan to
        annotate) but still filled, so EXPLAIN ANALYZE warms the cache
        like any served query.
        """
        key = (query.canonical(),
               self.catalog.versions_of(query.relations))
        self.cache.pop(key)
        out = self.execute(query, analyze=True)
        assert out.plan is not None
        return out.plan.explain()

    def explain(self, query: Query) -> str:
        """The physical plan as text, without executing the join.

        Pricing the index paths needs page counts, so explaining a
        query on an unprepared catalog can trigger the same lazy
        stream/index/histogram builds planning does.  That build I/O is
        charged to the environment but to no query — the per-query
        metrics invariant covers ``execute`` only.  Call
        :meth:`prepare` first for a side-effect-free explain.
        """
        return self.optimizer.compile(query).explain()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release this engine's worker-pool ref; it stays queryable.

        The engine holds a ref-counted client on its pool: closing
        releases that ref, and the pool's executor stops only when the
        last client lets go — so closing one engine never tears a
        *shared* pool out from under a sibling shard.  The executor is
        recreated lazily if another partitioned query arrives, so
        ``close`` is safe to call eagerly (tests, short scripts);
        long-lived servers call it on drain.  Also usable as a context
        manager.
        """
        self.worker_pool.release()

    def __enter__(self) -> "SpatialQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability ---------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Engine + cache + buffer-pool + budget counters in one dict."""
        snap = self.metrics.snapshot()
        snap["kernel"] = self.kernel
        snap["worker_pool"] = self.worker_pool.snapshot()
        snap["slow_query_log"] = (
            self.slow_log.snapshot()
            if self.slow_log is not None else None
        )
        snap.update(flatten_cache_keys(
            self.artifacts.snapshot(), self.budget.snapshot(),
            self.artifact_store.snapshot()
            if self.artifact_store is not None else None,
        ))
        snap.update(flatten_result_cache_keys(self.cache))
        snap.update({
            "buffer_pool_requests": self.pool.requests,
            "buffer_pool_hit_rate": self.pool.hit_rate,
            "buffer_pool_evictions": self.pool.evictions,
            "buffer_pool_resident_pages": self.pool.resident_pages,
            "indexes_built": self.catalog.indexes_built,
            "relations": self.catalog.names(),
        })
        return snap
