"""repro.engine — the persistent spatial query serving layer.

The paper's algorithms (and :mod:`repro.core.planner`'s cost-based
choice between them) are one-shot functions; this package wraps them in
the subsystem a production deployment needs:

* :class:`~repro.engine.catalog.Catalog` — register relations once;
  streams, R-trees and histograms are built lazily and reused;
* :class:`~repro.engine.query.Query` — declarative pairwise/multiway
  join requests with optional window and refinement;
* :class:`~repro.engine.optimizer.Optimizer` — explainable physical
  plans priced by the paper's :class:`~repro.core.cost_model.CostModel`;
* :class:`~repro.engine.executor.Executor` — plan execution, including
  PBSM-style tile-partitioned parallel joins on a worker pool;
* :class:`~repro.engine.cache.ResultCache` — size-aware LRU result
  cache keyed by query fingerprint + catalog versions;
* :class:`~repro.engine.resources.ResourceBudget` — the enforced
  internal-memory contract shared by every layer (grants, spill,
  admission control, high-water accounting);
* :class:`~repro.engine.engine.SpatialQueryEngine` — the facade tying
  it together, with serving metrics;
* :class:`~repro.engine.shard.ShardedEngine` — scatter/gather serving
  over N engine shards (spatial-strip partitioning with boundary
  replication) sharing one ref-counted
  :class:`~repro.engine.pool.WorkerPool`, with R replica engines per
  shard and health-scored failover between them;
* :class:`~repro.engine.faults.FaultPlan` — deterministic fault
  injection (worker crashes, task exceptions, slow tasks, corrupt
  artifacts, pool breakage, admission/deadline faults) threaded
  through the pool, the stores and the serving front-end;
* :class:`~repro.engine.serve.ServingFrontend` — the concurrent
  admission layer: per-class budget grants with a bounded parking
  queue, oldest-batch-first load shedding, per-query deadlines with
  cooperative cancellation, and a stdlib HTTP endpoint
  (:func:`~repro.engine.serve.serve_http`).

Quick start::

    from repro.engine import Query, SpatialQueryEngine

    engine = SpatialQueryEngine(workers=4)
    engine.register("roads", road_rects)
    engine.register("hydro", hydro_rects)
    out = engine.execute(Query(relations=("roads", "hydro")))
    print(out.result.n_pairs, engine.metrics_snapshot())
"""

from repro.engine.artifacts import ArtifactStore, ResultStore
from repro.engine.cache import (
    ArtifactCache,
    PartitionArtifactCache,
    ResultCache,
)
from repro.engine.catalog import Catalog, CatalogEntry
from repro.engine.engine import EngineResult, SpatialQueryEngine
from repro.engine.executor import Executor
from repro.engine.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
)
from repro.engine.metrics import (
    EngineMetrics,
    LatencyTracker,
    merge_snapshots,
)
from repro.engine.obs import (
    SlowQueryLog,
    render_json,
    render_prometheus,
    validate_prometheus,
    validate_trace,
)
from repro.engine.optimizer import Optimizer, PhysicalPlan, PlanActuals
from repro.engine.pool import PoolClient, WorkerPool
from repro.engine.query import Query
from repro.engine.resources import (
    AdmissionError,
    ResourceBudget,
    ResourceGrant,
)
from repro.engine.serve import (
    DeadlineExceeded,
    ServeResponse,
    ServingFrontend,
    serve_http,
)
from repro.engine.shard import ShardedEngine, lpt_makespan
from repro.engine.trace import EnvMeter, Span, span_meter
from repro.engine.workload import (
    engine_for_dataset,
    make_workload,
    run_concurrent_workload,
    run_workload,
    sharded_engine_for_dataset,
)

__all__ = [
    "AdmissionError",
    "ArtifactCache",
    "ArtifactStore",
    "Catalog",
    "CatalogEntry",
    "DeadlineExceeded",
    "EngineMetrics",
    "EngineResult",
    "EnvMeter",
    "Executor",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "LatencyTracker",
    "Optimizer",
    "PartitionArtifactCache",
    "PhysicalPlan",
    "PlanActuals",
    "PoolClient",
    "Query",
    "SlowQueryLog",
    "Span",
    "WorkerPool",
    "ResourceBudget",
    "ResourceGrant",
    "ResultCache",
    "ResultStore",
    "ServeResponse",
    "ServingFrontend",
    "ShardedEngine",
    "SpatialQueryEngine",
    "engine_for_dataset",
    "lpt_makespan",
    "make_workload",
    "merge_snapshots",
    "render_json",
    "render_prometheus",
    "run_concurrent_workload",
    "run_workload",
    "serve_http",
    "sharded_engine_for_dataset",
    "span_meter",
    "validate_prometheus",
    "validate_trace",
]
