"""Size-aware LRU result cache keyed by query fingerprint + versions.

A serving engine sees the same heavy joins again and again (dashboards,
tile servers); the second identical query should cost a dictionary
lookup, not an external sort.  Keys are produced by
``Query.canonical()`` combined with the versions of the referenced
catalog entries (see :meth:`repro.engine.catalog.Catalog.versions_of`),
so re-registered relations never serve stale results.

Eviction is LRU under two limits: an entry-count ``capacity`` and an
optional byte budget ``max_bytes``.  Entry footprints are approximated
by :func:`approx_result_bytes` (id-tuple payloads dominate, so the
estimate is pairs x per-tuple cost plus a fixed overhead); a single
result larger than the whole byte budget is served but never cached.

The cache keeps its own byte ledger (``bytes_used``, surfaced as
``result_cache_bytes`` in the engine snapshot) rather than charging
the engine's execution :class:`~repro.engine.resources.ResourceBudget`:
that budget models the paper's *internal algorithm memory* (sort
chunks, tiles, buffer pool), and letting cached results consume it
would pin the executor's grants at zero and force spurious spilling —
result memory is governed here, by ``max_bytes``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

#: Approximate CPython cost of one cached id tuple: tuple header plus
#: one pointer-and-int per component.  Deliberately rough — the cache
#: needs proportionality, not byte-exactness.
_TUPLE_BYTES = 56
_ID_BYTES = 36
#: Fixed per-entry overhead (result object, detail dict, key).
_ENTRY_BYTES = 512


def approx_result_bytes(value: Any) -> int:
    """Approximate resident bytes of a cached result.

    Works on anything exposing a ``pairs`` list of id tuples
    (:class:`~repro.core.join_result.JoinResult`); other values get the
    fixed overhead only.
    """
    pairs = getattr(value, "pairs", None)
    if not pairs:
        return _ENTRY_BYTES
    width = len(pairs[0])
    return _ENTRY_BYTES + len(pairs) * (_TUPLE_BYTES + width * _ID_BYTES)


class ResultCache:
    """LRU map from query fingerprints to results, bounded by bytes.

    ``capacity`` bounds the entry count (the pre-budget behaviour);
    ``max_bytes`` additionally bounds the approximate resident bytes.
    ``max_bytes=None`` disables byte-based eviction.
    """

    def __init__(self, capacity: int = 64,
                 max_bytes: Optional[int] = None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("cache byte budget cannot be negative")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.oversized_rejections = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed to most-recently-used; or None."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any,
            nbytes: Optional[int] = None) -> None:
        if self.capacity == 0 or self.max_bytes == 0:
            return
        if nbytes is None:
            nbytes = approx_result_bytes(value)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            # Larger than the whole byte budget: caching it would just
            # evict everything else and then be evicted itself.
            self.oversized_rejections += 1
            return
        if key in self._entries:
            self._forget(key)
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._sizes[key] = nbytes
        self.bytes_used += nbytes
        while len(self._entries) > self.capacity or (
            self.max_bytes is not None and self.bytes_used > self.max_bytes
        ):
            stale_key, _ = self._entries.popitem(last=False)
            self._release_size(stale_key)
            self.evictions += 1

    def invalidate_relation(self, name: str) -> int:
        """Drop every entry whose key references relation ``name``.

        Version-stamped keys already make stale entries unreachable;
        eager invalidation additionally frees their memory the moment a
        relation is re-registered or dropped.  Returns the number of
        entries removed.
        """
        stale = [k for k in self._entries if _mentions(k, name)]
        for k in stale:
            self._forget(k)
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._sizes.clear()
        self.bytes_used = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- internals -------------------------------------------------------

    def _forget(self, key: Hashable) -> None:
        del self._entries[key]
        self._release_size(key)

    def _release_size(self, key: Hashable) -> None:
        self.bytes_used -= self._sizes.pop(key, 0)


def _mentions(key: Hashable, name: str) -> bool:
    """True when a cache key's version tuple references ``name``.

    Keys are ``(canonical query, ((name, version), ...))``; the second
    component is what carries relation names.
    """
    if not isinstance(key, tuple) or len(key) != 2:
        return False
    versions: Tuple = key[1]
    return any(
        isinstance(v, tuple) and len(v) == 2 and v[0] == name
        for v in versions
    )
