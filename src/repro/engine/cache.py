"""LRU result cache keyed by query fingerprint + catalog versions.

A serving engine sees the same heavy joins again and again (dashboards,
tile servers); the second identical query should cost a dictionary
lookup, not an external sort.  Keys are produced by
``Query.canonical()`` combined with the versions of the referenced
catalog entries (see :meth:`repro.engine.catalog.Catalog.versions_of`),
so re-registered relations never serve stale results.  Eviction is
plain LRU over entry count — result payloads here are id pairs, whose
footprint the engine already bounds by refusing to cache oversized
results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class ResultCache:
    """Fixed-capacity LRU map from query fingerprints to results."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed to most-recently-used; or None."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_relation(self, name: str) -> int:
        """Drop every entry whose key references relation ``name``.

        Version-stamped keys already make stale entries unreachable;
        eager invalidation additionally frees their memory the moment a
        relation is re-registered or dropped.  Returns the number of
        entries removed.
        """
        stale = [k for k in self._entries if _mentions(k, name)]
        for k in stale:
            del self._entries[k]
        self.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _mentions(key: Hashable, name: str) -> bool:
    """True when a cache key's version tuple references ``name``.

    Keys are ``(canonical query, ((name, version), ...))``; the second
    component is what carries relation names.
    """
    if not isinstance(key, tuple) or len(key) != 2:
        return False
    versions: Tuple = key[1]
    return any(
        isinstance(v, tuple) and len(v) == 2 and v[0] == name
        for v in versions
    )
