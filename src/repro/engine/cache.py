"""Engine caches: query results and execution artifacts.

Two caches live here.  :class:`ResultCache` is a size-aware LRU over
*answers* — the second identical query costs a dictionary lookup.
:class:`ArtifactCache` is an LRU over *reusable execution
intermediates*, in several kinds:

* ``"partition"`` — the columnar per-partition tiles the partitioned
  executor produced for a relation pair, so a warm repeated (or
  overlapping, e.g. the same relations under a different predicate or
  with the result cache disabled) query skips the whole distribute
  phase and goes straight to the sweeps;
* ``"sorted-run"`` — the output of an external sort (one relation in
  sweep order, as a single columnar tile), so a warm sort-based plan
  (``sssj``) skips both external sorts and sweeps straight out of
  memory.

Result-cache entries are governed by their own byte ledger; artifacts
of every kind share one LRU and are charged to the engine's execution
:class:`~repro.engine.resources.ResourceBudget` under the
``"artifacts"`` category, but only ever occupy *free* budget bytes
(``grant.try_extend``) and are evicted on demand — cached artifacts can
never starve a query's tile grant into spilling.  When the engine has
an :class:`~repro.engine.artifacts.ArtifactStore` attached, evicted or
restart-lost artifacts can come back from the spill directory; the
cache counts those ``disk_restores`` separately from memory hits.

Size-aware LRU result cache keyed by query fingerprint + versions.

A serving engine sees the same heavy joins again and again (dashboards,
tile servers); the second identical query should cost a dictionary
lookup, not an external sort.  Keys are produced by
``Query.canonical()`` combined with the versions of the referenced
catalog entries (see :meth:`repro.engine.catalog.Catalog.versions_of`),
so re-registered relations never serve stale results.

Eviction is LRU under two limits: an entry-count ``capacity`` and an
optional byte budget ``max_bytes``.  Entry footprints are approximated
by :func:`approx_result_bytes` (id-tuple payloads dominate, so the
estimate is pairs x per-tuple cost plus a fixed overhead); a single
result larger than the whole byte budget is served but never cached.

The cache keeps its own byte ledger (``bytes_used``, surfaced as
``result_cache_bytes`` in the engine snapshot) rather than charging
the engine's execution :class:`~repro.engine.resources.ResourceBudget`:
that budget models the paper's *internal algorithm memory* (sort
chunks, tiles, buffer pool), and letting cached results consume it
would pin the executor's grants at zero and force spurious spilling —
result memory is governed here, by ``max_bytes``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.geom.rect import RECT_BYTES

#: Approximate CPython cost of one cached id tuple: tuple header plus
#: one pointer-and-int per component.  Deliberately rough — the cache
#: needs proportionality, not byte-exactness.
_TUPLE_BYTES = 56
_ID_BYTES = 36
#: Fixed per-entry overhead (result object, detail dict, key).
_ENTRY_BYTES = 512


def approx_result_bytes(value: Any) -> int:
    """Approximate resident bytes of a cached result.

    Works on anything exposing a ``pairs`` list of id tuples
    (:class:`~repro.core.join_result.JoinResult`); other values get the
    fixed overhead only.
    """
    pairs = getattr(value, "pairs", None)
    if not pairs:
        return _ENTRY_BYTES
    width = len(pairs[0])
    return _ENTRY_BYTES + len(pairs) * (_TUPLE_BYTES + width * _ID_BYTES)


class ResultCache:
    """LRU map from query fingerprints to results, bounded by bytes.

    ``capacity`` bounds the entry count (the pre-budget behaviour);
    ``max_bytes`` additionally bounds the approximate resident bytes.
    ``max_bytes=None`` disables byte-based eviction.
    """

    def __init__(self, capacity: int = 64,
                 max_bytes: Optional[int] = None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity cannot be negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("cache byte budget cannot be negative")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.oversized_rejections = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed to most-recently-used; or None."""
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any,
            nbytes: Optional[int] = None) -> None:
        if self.capacity == 0 or self.max_bytes == 0:
            return
        if nbytes is None:
            nbytes = approx_result_bytes(value)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            # Larger than the whole byte budget: caching it would just
            # evict everything else and then be evicted itself.
            self.oversized_rejections += 1
            return
        if key in self._entries:
            self._forget(key)
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._sizes[key] = nbytes
        self.bytes_used += nbytes
        while len(self._entries) > self.capacity or (
            self.max_bytes is not None and self.bytes_used > self.max_bytes
        ):
            stale_key, _ = self._entries.popitem(last=False)
            self._release_size(stale_key)
            self.evictions += 1

    def invalidate_relation(self, name: str) -> int:
        """Drop every entry whose key references relation ``name``.

        Version-stamped keys already make stale entries unreachable;
        eager invalidation additionally frees their memory the moment a
        relation is re-registered or dropped.  Returns the number of
        entries removed.
        """
        stale = [k for k in self._entries if _mentions(k, name)]
        for k in stale:
            self._forget(k)
        self.invalidations += len(stale)
        return len(stale)

    def pop(self, key: Hashable) -> Optional[Any]:
        """Silently drop one entry (no counter bumps); returns it or None.

        Used by EXPLAIN ANALYZE to force re-execution of a cached query
        without skewing the hit/miss statistics.
        """
        if key not in self._entries:
            return None
        value = self._entries[key]
        self._forget(key)
        return value

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._sizes.clear()
        self.bytes_used = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes_used,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "oversized_rejections": self.oversized_rejections,
        }

    # -- internals -------------------------------------------------------

    def _forget(self, key: Hashable) -> None:
        del self._entries[key]
        self._release_size(key)

    def _release_size(self, key: Hashable) -> None:
        self.bytes_used -= self._sizes.pop(key, 0)


def _mentions(key: Hashable, name: str) -> bool:
    """True when a cache key's version tuple references ``name``.

    Keys are ``(canonical query, ((name, version), ...))``; the second
    component is what carries relation names.
    """
    if not isinstance(key, tuple) or len(key) != 2:
        return False
    versions: Tuple = key[1]
    return any(
        isinstance(v, tuple) and len(v) == 2 and v[0] == name
        for v in versions
    )


# -- execution artifacts -----------------------------------------------------

#: The artifact kinds the engine currently retains.
PARTITION_KIND = "partition"
SORTED_RUN_KIND = "sorted-run"
ARTIFACT_KINDS = (PARTITION_KIND, SORTED_RUN_KIND)

#: Fixed per-artifact overhead (key, entry object, task tuples).
_ARTIFACT_ENTRY_BYTES = 512
#: Per-partition overhead within an artifact (tuple + list slots).
_ARTIFACT_TASK_BYTES = 96


def grid_tiles(tiles_per_side: int, partitions: int) -> int:
    """The executor's effective tile resolution for ``partitions``.

    The grid doubles until it can feed every partition at least one
    tile; optimizer and executor share this so artifact keys computed
    at plan time match the ones the executor writes.
    """
    tiles = tiles_per_side
    while tiles * tiles < partitions:
        tiles *= 2
    return tiles


def artifact_key(versions, universe, tiles_per_side: int,
                 partitions: int, window) -> Tuple:
    """The identity of one distributed tile set.

    ``versions`` is the catalog's ``((name, version), ...)`` tuple for
    the distributed input(s) — a re-registered relation bumps its
    version, so stale artifacts become unreachable; the grid
    fingerprint (universe, resolution, partition count) and the query
    window (the distribute phase filters by it) pin the exact
    distribution geometry.
    """
    return (versions, tuple(universe[:4]),
            grid_tiles(tiles_per_side, partitions), partitions, window)


def artifact_bytes(tasks) -> int:
    """Approximate resident bytes of one partition artifact's tiles.

    Each tile is charged its flat columns plus one decoded rectangle
    set at the repo's ``RECT_BYTES`` convention — the coordinator memo
    (:meth:`ColumnarTile.decode_sorted_cached`) may keep a boxed copy
    alive for the artifact's lifetime (the memo itself is bounded, so
    this is the conservative upper bound).
    """
    total = _ARTIFACT_ENTRY_BYTES
    for _part_id, tile_a, tile_b in tasks:
        total += _ARTIFACT_TASK_BYTES
        total += tile_a.nbytes + len(tile_a) * RECT_BYTES
        if tile_b is not None:
            total += tile_b.nbytes + len(tile_b) * RECT_BYTES
    return total


def sorted_run_key(name: str, version: int, axis: str = "ylo") -> Tuple:
    """The identity of one sorted relation view.

    Sorted runs are window-independent (the sort consumes the whole
    base stream; windows are applied downstream), so the key is just
    the relation's identity plus the sort axis.  The leading
    ``((name, version),)`` tuple matches the partition-artifact key
    shape, which is what lets :meth:`ArtifactCache.invalidate_relation`
    treat every kind uniformly.
    """
    return (((name, version),), axis)


def sorted_run_bytes(tile) -> int:
    """Approximate resident bytes of one cached sorted run."""
    return _ARTIFACT_ENTRY_BYTES + tile.nbytes + len(tile) * RECT_BYTES


def _artifact_nbytes(kind: str, value) -> int:
    if kind == SORTED_RUN_KIND:
        return sorted_run_bytes(value)
    return artifact_bytes(value)


class ArtifactCache:
    """One LRU over every artifact kind, charged to the budget.

    ``"partition"`` values are the executor's ready-to-ship task
    lists: ``[(part_id, tile_a, tile_b_or_None), ...]`` with tiles in
    :class:`~repro.core.columnar.ColumnarTile` form (``tile_b is
    None`` marks a self-join, whose single side sweeps against
    itself).  A hit replaces the scan + distribute + spill phases of
    partitioned execution with decode-and-sweep.  ``"sorted-run"``
    values are single columnar tiles holding one relation in sweep
    order; a hit replaces an external sort with an in-memory scan.
    Kinds share one LRU chain and one byte ledger — a burst of sorted
    runs can evict stale distributions and vice versa — with per-kind
    counters kept for observability.

    Memory comes from the engine's execution budget under the
    ``"artifacts"`` category, taken only while free
    (:meth:`ResourceGrant.try_extend`) and returned on eviction;
    :meth:`make_room` lets the executor reclaim artifact bytes before
    acquiring a tile grant, so caching never causes spilling that an
    empty cache would have avoided.  ``max_bytes`` adds an absolute
    cap on top (``0`` disables the cache outright).

    For backward compatibility every lookup/write method defaults to
    the ``"partition"`` kind (the only kind that existed before the
    artifact layer was generalized).
    """

    def __init__(self, budget=None,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("artifact byte budget cannot be negative")
        self.budget = budget
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._sizes: Dict[Tuple, int] = {}
        self._grant = None
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0
        self.disk_restores = 0
        self.disk_restore_bytes = 0
        self.kind_stats: Dict[str, Dict[str, int]] = {}

    # -- lookups ---------------------------------------------------------

    def get(self, key: Tuple, kind: str = PARTITION_KIND):
        """The cached value, refreshed to MRU; or ``None``."""
        full = (kind, key)
        stats = self._kind(kind)
        if full in self._entries:
            self.hits += 1
            stats["hits"] += 1
            self._entries.move_to_end(full)
            return self._entries[full]
        self.misses += 1
        stats["misses"] += 1
        return None

    def has(self, key: Tuple, kind: str = PARTITION_KIND) -> bool:
        """Presence probe for the optimizer; bumps no hit/miss counters."""
        return (kind, key) in self._entries

    # -- writes ----------------------------------------------------------

    def put(self, key: Tuple, value, nbytes: Optional[int] = None,
            kind: str = PARTITION_KIND) -> bool:
        """Retain one artifact; returns False when it cannot fit."""
        if self.max_bytes == 0:
            return False
        if nbytes is None:
            nbytes = _artifact_nbytes(kind, value)
        stats = self._kind(kind)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            self.rejections += 1
            return False
        full = (kind, key)
        if full in self._entries:
            self._forget(full)
        if self.max_bytes is not None:
            while (self._entries
                   and self.bytes_used + nbytes > self.max_bytes):
                self._evict_lru()
        if not self._reserve(nbytes):
            self.rejections += 1
            return False
        self._entries[full] = value
        self._sizes[full] = nbytes
        self.bytes_used += nbytes
        self.puts += 1
        stats["puts"] += 1
        stats["bytes"] += nbytes
        stats["entries"] += 1
        return True

    def note_restore(self, nbytes: int) -> None:
        """Count one artifact restored from the disk sidecar."""
        self.disk_restores += 1
        self.disk_restore_bytes += nbytes

    def invalidate_relation(self, name: str) -> int:
        """Drop artifacts whose version tuple references ``name``.

        Every kind keys on a leading ``((name, version), ...)`` tuple,
        so one scan covers distributions and sorted runs alike.
        """
        stale = [
            k for k in self._entries
            if any(v[0] == name for v in k[1][0])
        ]
        for k in stale:
            self._forget(k)
        self.invalidations += len(stale)
        return len(stale)

    def make_room(self, nbytes: int) -> None:
        """Evict LRU artifacts until the budget has ``nbytes`` free.

        Called by the executor before acquiring a tile grant: execution
        memory always outranks cached artifacts.
        """
        if self.budget is None:
            return
        while self._entries and self.budget.available_bytes < nbytes:
            self._evict_lru()

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        for key in list(self._entries):
            self._forget(key)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes_used,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "puts": self.puts,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "disk_restores": self.disk_restores,
            "disk_restore_bytes": self.disk_restore_bytes,
            "kinds": {k: dict(v) for k, v in self.kind_stats.items()},
        }

    # -- internals -------------------------------------------------------

    def _kind(self, kind: str) -> Dict[str, int]:
        stats = self.kind_stats.get(kind)
        if stats is None:
            stats = self.kind_stats[kind] = {
                "hits": 0, "misses": 0, "puts": 0, "evictions": 0,
                "bytes": 0, "entries": 0,
            }
        return stats

    def _reserve(self, nbytes: int) -> bool:
        """Charge ``nbytes`` to the budget, evicting LRU to make space."""
        if self.budget is None:
            return True
        if self._grant is None:
            self._grant = self.budget.acquire("artifacts", 0)
        while not self._grant.try_extend(nbytes):
            if not self._entries:
                return False
            self._evict_lru()
        return True

    def _evict_lru(self) -> None:
        full, _ = self._entries.popitem(last=False)
        self._release_size(full)
        self.evictions += 1
        self._kind(full[0])["evictions"] += 1

    def _forget(self, full: Tuple) -> None:
        del self._entries[full]
        self._release_size(full)

    def _release_size(self, full: Tuple) -> None:
        nbytes = self._sizes.pop(full, 0)
        self.bytes_used -= nbytes
        stats = self._kind(full[0])
        stats["bytes"] -= nbytes
        stats["entries"] -= 1
        if self._grant is not None and nbytes > 0:
            self._grant.release(nbytes)


#: The pre-generalization name; PR 3 call sites and tests use it.
PartitionArtifactCache = ArtifactCache
