"""Declarative spatial-join queries.

A :class:`Query` names what the caller wants — which catalog relations
to join, optionally restricted to a window, optionally refined with
exact geometry — and says nothing about how to compute it.  The
optimizer turns a query into a physical plan; the result cache keys on
the query's :meth:`cache_key`, which folds in the versions of the
referenced catalog entries so that re-registering a relation silently
orphans every stale cached result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.geom.rect import Rect


@dataclass(frozen=True)
class Query:
    """One spatial intersection-join request.

    Attributes
    ----------
    relations:
        Names of the catalog relations to join, in join order.  Two
        names make a pairwise join (planned with the cost model); three
        or more cascade through the multiway PQ join.  Naming the same
        relation twice is a **self-join**: it is planned through the
        partitioned PBSM/sweep path and each unordered pair is reported
        once, as ``(rid_a, rid_b)`` with ``rid_a < rid_b`` (identity
        pairs are excluded).  Multiway queries may not repeat a name.
    window:
        Optional region restricting the result to pairs whose MBR
        intersection meets the window — the paper's localized-join
        scenario ("Minnesota hydro x US roads", Section 6.3).  The
        window also feeds the optimizer's selectivity fractions, so a
        small window is what makes the index paths win.
    refine:
        Run the refinement step on the filter output: candidate pairs
        are checked with exact polyline geometry where the catalog has
        geometry registered (relations without geometry pass through).
    collect_pairs:
        Keep the id pairs in the result (required for windowed or
        refined queries, where the engine must post-filter).
    force:
        Optional strategy override ("pq-index", "sssj", ...) for
        ablations; ``None`` lets the optimizer decide.
    """

    relations: Tuple[str, ...]
    window: Optional[Rect] = None
    refine: bool = False
    collect_pairs: bool = True
    force: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise ValueError("a join query needs at least two relations")
        if (len(self.relations) > 2
                and len(set(self.relations)) != len(self.relations)):
            raise ValueError(
                "multiway self-joins are not supported (pairwise "
                "self-joins are)"
            )
        if self.refine and len(self.relations) > 2:
            raise ValueError(
                "refinement is only defined for pairwise queries"
            )
        if self.force is not None and len(self.relations) > 2:
            raise ValueError(
                "forced strategies apply to pairwise queries only "
                "(multiway joins always cascade PQ)"
            )
        if (self.window is not None or self.refine) and not self.collect_pairs:
            raise ValueError(
                "windowed/refined queries must collect pairs "
                "(the engine post-filters them)"
            )

    @property
    def is_multiway(self) -> bool:
        return len(self.relations) > 2

    @property
    def is_self_join(self) -> bool:
        return (len(self.relations) == 2
                and self.relations[0] == self.relations[1])

    def canonical(self) -> Tuple:
        """Hashable identity of the request itself (no catalog state)."""
        win = None
        if self.window is not None:
            # Drop the id; two windows covering the same region are the
            # same predicate.
            win = (self.window.xlo, self.window.xhi,
                   self.window.ylo, self.window.yhi)
        return (self.relations, win, self.refine, self.collect_pairs,
                self.force)

    def describe(self) -> str:
        parts = [" ⋈ ".join(self.relations)]
        if self.window is not None:
            parts.append(
                f"window=[{self.window.xlo:g},{self.window.xhi:g}]x"
                f"[{self.window.ylo:g},{self.window.yhi:g}]"
            )
        if self.refine:
            parts.append("refine=on")
        if self.force:
            parts.append(f"force={self.force}")
        return "  ".join(parts)
