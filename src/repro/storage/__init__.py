"""External-memory substrate (the repo's TPIE analogue).

The paper implements everything on top of TPIE streams and memory-mapped
page access.  This package rebuilds those abstractions over a simulated
byte-addressed disk:

* :mod:`repro.storage.disk` — the allocation layer; every read/write is
  forwarded to the :class:`~repro.sim.env.SimEnv` for pricing;
* :mod:`repro.storage.pages` — fixed-size page store for index nodes;
* :mod:`repro.storage.stream` — sequential rectangle streams with a
  logical block size (the stream BTE);
* :mod:`repro.storage.buffer_pool` — the LRU pool the tree join uses;
* :mod:`repro.storage.sort` — external multiway mergesort;
* :mod:`repro.storage.pqueue` — an external (spilling) priority queue,
  the overflow mechanism Section 4 sketches for PQ.
"""

from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream
from repro.storage.buffer_pool import BufferPool
from repro.storage.sort import external_sort, sort_stream_by_ylo
from repro.storage.pqueue import ExternalHeap

__all__ = [
    "Disk",
    "PageStore",
    "Stream",
    "BufferPool",
    "external_sort",
    "sort_stream_by_ylo",
    "ExternalHeap",
]
