"""Fixed-size page store for index nodes.

R-tree nodes occupy exactly one page (paper Section 3.3: 8 KB nodes,
fanout 400).  The store allocates pages from the underlying
:class:`~repro.storage.disk.Disk` in call order, so a bulk loader that
writes leaves left-to-right obtains the sequential sibling layout whose
performance consequences Section 6.2 analyzes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.storage.disk import Disk


class PageStore:
    """Allocates and addresses fixed-size pages on a simulated disk."""

    def __init__(self, disk: Disk, page_bytes: int) -> None:
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        self.disk = disk
        self.page_bytes = page_bytes
        self._offsets: Dict[int, int] = {}
        self._next_page_id = 0

    def __len__(self) -> int:
        return self._next_page_id

    @property
    def total_bytes(self) -> int:
        return self._next_page_id * self.page_bytes

    def allocate(self) -> int:
        """Allocate one page, returning its page id."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._offsets[page_id] = self.disk.allocate(self.page_bytes)
        return page_id

    def allocate_many(self, n: int) -> List[int]:
        """Allocate ``n`` pages as one contiguous run of extents."""
        return [self.allocate() for _ in range(n)]

    def offset_of(self, page_id: int) -> int:
        try:
            return self._offsets[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} was never allocated") from None

    def write(self, page_id: int, payload: Any) -> None:
        self.disk.write(self.offset_of(page_id), self.page_bytes, payload)

    def read(self, page_id: int) -> Any:
        """Read a page, charging one page of I/O."""
        return self.disk.read(self.offset_of(page_id))

    def read_silent(self, page_id: int) -> Any:
        """Read a page without charging I/O (validation/reporting only)."""
        return self.disk.read_silent(self.offset_of(page_id))
