"""Byte-addressed simulated disk with first-fit-at-end allocation.

The disk hands out byte extents in allocation order, which is exactly
how the paper's environment behaved: "most R-tree bulk-loading
algorithms construct an index structure in a sequential bottom-up
fashion that causes all children of a node to be allocated sequentially"
(Section 6.2).  Because extents are handed out in call order, a bulk
loader that allocates leaves left-to-right gets a sequential leaf layout
for free, while several streams appending concurrently (PBSM's
partitions) get interleaved extents — the access-pattern consequences
the paper measures then emerge from the trace instead of being assumed.

Payloads are kept as Python objects tagged with their *declared* byte
length; the accounting is exact while avoiding pointless serialization
in the hot path.  (True byte serialization — used for persisting indexes
to real files — lives in :mod:`repro.rtree.persist`.)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.env import SimEnv


class Disk:
    """Simulated disk: extent allocator + priced read/write of payloads."""

    def __init__(self, env: SimEnv) -> None:
        self.env = env
        self._next_offset = 0
        self._payloads: Dict[int, Any] = {}
        self._lengths: Dict[int, int] = {}

    @property
    def allocated_bytes(self) -> int:
        """Total bytes handed out so far (the disk-space footprint)."""
        return self._next_offset

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` at the current end of the disk."""
        if nbytes <= 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        offset = self._next_offset
        self._next_offset += nbytes
        return offset

    def write(self, offset: int, nbytes: int, payload: Any) -> None:
        """Store ``payload`` at ``offset`` and price a write of ``nbytes``."""
        self._check_extent(offset, nbytes)
        self._payloads[offset] = payload
        self._lengths[offset] = nbytes
        self.env.io_write(offset, nbytes)

    def read(self, offset: int) -> Any:
        """Fetch the payload written at ``offset``, pricing the read."""
        payload = self._payloads.get(offset, _MISSING)
        if payload is _MISSING:
            raise KeyError(f"nothing written at disk offset {offset}")
        self.env.io_read(offset, self._lengths[offset])
        return payload

    def read_silent(self, offset: int) -> Any:
        """Fetch a payload without charging I/O.

        Used by validation and reporting code that inspects structures
        outside the measured experiment window.
        """
        payload = self._payloads.get(offset, _MISSING)
        if payload is _MISSING:
            raise KeyError(f"nothing written at disk offset {offset}")
        return payload

    def free(self, offset: int) -> None:
        """Drop a payload (temporary streams); space is not reclaimed.

        Real temp files get deleted; our extent allocator is append-only
        because reclaiming space would perturb the layout determinism
        the experiments rely on.
        """
        self._payloads.pop(offset, None)
        self._lengths.pop(offset, None)

    def length_at(self, offset: int) -> Optional[int]:
        return self._lengths.get(offset)

    def _check_extent(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self._next_offset:
            raise ValueError(
                f"extent [{offset}, {offset + nbytes}) was never allocated"
            )


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
