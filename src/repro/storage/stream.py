"""Sequential rectangle streams — the TPIE stream BTE analogue.

SSSJ and PBSM are stream algorithms: they read and write relations as
sequences of 20-byte rectangle records in logical blocks (the paper used
512 KB blocks to exploit sequential bandwidth, Section 5.2).  A
:class:`Stream` buffers appended rectangles and flushes a block to
disk whenever the buffer fills.  Like a filesystem growing a file, a
stream reserves disk space in contiguous multi-block extents
(``RESERVE_BLOCKS`` at a time): blocks of one stream lie back-to-back
inside each extent, while several streams being written concurrently
claim alternating extents.  The machine observers therefore see a
single stream writing sequentially, but the 2p PBSM partition streams
seeking between their extents — exactly the "one non-sequential write
pass" of Section 3.2.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.geom.rect import RECT_BYTES, Rect
from repro.storage.disk import Disk

#: Contiguous blocks reserved per extent when a stream grows (the
#: filesystem-extent analogue; keeps one stream sequential while
#: interleaved streams seek between extents).
RESERVE_BLOCKS = 4


class Stream:
    """An appendable, re-readable sequence of rectangles on disk.

    The lifecycle is write-then-read: ``append``/``extend`` while
    writing, then ``close()`` (flushes the tail block), after which the
    stream may be scanned any number of times with ``scan()``.
    Appending after close raises — a closed stream is immutable, like a
    finished TPIE temp file.
    """

    def __init__(self, disk: Disk, block_bytes: Optional[int] = None,
                 name: str = "") -> None:
        self.disk = disk
        self.block_bytes = block_bytes or disk.env.scale.stream_block_bytes
        self.block_capacity = max(1, self.block_bytes // RECT_BYTES)
        self.name = name
        self._block_offsets: List[int] = []
        self._block_lengths: List[int] = []
        self._reserve_pos = 0
        self._reserve_end = 0
        self._buffer: List[Rect] = []
        self._count = 0
        self._closed = False

    # -- writing ---------------------------------------------------------

    def append(self, rect: Rect) -> None:
        if self._closed:
            raise RuntimeError(f"stream {self.name!r} is closed")
        self._buffer.append(rect)
        self._count += 1
        if len(self._buffer) >= self.block_capacity:
            self._flush_block()

    def extend(self, rects: Iterable[Rect]) -> None:
        for r in rects:
            self.append(r)

    def close(self) -> "Stream":
        """Flush the tail block and freeze the stream.  Idempotent."""
        if not self._closed:
            if self._buffer:
                self._flush_block()
            self._closed = True
        return self

    # -- reading ---------------------------------------------------------

    def scan(self) -> Iterator[Rect]:
        """Yield all rectangles in append order, charging block reads."""
        self._require_closed("scan")
        for offset in self._block_offsets:
            block = self.disk.read(offset)
            yield from block

    def scan_blocks(self) -> Iterator[Sequence[Rect]]:
        """Yield whole blocks; the merge phase of sorting consumes these."""
        self._require_closed("scan_blocks")
        for offset in self._block_offsets:
            yield self.disk.read(offset)

    # -- metadata ----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def num_blocks(self) -> int:
        return len(self._block_offsets)

    @property
    def data_bytes(self) -> int:
        """Logical payload size: records x 20 bytes (paper Table 2)."""
        return self._count * RECT_BYTES

    def free(self) -> None:
        """Release block payloads (temporary run files)."""
        for offset in self._block_offsets:
            self.disk.free(offset)
        self._block_offsets.clear()
        self._block_lengths.clear()

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_rects(cls, disk: Disk, rects: Iterable[Rect],
                   block_bytes: Optional[int] = None,
                   name: str = "") -> "Stream":
        s = cls(disk, block_bytes=block_bytes, name=name)
        s.extend(rects)
        return s.close()

    # -- internals -----------------------------------------------------------

    def _flush_block(self) -> None:
        nbytes = len(self._buffer) * RECT_BYTES
        if self._reserve_pos + nbytes > self._reserve_end:
            # Extent size is a whole number of full blocks so that
            # consecutive flushes of one stream stay byte-contiguous.
            extent = self.block_capacity * RECT_BYTES * RESERVE_BLOCKS
            self._reserve_pos = self.disk.allocate(max(extent, nbytes))
            self._reserve_end = self._reserve_pos + max(extent, nbytes)
        offset = self._reserve_pos
        self._reserve_pos += nbytes
        self.disk.write(offset, nbytes, tuple(self._buffer))
        self._block_offsets.append(offset)
        self._block_lengths.append(nbytes)
        self._buffer = []

    def _require_closed(self, op: str) -> None:
        if not self._closed:
            raise RuntimeError(
                f"cannot {op} stream {self.name!r} before close()"
            )
