"""External multiway mergesort over rectangle streams.

This is the sorting component of SSSJ and of R-tree bulk loading (both
"essentially consist of (external) sorting of the data", Section 6.3).
The structure is the classic two-phase sort the paper's TPIE
implementation used:

1. **Run formation** — read the input sequentially, cut it into chunks
   of at most ``memory_rects`` records, sort each chunk in memory, and
   write it out as a run (one sequential write pass).
2. **Multiway merge** — merge all runs with a heap, writing the sorted
   output (one *non-sequential* read pass, because the merge pulls one
   block at a time from k interleaved runs, plus one sequential write
   pass).

An input that fits in memory degenerates to read-sort-write, which is
why the paper's NJ dataset (7.9 MB against 24 MB of memory) never paid
for a merge pass.

CPU cost: ``n log2 n`` comparisons for run formation and
``n (1 + log2 k)`` heap comparisons for the merge (one sift path per
element), charged to the environment under ``sort`` — the same
asymptotics as the STL sort/heap the authors used.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

from repro.geom.rect import RECT_BYTES, Rect
from repro.storage.disk import Disk
from repro.storage.stream import Stream

#: Floor on budget-governed run-formation chunks: a sort that cannot
#: hold even this many records would degenerate into per-record runs.
#: Matches the floor :meth:`repro.sim.scale.ScaleConfig.memory_rects`
#: applies to the scaled memory budget itself.
MIN_SORT_RECTS = 64


def _charge_nlogn(env, category: str, n: int) -> None:
    if n > 1:
        env.charge(category, int(n * math.log2(n)))


def external_sort(
    source: Stream,
    disk: Disk,
    key: Callable[[Rect], tuple],
    memory_rects: Optional[int] = None,
    name: str = "sorted",
    on_record: Optional[Callable[[Rect], None]] = None,
) -> Stream:
    """Sort ``source`` by ``key`` into a new closed stream.

    ``memory_rects`` bounds how many records are held in memory at once;
    it defaults to the environment's scaled memory budget.  When the
    environment carries a shared
    :class:`~repro.engine.resources.ResourceBudget`, the sort acquires
    a grant for its working set and shrinks ``memory_rects`` to what
    was actually granted — under memory pressure the sort forms more,
    smaller runs instead of silently exceeding the budget.

    ``on_record`` observes every record of the sorted output, in
    order, as it passes through memory anyway (the merge's heap pops,
    or the resident chunk of a single-run sort) — the engine's
    artifact layer uses it to retain sorted runs without re-reading
    the output stream.  The callback adds no I/O and no charges.
    """
    env = disk.env
    if memory_rects is None:
        memory_rects = env.scale.memory_rects
    if memory_rects < 2:
        raise ValueError("memory budget too small to sort anything")

    budget = getattr(env, "budget", None)
    grant = None
    if budget is not None:
        grant = budget.acquire(
            "sort", memory_rects * RECT_BYTES,
            minimum=MIN_SORT_RECTS * RECT_BYTES,
        )
        memory_rects = max(MIN_SORT_RECTS, grant.bytes // RECT_BYTES)

    try:
        runs = _form_runs(source, disk, key, memory_rects, name)
        if len(runs) == 1:
            if on_record is not None:
                # The single chunk was memory-resident moments ago;
                # feeding the observer from the written blocks is an
                # uncharged replay, not an extra pass.
                for offset in runs[0]._block_offsets:
                    for rect in disk.read_silent(offset):
                        on_record(rect)
            return runs[0]
        out = _merge_runs(runs, disk, key, name, on_record=on_record)
        for run in runs:
            run.free()
        return out
    finally:
        if grant is not None:
            grant.release()


def sort_stream_by_ylo(source: Stream, disk: Disk,
                       name: str = "sorted-y",
                       on_record: Optional[Callable[[Rect], None]] = None,
                       ) -> Stream:
    """Sort by lower y-coordinate — the order every sweep consumes.

    Ties broken by the remaining coordinates and the id so the order is
    total and runs are deterministic across algorithms.
    """
    return external_sort(source, disk, key=_ylo_key, name=name,
                         on_record=on_record)


def _ylo_key(r: Rect) -> tuple:
    return (r.ylo, r.xlo, r.xhi, r.yhi, r.rid)


def _form_runs(source: Stream, disk: Disk, key, memory_rects: int,
               name: str) -> List[Stream]:
    env = disk.env
    runs: List[Stream] = []
    chunk: List[Rect] = []

    def flush() -> None:
        if not chunk:
            return
        _charge_nlogn(env, "sort", len(chunk))
        chunk.sort(key=key)
        runs.append(
            Stream.from_rects(disk, chunk, name=f"{name}.run{len(runs)}")
        )
        chunk.clear()

    for rect in source.scan():
        chunk.append(rect)
        if len(chunk) >= memory_rects:
            flush()
    flush()
    if not runs:
        # Empty input sorts to an empty stream.
        runs.append(Stream.from_rects(disk, (), name=f"{name}.run0"))
    return runs


def _merge_runs(runs: List[Stream], disk: Disk, key,
                name: str, on_record=None) -> Stream:
    env = disk.env
    k = len(runs)
    out = Stream(disk, name=name)
    heap = []
    iters = []
    for idx, run in enumerate(runs):
        it = run.scan()
        iters.append(it)
        first = next(it, None)
        if first is not None:
            heap.append((key(first), idx, first))
    heapq.heapify(heap)
    log_k = max(1, int(math.ceil(math.log2(k))))
    merged = 0
    while heap:
        _, idx, rect = heapq.heappop(heap)
        out.append(rect)
        if on_record is not None:
            on_record(rect)
        merged += 1
        nxt = next(iters[idx], None)
        if nxt is not None:
            heapq.heappush(heap, (key(nxt), idx, nxt))
    env.charge("sort", (1 + log_k) * merged)
    return out.close()
