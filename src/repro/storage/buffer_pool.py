"""LRU buffer pool for index pages.

The synchronized tree join (ST) revisits R-tree nodes, so the paper
grants it a 22 MB LRU pool (Section 3.3) — generous enough that the NJ
and NY indexes fit entirely, making ST's disk reads drop to (slightly
below) the number of index pages, while the DISK* indexes overflow the
pool and pages are re-read 1.14-1.63 times on average (Table 4).

``requests`` counts logical page requests; ``misses`` counts the ones
that actually reached the disk.  Table 4 reports disk reads, i.e.
misses; the hit/request split powers the buffer-pool ablation bench.

When a shared :class:`~repro.engine.resources.ResourceBudget` is
attached, the pool charges its resident pages against it (category
``"buffer_pool"``) so the engine's memory high-water marks include the
pool — the paper's 22 MB pool is part of the machine's 64 MB, not extra.
The page-count capacity remains the pool's own hard bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.storage.pages import PageStore


class BufferPool:
    """Fixed-capacity LRU cache in front of a :class:`PageStore`."""

    def __init__(self, store: PageStore, capacity_pages: int,
                 budget: Optional[Any] = None) -> None:
        if capacity_pages <= 0:
            raise ValueError("buffer pool needs at least one page")
        self.store = store
        self.capacity = capacity_pages
        self._cache: "OrderedDict[int, Any]" = OrderedDict()
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._grant = (
            budget.acquire("buffer_pool", 0) if budget is not None else None
        )

    def request(self, page_id: int) -> Any:
        """Return the page payload, reading from disk only on a miss."""
        self.requests += 1
        if page_id in self._cache:
            self.hits += 1
            self._cache.move_to_end(page_id)
            return self._cache[page_id]
        self.misses += 1
        payload = self.store.read(page_id)
        self._cache[page_id] = payload
        if self._grant is not None:
            self._grant.charge(self.store.page_bytes)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
            if self._grant is not None:
                self._grant.release(self.store.page_bytes)
        return payload

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def clear(self) -> None:
        """Drop every resident page.

        Counters (``requests``/``hits``/``misses``/``evictions``) are
        deliberately left intact: clearing models a cold restart of the
        *pages*, while the statistics describe the pool's whole service
        history.  Use :meth:`reset_stats` to zero the counters.
        """
        if self._grant is not None:
            self._grant.release(len(self._cache) * self.store.page_bytes)
        self._cache.clear()

    def reset_stats(self) -> None:
        """Zero the request/hit/miss/eviction counters.

        Resident pages stay cached — a serving engine resets statistics
        between measurement windows without giving up its warm pool.
        """
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def resident_pages(self) -> int:
        return len(self._cache)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0
