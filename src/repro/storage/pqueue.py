"""External (spilling) priority queue.

Section 4 notes that PQ "can be modified to handle overflow gracefully
by using an external priority queue [2, 9]" when the queue outgrows
internal memory — which Table 3 shows never happens on real data (the
queue stays under 1% of the input), but which the library must survive
on adversarial inputs.

:class:`ExternalHeap` keeps a bounded in-memory heap of fresh
insertions.  When the heap exceeds its budget, the *largest* half is
sorted and spilled to a run stream on disk (keeping the small keys hot,
since those are extracted first); extraction takes the minimum across
the in-memory heap and the heads of all spilled runs.  This is a
simplified buffer-tree-style queue: O((n/B) log(n/M)) amortized I/Os,
enough to keep the join correct and measurable under overflow, which is
all the paper asks of it.

CPU cost is charged per heap edge under ``pqueue``; spill writes and
run reads go through the normal stream accounting.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator, List, Optional, Tuple

from repro.storage.disk import Disk


class _Run:
    """A sorted spill run with a one-record lookahead cursor."""

    __slots__ = ("iterator", "head")

    def __init__(self, iterator: Iterator[Tuple[Any, Any]]) -> None:
        self.iterator = iterator
        self.head: Optional[Tuple[Any, Any]] = next(iterator, None)

    def advance(self) -> None:
        self.head = next(self.iterator, None)


class ExternalHeap:
    """Min-priority queue over ``(key, value)`` pairs that spills to disk.

    Parameters
    ----------
    disk:
        Spill target (also supplies the environment for CPU charges).
    memory_items:
        In-memory heap budget; exceeding it triggers a spill of the
        largest half of the heap.
    """

    def __init__(self, disk: Disk, memory_items: int = 1 << 16) -> None:
        if memory_items < 4:
            raise ValueError("memory_items must be at least 4")
        self.disk = disk
        self.env = disk.env
        self.memory_items = memory_items
        self._heap: List[Tuple[Any, Any]] = []
        self._runs: List[_Run] = []
        self._size = 0
        self.spills = 0
        self.max_memory_items = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, key: Any, value: Any) -> None:
        heapq.heappush(self._heap, (key, value))
        self._size += 1
        self._charge_heap_op()
        if len(self._heap) > self.max_memory_items:
            self.max_memory_items = len(self._heap)
        if len(self._heap) > self.memory_items:
            self._spill()

    def pop(self) -> Tuple[Any, Any]:
        """Remove and return the minimum ``(key, value)`` pair."""
        if self._size == 0:
            raise IndexError("pop from empty ExternalHeap")
        best_run = None
        for run in self._runs:
            if run.head is not None and (
                best_run is None or run.head[0] < best_run.head[0]
            ):
                best_run = run
        self.env.charge("pqueue", max(1, len(self._runs)))
        if self._heap and (
            best_run is None or self._heap[0][0] <= best_run.head[0]
        ):
            item = heapq.heappop(self._heap)
            self._charge_heap_op()
        else:
            item = best_run.head
            best_run.advance()
        self._size -= 1
        self._drop_exhausted_runs()
        return item

    def peek_key(self) -> Any:
        """The minimum key without removing it."""
        if self._size == 0:
            raise IndexError("peek on empty ExternalHeap")
        best = self._heap[0][0] if self._heap else None
        for run in self._runs:
            if run.head is not None and (best is None or run.head[0] < best):
                best = run.head[0]
        return best

    @property
    def run_count(self) -> int:
        return len(self._runs)

    # -- internals -----------------------------------------------------------

    def _spill(self) -> None:
        """Move the largest half of the heap to a sorted run on disk."""
        from repro.storage.stream import Stream
        from repro.geom.rect import RECT_BYTES

        keep = self.memory_items // 2
        items = sorted(self._heap)
        self.env.charge(
            "pqueue", int(len(items) * max(1, math.log2(len(items))))
        )
        self._heap = items[:keep]
        heapq.heapify(self._heap)
        spilled = items[keep:]
        # Spill runs hold arbitrary (key, value) pairs; account them at
        # one rectangle-record (20 bytes) per item, the size of the
        # largest entry kind PQ ever queues.
        nbytes = max(1, len(spilled)) * RECT_BYTES
        offset = self.disk.allocate(nbytes)
        self.disk.write(offset, nbytes, tuple(spilled))

        def run_iter(off=offset):
            payload = self.disk.read(off)
            yield from payload

        self._runs.append(_Run(run_iter()))
        self.spills += 1

    def _drop_exhausted_runs(self) -> None:
        if self._runs:
            self._runs = [r for r in self._runs if r.head is not None]

    def _charge_heap_op(self) -> None:
        n = len(self._heap)
        self.env.charge("pqueue", max(1, int(math.log2(n)) if n > 1 else 1))
