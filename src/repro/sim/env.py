"""The simulation environment shared by every algorithm run.

A :class:`SimEnv` bundles

* the active :class:`~repro.sim.scale.ScaleConfig` (page sizes, memory
  budget, buffer pool capacity),
* the machine observers that price CPU and I/O events,
* raw event counters that are machine-independent (page requests,
  logical reads/writes) — these power Table 4, which the paper notes is
  "independent of the machine used".

Algorithms never talk to observers directly; they call
:meth:`SimEnv.charge` for CPU work and perform I/O through the page
store and streams, which forward byte-addressed events here.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.machines import ALL_MACHINES, MachineObserver, MachineSpec
from repro.sim.scale import DEFAULT_SCALE, ScaleConfig


class SimEnv:
    """Event clock + configuration for one experiment run.

    Parameters
    ----------
    scale:
        Size configuration; defaults to the 1/256 setup.
    machines:
        Machine specs to observe.  Defaults to the paper's three
        machines.  Pass an empty sequence for pure-functionality runs
        (unit tests of the algorithms) where pricing is irrelevant —
        event counting still works.
    """

    def __init__(
        self,
        scale: ScaleConfig = DEFAULT_SCALE,
        machines: Optional[Sequence[MachineSpec]] = ALL_MACHINES,
    ) -> None:
        self.scale = scale
        specs = list(machines) if machines else []
        self.observers: List[MachineObserver] = [
            MachineObserver(spec, latency_scale=scale.latency_scale)
            for spec in specs
        ]
        # Machine-independent raw counters.
        self.page_reads = 0
        self.page_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.cpu_ops = 0
        #: Optional shared memory budget
        #: (:class:`repro.engine.resources.ResourceBudget`).  The engine
        #: attaches its budget here so deep call paths (external sort,
        #: spillable partitions) can acquire grants without threading an
        #: extra argument through every algorithm signature.  ``None``
        #: (the default for one-shot experiment runs) means unbudgeted.
        self.budget = None

    # -- CPU accounting ---------------------------------------------------

    def charge(self, category: str, ops: int) -> None:
        """Charge ``ops`` abstract CPU operations under ``category``.

        Hot loops accumulate local integer counters and flush them here
        in one call, so the accounting itself stays off the critical
        path.
        """
        if ops <= 0:
            return
        self.cpu_ops += ops
        for obs in self.observers:
            obs.on_cpu(category, ops)

    # -- I/O accounting ---------------------------------------------------

    def io_read(self, offset: int, nbytes: int) -> None:
        """Record a disk read of ``nbytes`` starting at byte ``offset``."""
        self.page_reads += 1
        self.bytes_read += nbytes
        for obs in self.observers:
            obs.on_read(offset, nbytes)

    def io_write(self, offset: int, nbytes: int) -> None:
        """Record a disk write of ``nbytes`` starting at byte ``offset``."""
        self.page_writes += 1
        self.bytes_written += nbytes
        for obs in self.observers:
            obs.on_write(offset, nbytes)

    # -- reporting ----------------------------------------------------------

    def observer_for(self, spec: MachineSpec) -> MachineObserver:
        for obs in self.observers:
            if obs.spec is spec or obs.spec.name == spec.name:
                return obs
        raise KeyError(f"no observer for machine {spec.name!r}")

    def snapshots(self) -> List[dict]:
        return [obs.snapshot() for obs in self.observers]

    def reset_counters(self) -> None:
        """Zero all counters, keeping configuration and machine set.

        Used between the build phase (bulk loading, which the paper
        excludes from join cost) and the join phase of an experiment.
        """
        self.page_reads = 0
        self.page_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.cpu_ops = 0
        fresh = [
            MachineObserver(obs.spec, latency_scale=self.scale.latency_scale)
            for obs in self.observers
        ]
        self.observers = fresh


def null_env(scale: ScaleConfig = DEFAULT_SCALE) -> SimEnv:
    """An environment with no machine observers (counting only)."""
    return SimEnv(scale=scale, machines=())
