"""Simulation substrate: machine models, scaling, and the event clock.

The paper's conclusions hinge on *where time goes* — CPU vs. I/O, random
vs. sequential — on three machines with very different CPU/disk balances
(Table 1).  We reproduce those measurements with event accounting:

* algorithms charge abstract CPU operations to a :class:`~repro.sim.env.SimEnv`;
* all page traffic flows through the environment as byte-addressed read
  and write events;
* one :class:`~repro.sim.machines.MachineObserver` per machine converts
  the shared event trace into per-machine CPU seconds and I/O seconds,
  classifying each disk access as random, sequential, or a track-buffer
  hit exactly as the corresponding 1999 disk would have.

Because all observers consume the same trace, a single algorithm run
yields the timings for all three machines at once.
"""

from repro.sim.scale import ScaleConfig, PAPER_SCALE, DEFAULT_SCALE
from repro.sim.machines import (
    CpuSpec,
    DiskSpec,
    MachineSpec,
    MachineObserver,
    MACHINE_1,
    MACHINE_2,
    MACHINE_3,
    ALL_MACHINES,
)
from repro.sim.env import SimEnv

__all__ = [
    "ScaleConfig",
    "PAPER_SCALE",
    "DEFAULT_SCALE",
    "CpuSpec",
    "DiskSpec",
    "MachineSpec",
    "MachineObserver",
    "MACHINE_1",
    "MACHINE_2",
    "MACHINE_3",
    "ALL_MACHINES",
    "SimEnv",
]
