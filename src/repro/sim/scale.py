"""Proportional scaling of the paper's experimental setup.

The paper joins up to 29 million rectangles on machines with 64 MB of
RAM, 8 KB index pages, a 22 MB LRU buffer pool for the tree join, and
512 KB logical blocks for the stream algorithms.  Running the full-size
workloads in pure Python is infeasible, so we scale the *entire* setup
by a single factor while preserving every regime the paper's results
depend on:

* dataset cardinalities shrink by ``scale`` (default 256);
* index pages shrink from 8192 to 512 bytes (factor 16), so page counts
  shrink by scale/16 = 16 and tree heights stay realistic (fanout ~24
  instead of 400, 2-4 levels);
* the sort/partition memory budget shrinks by ``scale`` so external
  sorting still happens for the DISK* datasets and not for NJ (exactly
  as in the paper, where NJ at 7.9 MB fit in the 24 MB of free RAM);
* the stream logical block shrinks by the *latency* factor (16), not by
  ``scale``: block size governs the seek-to-transfer balance of every
  stream pass, so it must shrink in step with per-request latency or
  the merge pass would pay 16x the paper's relative seek cost.  (The
  memory budget and the block size therefore scale differently — the
  first controls run counts and partition counts, the second the I/O
  granularity; each is faithful to the quantity it governs.);
* the ST buffer pool shrinks with page count, plus a 25% allowance for
  the scaled pages' relatively larger header/fanout overhead, so the
  regime boundary stays where the paper had it: the NJ and NY indexes
  fit in the pool, the DISK* indexes do not (Section 6.2);
* per-request disk latency shrinks by ``latency_scale`` = scale/16 so
  that (requests x latency) and (bytes / throughput) keep the paper's
  relative magnitudes — i.e. a random page read still costs ~10x a
  sequential one, the ratio the paper's cost argument is built on.

``PAPER_SCALE`` (scale=1) keeps every constant at its published value
for anyone who wants to run the original configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.rect import RECT_BYTES

#: The paper's R-tree node size (Section 5.1: 8 KB per node everywhere).
PAPER_INDEX_PAGE_BYTES = 8192
#: The paper's logical block size for stream-based algorithms (Section 5.2).
PAPER_STREAM_BLOCK_BYTES = 512 * 1024
#: Free internal memory available to the algorithms (Section 5.1: 24 MB).
PAPER_MEMORY_BYTES = 24 * 1024 * 1024
#: LRU buffer pool granted to the tree join ST (Section 3.3: 22 MB).
PAPER_BUFFER_POOL_BYTES = 22 * 1024 * 1024


@dataclass(frozen=True)
class ScaleConfig:
    """All size-dependent constants of the experimental setup.

    Attributes
    ----------
    scale:
        Divisor applied to dataset cardinalities and byte budgets.
    index_page_bytes:
        R-tree node size in bytes.
    stream_block_bytes:
        Logical block size used by the stream BTE (SSSJ, PBSM, sorting).
    memory_bytes:
        Internal memory budget for sorting and PBSM partition sizing.
    buffer_pool_bytes:
        LRU buffer pool capacity for the synchronized tree join.
    """

    scale: int = 256
    index_page_bytes: int = 512
    stream_block_bytes: int = PAPER_STREAM_BLOCK_BYTES // 16
    memory_bytes: int = PAPER_MEMORY_BYTES // 256
    buffer_pool_bytes: int = (PAPER_BUFFER_POOL_BYTES * 5) // (4 * 256)
    name: str = "1/256"

    @property
    def page_scale(self) -> float:
        """Factor by which page *counts* shrink relative to the paper."""
        return self.scale / (PAPER_INDEX_PAGE_BYTES / self.index_page_bytes)

    @property
    def latency_scale(self) -> float:
        """Factor by which per-request disk latency must shrink.

        Page counts shrink by ``page_scale`` while data volume shrinks
        by ``scale``; dividing latency by scale/page_scale keeps
        latency-bound and throughput-bound costs in the paper's
        proportions.
        """
        return self.scale / self.page_scale

    @property
    def memory_rects(self) -> int:
        """How many 20-byte rectangles fit in the memory budget."""
        return max(64, self.memory_bytes // RECT_BYTES)

    @property
    def buffer_pool_pages(self) -> int:
        """LRU pool capacity in index pages."""
        return max(4, self.buffer_pool_bytes // self.index_page_bytes)

    def scaled_count(self, paper_count: int) -> int:
        """Cardinality of a paper dataset under this configuration."""
        return max(16, int(round(paper_count / self.scale)))


#: Default configuration used by tests, examples and benchmarks.
DEFAULT_SCALE = ScaleConfig()

#: A quick configuration for smoke tests and CI-speed benchmark runs.
QUICK_SCALE = ScaleConfig(
    scale=1024,
    index_page_bytes=512,
    stream_block_bytes=PAPER_STREAM_BLOCK_BYTES // 16,
    memory_bytes=PAPER_MEMORY_BYTES // 1024,
    buffer_pool_bytes=PAPER_BUFFER_POOL_BYTES // 1024,
    name="1/1024",
)

#: The paper's original constants (full-size runs; very slow in Python).
PAPER_SCALE = ScaleConfig(
    scale=1,
    index_page_bytes=PAPER_INDEX_PAGE_BYTES,
    stream_block_bytes=PAPER_STREAM_BLOCK_BYTES,
    memory_bytes=PAPER_MEMORY_BYTES,
    buffer_pool_bytes=PAPER_BUFFER_POOL_BYTES,
    name="paper",
)
