"""The three experimental machines of Table 1 and their cost observers.

==========  ============  =========================  =====  ======  ==========
Machine     CPU (MHz)     Disk model                 Buffer  Read    Throughput
==========  ============  =========================  =====  ======  ==========
1           SPARC 20, 50  ST-32550N Barracuda        512 KB  8.0 ms  10 MB/s
2           Ultra 10, 300 ST-34342A Medalist         128 KB  12.5 ms 33.3 MB/s
3           Alpha, 500    ST-34501W Cheetah          512 KB  7.7 ms  40 MB/s
==========  ============  =========================  =====  ======  ==========

Machine 1 pairs a slow CPU with a fast disk (CPU-bound); Machine 3 pairs
a fast CPU with a fast disk (I/O effects dominate the algorithm
comparison); Machine 2 sits in between but has a notably small on-disk
track buffer, which the paper identifies as the reason ST's sequential-
layout advantage shrinks there (Section 6.2).

A :class:`MachineObserver` replays the byte-addressed I/O event stream
produced by a run and prices each access:

* **sequential** — the access starts exactly where the previous one
  ended: transfer time only;
* **track-buffer hit** — the access lies inside one of the disk cache's
  readahead *segments*: transfer time only (plus streaming over any
  skipped bytes).  Disk caches of the period were segmented — the
  Barracuda/Cheetah manuals describe splitting the buffer into several
  segments so that a handful of interleaved sequential streams can each
  keep a readahead window.  This matters for the tree join, which
  alternates between two index regions, and for PBSM, which reads 2p
  partition streams; each stream holds onto its own segment.
* **random** — everything else: average positioning time plus transfer.

Writes pay a 1.5x transfer penalty, the paper's Section 6.3 assumption
("a sequential write takes on average 1.5 times as much time as a
sequential read").

The observer also maintains the *estimated* I/O time of the naive model
the paper debunks in Section 6.2 — every page request priced at the
average random read time — so Figure 2's estimated-vs-observed contrast
falls out of a single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: CPU cycles charged per abstract operation (comparison, heap edge,
#: rectangle copy).  Calibrated once so that on Machine 1 the internal
#: computation dominates (as in Figures 2(d) and 3(a)) while on Machine 3
#: the I/O pattern decides the ranking.  All machines share the constant;
#: only the clock rate differs, as in the paper.
CPU_CYCLES_PER_OP = 55.0

#: Write transfer penalty relative to a read of the same bytes.
WRITE_PENALTY = 1.5


@dataclass(frozen=True)
class CpuSpec:
    """Processor model: clock rate is the only parameter that matters."""

    mhz: float

    @property
    def seconds_per_op(self) -> float:
        return CPU_CYCLES_PER_OP / (self.mhz * 1e6)


@dataclass(frozen=True)
class DiskSpec:
    """Disk model parameters straight from Table 1.

    ``avg_read_ms`` is the average positioning (seek + rotational) cost
    of a random access; ``peak_mb_s`` the sequential transfer rate;
    ``buffer_kb`` the on-disk track/readahead buffer, divided into
    ``cache_segments`` independent readahead segments.
    """

    model: str
    avg_read_ms: float
    peak_mb_s: float
    buffer_kb: int
    cache_segments: int = 4

    def transfer_seconds(self, nbytes: int) -> float:
        return nbytes / (self.peak_mb_s * 1024 * 1024)


@dataclass(frozen=True)
class MachineSpec:
    """One of the paper's three hardware configurations."""

    name: str
    cpu: CpuSpec
    disk: DiskSpec


MACHINE_1 = MachineSpec(
    "Machine 1 (SPARC 20 / Barracuda)",
    CpuSpec(mhz=50.0),
    DiskSpec("ST-32550N", avg_read_ms=8.0, peak_mb_s=10.0, buffer_kb=512),
)
MACHINE_2 = MachineSpec(
    "Machine 2 (Ultra 10 / Medalist)",
    CpuSpec(mhz=300.0),
    DiskSpec("ST-34342A", avg_read_ms=12.5, peak_mb_s=33.3, buffer_kb=128),
)
MACHINE_3 = MachineSpec(
    "Machine 3 (Alpha 500 / Cheetah)",
    CpuSpec(mhz=500.0),
    DiskSpec("ST-34501W", avg_read_ms=7.7, peak_mb_s=40.0, buffer_kb=512),
)

ALL_MACHINES = (MACHINE_1, MACHINE_2, MACHINE_3)


@dataclass
class MachineObserver:
    """Accumulates per-machine CPU and I/O seconds from the event trace.

    One observer per machine attaches to a :class:`repro.sim.env.SimEnv`;
    the environment forwards every CPU charge and every disk access to
    all attached observers, so one algorithm run prices itself on all
    machines simultaneously.

    ``latency_scale`` comes from the active
    :class:`~repro.sim.scale.ScaleConfig` and shrinks per-request
    positioning latency to match the scaled-down page counts (see that
    module's docstring for the arithmetic).
    """

    spec: MachineSpec
    latency_scale: float = 1.0

    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    estimated_io_seconds: float = 0.0

    reads_random: int = 0
    reads_sequential: int = 0
    reads_buffered: int = 0
    writes_random: int = 0
    writes_sequential: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cpu_ops: Dict[str, int] = field(default_factory=dict)

    _head: int = field(default=-1, repr=False)
    #: Readahead segments as (pos, hi) windows, least recent first.
    _segments: list = field(default_factory=list, repr=False)

    # -- event sinks ----------------------------------------------------

    def on_cpu(self, category: str, ops: int) -> None:
        self.cpu_ops[category] = self.cpu_ops.get(category, 0) + ops
        self.cpu_seconds += ops * self.spec.cpu.seconds_per_op

    def on_read(self, offset: int, nbytes: int) -> None:
        disk = self.spec.disk
        transfer = disk.transfer_seconds(nbytes)
        self.bytes_read += nbytes
        self.estimated_io_seconds += self._random_latency() + transfer
        end = offset + nbytes
        seg_idx = self._find_segment(offset, end)
        if offset == self._head:
            self.reads_sequential += 1
            self.io_seconds += transfer
        elif seg_idx is not None:
            # Readahead hit: no positioning cost, but the platter
            # streams through any skipped bytes inside the segment.
            self.reads_buffered += 1
            pos, _hi = self._segments[seg_idx]
            skipped = max(0, offset - pos)
            self.io_seconds += transfer + disk.transfer_seconds(skipped)
        else:
            self.reads_random += 1
            self.io_seconds += self._random_latency() + transfer
        # This read's stream (re)fills one segment covering the window
        # past `end`; the cache holds at most `cache_segments` windows.
        if seg_idx is not None:
            del self._segments[seg_idx]
        self._segments.append((end, end + self._segment_window()))
        while len(self._segments) > max(1, disk.cache_segments):
            self._segments.pop(0)
        self._head = end

    def on_write(self, offset: int, nbytes: int) -> None:
        disk = self.spec.disk
        transfer = disk.transfer_seconds(nbytes) * WRITE_PENALTY
        self.bytes_written += nbytes
        self.estimated_io_seconds += self._random_latency() + transfer
        if offset == self._head:
            self.writes_sequential += 1
            self.io_seconds += transfer
        else:
            self.writes_random += 1
            self.io_seconds += self._random_latency() + transfer
        # The arm moves; read segments stay cached (segmented buffer).
        self._head = offset + nbytes

    # -- derived metrics -------------------------------------------------

    @property
    def observed_seconds(self) -> float:
        """Simulated wall-clock: CPU plus pattern-aware I/O."""
        return self.cpu_seconds + self.io_seconds

    @property
    def estimated_seconds(self) -> float:
        """The naive Section 6.2 estimate: CPU plus requests x avg read."""
        return self.cpu_seconds + self.estimated_io_seconds

    @property
    def total_requests(self) -> int:
        return (
            self.reads_random
            + self.reads_sequential
            + self.reads_buffered
            + self.writes_random
            + self.writes_sequential
        )

    def snapshot(self) -> dict:
        """A plain-dict summary used by the experiment reports."""
        return {
            "machine": self.spec.name,
            "cpu_seconds": self.cpu_seconds,
            "io_seconds": self.io_seconds,
            "observed_seconds": self.observed_seconds,
            "estimated_io_seconds": self.estimated_io_seconds,
            "estimated_seconds": self.estimated_seconds,
            "reads_random": self.reads_random,
            "reads_sequential": self.reads_sequential,
            "reads_buffered": self.reads_buffered,
            "writes_random": self.writes_random,
            "writes_sequential": self.writes_sequential,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    # -- internals -------------------------------------------------------

    def _random_latency(self) -> float:
        return (self.spec.disk.avg_read_ms / 1e3) / self.latency_scale

    def _segment_window(self) -> int:
        disk = self.spec.disk
        per_segment = disk.buffer_kb * 1024 / max(1, disk.cache_segments)
        return int(per_segment / self.latency_scale)

    def _find_segment(self, offset: int, end: int):
        """Most-recent segment whose window covers [offset, end)."""
        for idx in range(len(self._segments) - 1, -1, -1):
            pos, hi = self._segments[idx]
            if pos <= offset and end <= hi:
                return idx
        return None
