"""Quickstart: join an indexed relation against a plain stream with PQ.

This is the paper's headline capability in ~40 lines: the same join
algorithm consumes an R-tree and a non-indexed stream, because both are
just sources of y-sorted rectangles (Section 4).

Run:  python examples/quickstart.py
"""

from repro import Disk, PageStore, SimEnv, Stream, bulk_load, pq_join
from repro.data import make_hydro, make_roads
from repro.geom import Rect


def main() -> None:
    env = SimEnv()  # simulated machine room: the paper's 3 machines
    disk = Disk(env)
    store = PageStore(disk, env.scale.index_page_bytes)

    region = Rect(-75.6, -73.9, 38.9, 41.4)  # roughly New Jersey
    roads = make_roads(20_000, region, seed=1)
    hydro = make_hydro(4_000, region, seed=2, layout_seed=1)

    # One input indexed, the other a flat stream of 20-byte records.
    roads_index = bulk_load(store, roads, name="roads")
    hydro_stream = Stream.from_rects(disk, hydro, name="hydro")
    print(f"roads index : {roads_index.page_count} pages, "
          f"height {roads_index.height}, "
          f"packing {roads_index.packing_ratio():.0%}")
    print(f"hydro stream: {len(hydro_stream)} rectangles, "
          f"{hydro_stream.num_blocks} blocks")

    env.reset_counters()  # measure the join, not the loading
    result = pq_join(roads_index, hydro_stream, disk,
                     universe=region, collect_pairs=True)

    print(f"\nPQ join found {result.n_pairs} intersecting MBR pairs")
    print(f"peak memory: {result.max_memory_bytes / 1024:.1f} KB "
          f"(queues {result.detail['queue_bytes'] / 1024:.1f} KB + "
          f"sweep {result.detail['sweep_bytes'] / 1024:.1f} KB)")
    print(f"index pages read: {result.detail['pages_read_a']} "
          f"(= {roads_index.page_count}, each exactly once)")

    print("\nSimulated cost on the paper's machines:")
    for snap in env.snapshots():
        print(f"  {snap['machine']}: "
              f"{snap['observed_seconds']:.3f}s observed "
              f"({snap['cpu_seconds']:.3f}s CPU + "
              f"{snap['io_seconds']:.3f}s I/O)")

    sample = sorted(result.pairs)[:5]
    print(f"\nfirst pairs (road id, hydro id): {sample}")


if __name__ == "__main__":
    main()
