"""GIS overlay pipeline: filter step + refinement step.

The paper's introduction motivates the spatial join with GIS overlay
queries: "which roads cross rivers?".  The filter step (the paper's
subject) works on MBRs; candidates then go through the refinement step
with exact polyline geometry.  This example runs the full two-step
pipeline on a synthetic river/road network and reports how many filter
candidates survive refinement — the false-positive rate of the MBR
approximation.

Run:  python examples/gis_overlay.py
"""

import numpy as np

from repro import Disk, PageStore, SimEnv, Stream, bulk_load, pq_join
from repro.geom import Rect
from repro.geom.refine import polylines_intersect

REGION = Rect(0.0, 100.0, 0.0, 100.0)
N_ROADS = 6_000
N_RIVERS = 40
SEGMENTS_PER_RIVER = 60


def build_roads(rng):
    """Short 2-point road polylines scattered over the region."""
    roads = []
    for i in range(N_ROADS):
        x = rng.uniform(0, 100)
        y = rng.uniform(0, 100)
        angle = rng.uniform(0, np.pi)
        length = rng.lognormal(np.log(0.6), 0.4)
        x2 = float(np.clip(x + np.cos(angle) * length, 0, 100))
        y2 = float(np.clip(y + np.sin(angle) * length, 0, 100))
        roads.append((i, [(x, y), (x2, y2)]))
    return roads


def build_rivers(rng):
    """Meandering multi-segment river polylines."""
    rivers = []
    for i in range(N_RIVERS):
        x, y = rng.uniform(10, 90), rng.uniform(10, 90)
        heading = rng.uniform(0, 2 * np.pi)
        points = [(x, y)]
        for _ in range(SEGMENTS_PER_RIVER):
            heading += rng.normal(0, 0.4)
            x = float(np.clip(x + np.cos(heading) * 1.2, 0, 100))
            y = float(np.clip(y + np.sin(heading) * 1.2, 0, 100))
            points.append((x, y))
        rivers.append((i, points))
    return rivers


def mbr_of_polyline(fid, points):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    f32 = np.float32
    return Rect(float(f32(min(xs))), float(f32(max(xs))),
                float(f32(min(ys))), float(f32(max(ys))), fid)


def main() -> None:
    rng = np.random.default_rng(42)
    roads = build_roads(rng)
    rivers = build_rivers(rng)
    road_geom = dict(roads)
    river_geom = dict(rivers)

    env = SimEnv()
    disk = Disk(env)
    store = PageStore(disk, env.scale.index_page_bytes)

    # Filter step: MBR join, roads indexed, rivers streamed.
    road_index = bulk_load(
        store, [mbr_of_polyline(i, pts) for i, pts in roads], name="roads"
    )
    river_stream = Stream.from_rects(
        disk, [mbr_of_polyline(i, pts) for i, pts in rivers], name="rivers"
    )
    env.reset_counters()
    filtered = pq_join(road_index, river_stream, disk, universe=REGION,
                       collect_pairs=True)
    print(f"filter step : {filtered.n_pairs} candidate (road, river) pairs")

    # Refinement step: exact polyline intersection on the candidates.
    crossings = [
        (road_id, river_id)
        for road_id, river_id in filtered.pairs
        if polylines_intersect(road_geom[road_id], river_geom[river_id])
    ]
    rate = len(crossings) / filtered.n_pairs if filtered.n_pairs else 0.0
    print(f"refinement  : {len(crossings)} true crossings "
          f"({rate:.0%} of candidates survive; the rest were MBR-only "
          "overlaps)")

    busiest = {}
    for _, river_id in crossings:
        busiest[river_id] = busiest.get(river_id, 0) + 1
    top = sorted(busiest.items(), key=lambda kv: -kv[1])[:3]
    print("most-crossed rivers:",
          ", ".join(f"river {rid} ({n} bridges)" for rid, n in top))

    m3 = env.snapshots()[-1]
    print(f"\nfilter-step cost on {m3['machine']}: "
          f"{m3['observed_seconds']:.3f}s simulated")


if __name__ == "__main__":
    main()
