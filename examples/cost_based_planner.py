"""The cost-based strategy choice of Section 6.3, end to end.

"Using an index-based approach whenever indexes are available does not
always lead to the best execution time" — the paper proposes a simple
cost model that compares the sort path (sequential I/O, ~6 passes) with
the index path (one random read per participating page) and picks per
query.  This example runs the paper's motivating scenario — hydro
features of one state against the road network of the entire country —
and then the dense nationwide overlay, showing the planner switch
strategies, with the simulated I/O receipts to prove it right.

Run:  python examples/cost_based_planner.py
"""

from repro import Disk, PageStore, SimEnv, Stream, bulk_load
from repro.core.cost_model import CostModel
from repro.core.histogram import SpatialHistogram
from repro.core.planner import Relation, unified_spatial_join
from repro.data import make_hydro, make_roads
from repro.geom import Rect
from repro.sim import MACHINE_1, MACHINE_3

US = Rect(-125.0, -66.0, 30.0, 48.0)
MINNESOTA = Rect(-97.2, -89.5, 43.5, 49.0)


def main() -> None:
    env = SimEnv()
    disk = Disk(env)
    store = PageStore(disk, env.scale.index_page_bytes)

    us_roads = make_roads(60_000, US, seed=11, layout_seed=11)
    mn_hydro = make_hydro(1_200, MINNESOTA, seed=12, layout_seed=11,
                          id_base=1_000_000)
    us_hydro = make_hydro(12_000, US, seed=13, layout_seed=11,
                          id_base=2_000_000)

    roads = Relation(
        name="us-roads",
        stream=Stream.from_rects(disk, us_roads, name="roads"),
        tree=bulk_load(store, us_roads, name="roads"),
        universe=US,
        histogram=SpatialHistogram.build(us_roads, US, grid=64),
    )
    local = Relation(
        name="mn-hydro",
        stream=Stream.from_rects(disk, mn_hydro, name="mn"),
        universe=MINNESOTA,
    )
    national = Relation(
        name="us-hydro",
        stream=Stream.from_rects(disk, us_hydro, name="us-hydro"),
        universe=US,
    )

    model = CostModel(MACHINE_1, env.scale)
    print(f"cost model on {MACHINE_1.name}:")
    print(f"  random/sequential page-read ratio r = "
          f"{model.random_to_sequential_ratio:.1f}")
    print(f"  index pays off below f* = {model.crossover_fraction():.0%} "
          "leaf participation (the paper's ~60% rule)\n")

    for title, other in (
        ("Minnesota hydro x US roads (localized)", local),
        ("US hydro x US roads (dense overlay)", national),
    ):
        env.reset_counters()
        res = unified_spatial_join(roads, other, disk, MACHINE_1,
                                   collect_pairs=False)
        m1 = env.observer_for(MACHINE_1)
        frac = roads.fraction_in(other.universe)
        print(f"{title}:")
        print(f"  roads participating (histogram): {frac:.0%}")
        print(f"  planner chose: {res.detail['strategy']}  "
              f"(predicted {res.detail['estimated_io_seconds']:.3f}s I/O)")
        print(f"  result: {res.n_pairs} pairs; observed "
              f"{m1.io_seconds:.3f}s I/O + {m1.cpu_seconds:.3f}s CPU")

        # The receipt: force the other strategy and compare.
        forced_name = "sssj" if res.detail["strategy"] != "sssj" \
            else "pq-mixed-a"
        env.reset_counters()
        unified_spatial_join(roads, other, disk, MACHINE_1,
                             force=forced_name)
        alt = env.observer_for(MACHINE_1)
        print(f"  (forcing {forced_name} instead: "
              f"{alt.io_seconds:.3f}s I/O + {alt.cpu_seconds:.3f}s CPU)\n")


if __name__ == "__main__":
    main()
