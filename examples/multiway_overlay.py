"""Multi-way join: roads x hydro x landuse in one cascade (Section 4).

"A 3-way intersection join can be performed by feeding the output of a
two-way join directly into another join with a third (indexed or
non-indexed) input" — no intermediate sorting or spooling, because the
sweep emits intersection rectangles already ordered by lower
y-coordinate.

The scenario: find road segments that cross water inside an
agricultural parcel (e.g. for a culvert-inspection worklist).

Run:  python examples/multiway_overlay.py
"""

from repro import Disk, PageStore, SimEnv, Stream, bulk_load, multiway_join
from repro.data import make_hydro, make_landuse, make_roads
from repro.geom import Rect

REGION = Rect(-79.8, -71.8, 40.5, 45.0)  # roughly New York state
SEED = 7


def main() -> None:
    env = SimEnv()
    disk = Disk(env)
    store = PageStore(disk, env.scale.index_page_bytes)

    roads = make_roads(12_000, REGION, seed=SEED, layout_seed=SEED)
    hydro = make_hydro(2_500, REGION, seed=SEED + 1, layout_seed=SEED,
                       id_base=1_000_000)
    landuse = make_landuse(900, REGION, seed=SEED + 2, layout_seed=SEED,
                           id_base=2_000_000)

    # Mixed representations, as the paper allows: two indexes + a stream.
    roads_index = bulk_load(store, roads, name="roads")
    hydro_stream = Stream.from_rects(disk, hydro, name="hydro")
    landuse_index = bulk_load(store, landuse, name="landuse")

    env.reset_counters()
    result = multiway_join(
        [roads_index, hydro_stream, landuse_index],
        disk, universe=REGION, collect_tuples=True,
    )

    print(f"3-way intersection tuples: {result.n_pairs}")
    print("sample (road, hydro, landuse):",
          sorted(result.pairs)[:4])

    m3 = env.snapshots()[-1]
    print(f"\npage reads: {env.page_reads} "
          f"(roads index {roads_index.page_count} + "
          f"landuse index {landuse_index.page_count} pages, each once, "
          "+ hydro sort passes)")
    print(f"simulated cost on {m3['machine']}: "
          f"{m3['observed_seconds']:.3f}s")

    # The same cascade works with any arity: add a fourth relation.
    parcels = make_landuse(300, REGION, seed=SEED + 3, layout_seed=SEED,
                           id_base=3_000_000)
    env.reset_counters()
    four = multiway_join(
        [roads_index, hydro_stream, landuse_index,
         Stream.from_rects(disk, parcels, name="parcels")],
        disk, universe=REGION,
    )
    print(f"\n4-way tuples (adding a parcel overlay): {four.n_pairs}")


if __name__ == "__main__":
    main()
