"""The spatial query engine: register once, query forever.

Every earlier example rebuilds streams and indexes per call.  This one
shows the serving layer: two relations are registered **once** with the
engine's catalog, then several distinct queries run against them — a
dense nationwide overlay, a localized window join (the planner switches
to the index path), and a refined GIS query — and finally a repeat of
the first query is answered straight from the result cache, visible in
the engine's metrics as a cache hit with zero extra pages read.

Run:  python examples/query_engine.py
"""

from repro.data import make_hydro, make_roads
from repro.engine import Query, SpatialQueryEngine
from repro.geom import Rect

US = Rect(-125.0, -66.0, 30.0, 48.0)
TWIN_CITIES = Rect(-93.8, -92.6, 44.5, 45.4)


def main() -> None:
    engine = SpatialQueryEngine(workers=4, cache_capacity=32)

    # -- register once ---------------------------------------------------
    roads = make_roads(40_000, US, seed=11, layout_seed=11)
    hydro = make_hydro(8_000, US, seed=12, layout_seed=11,
                       id_base=1_000_000)
    engine.register("roads", roads, universe=US)
    engine.register("hydro", hydro, universe=US)
    engine.prepare()
    print(f"catalog: {engine.catalog.names()}, "
          f"{engine.catalog.indexes_built} indexes built\n")

    # -- query 1: dense nationwide overlay -------------------------------
    overlay = Query(relations=("roads", "hydro"))
    out = engine.execute(overlay)
    print(f"[1] overlay        : {out.result.n_pairs:,} pairs via "
          f"{out.result.detail['strategy']} "
          f"(sim {out.sim_wall_seconds:.3f}s)")

    # -- query 2: localized window join ----------------------------------
    localized = Query(relations=("roads", "hydro"), window=TWIN_CITIES)
    print("\n" + engine.explain(localized) + "\n")
    out = engine.execute(localized)
    print(f"[2] window join    : {out.result.n_pairs:,} pairs via "
          f"{out.result.detail['strategy']} "
          f"(sim {out.sim_wall_seconds:.3f}s)")

    # -- query 3: forced-strategy ablation -------------------------------
    forced = Query(relations=("roads", "hydro"), window=TWIN_CITIES,
                   force="sssj")
    out = engine.execute(forced)
    print(f"[3] forced sssj    : {out.result.n_pairs:,} pairs via "
          f"{out.result.detail['strategy']} "
          f"(sim {out.sim_wall_seconds:.3f}s — the planner was right)")

    # -- query 4: warm-cache repeat of query 1 ---------------------------
    before = engine.metrics_snapshot()
    out = engine.execute(overlay)
    after = engine.metrics_snapshot()
    assert out.from_cache, "repeat query must come from the result cache"
    print(f"[4] overlay repeat : {out.result.n_pairs:,} pairs from cache "
          f"(pages read delta: "
          f"{after['pages_read'] - before['pages_read']})")

    # -- the serving story ----------------------------------------------
    snap = engine.metrics_snapshot()
    print(
        f"\nengine metrics: {snap['queries_served']} served, "
        f"{snap['cache_hits']} cache hits "
        f"(rate {snap['cache_hit_rate']:.0%}), "
        f"{snap['pages_read']:,} pages read, "
        f"sim {snap['sim_wall_seconds']:.3f}s "
        f"(I/O {snap['sim_io_seconds']:.3f}s + "
        f"CPU {snap['sim_cpu_seconds']:.3f}s), "
        f"strategies {snap['per_strategy']}"
    )


if __name__ == "__main__":
    main()
