"""Persisting and reloading a bulk-loaded index.

Bulk loading "essentially consists of (external) sorting of the data",
so the paper argues its cost should be amortized over several joins
(Section 6.3).  That only works if the index survives the session: this
example saves a packed R-tree to a real file in the 20-byte-record page
format of Section 5.3, reloads it into a fresh page store, and joins
against it — demonstrating the amortization workflow.

Run:  python examples/index_persistence.py
"""

import os
import tempfile

from repro import (
    Disk,
    PageStore,
    SimEnv,
    Stream,
    bulk_load,
    load_rtree,
    pq_join,
    save_rtree,
)
from repro.data import make_hydro, make_roads
from repro.geom import Rect

REGION = Rect(-83.0, -66.0, 33.0, 48.0)  # roughly TIGER disk 1


def main() -> None:
    build_env = SimEnv()
    build_disk = Disk(build_env)
    build_store = PageStore(build_disk, build_env.scale.index_page_bytes)

    roads = make_roads(15_000, REGION, seed=3, layout_seed=3)
    tree = bulk_load(build_store, roads, name="roads")
    print(f"built index: {tree.page_count} pages "
          f"({tree.index_bytes / 1024:.0f} KB), height {tree.height}, "
          f"packing {tree.packing_ratio():.0%}")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "roads.rpqt")
        save_rtree(tree, path)
        print(f"saved to {os.path.basename(path)}: "
              f"{os.path.getsize(path)} bytes on disk")

        # A later session: fresh simulated machine room, reload, join.
        env = SimEnv()
        disk = Disk(env)
        store = PageStore(disk, env.scale.index_page_bytes)
        loaded = load_rtree(store, path, name="roads")
        loaded.validate()
        print(f"reloaded and validated: {loaded.num_objects} rectangles")

        hydro = make_hydro(3_000, REGION, seed=4, layout_seed=3,
                           id_base=1_000_000)
        env.reset_counters()
        result = pq_join(loaded, Stream.from_rects(disk, hydro), disk,
                         universe=REGION)
        print(f"join against reloaded index: {result.n_pairs} pairs, "
              f"{env.page_reads} page reads")

        # The amortization argument in one line: joining N times pays
        # the bulk-load sort once.
        m3 = env.snapshots()[-1]
        print(f"per-join cost on {m3['machine']}: "
              f"{m3['observed_seconds']:.3f}s simulated")


if __name__ == "__main__":
    main()
