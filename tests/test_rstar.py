"""R*-tree insertion: invariants, overlap quality, join compatibility."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_pairs
from repro.core.st_join import st_join
from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect, area, intersection
from repro.rtree.insert import RTreeBuilder
from repro.rtree.rstar import RStarTreeBuilder, overlap_area
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def fresh_store():
    return PageStore(Disk(make_env()), TEST_SCALE.index_page_bytes)


def level1_overlap(tree) -> float:
    """Total pairwise overlap area among sibling leaf MBRs."""
    total = 0.0
    if tree.height < 2:
        return 0.0
    for pid in tree.pages_per_level[1]:
        node = tree.read_node_silent(pid)
        for i, e in enumerate(node.entries):
            total += overlap_area(e, node.entries[i + 1:])
    return total


class TestRStar:
    def test_empty_finish_rejected(self):
        with pytest.raises(ValueError):
            RStarTreeBuilder(fresh_store()).finish()

    def test_invariants_small(self):
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(uniform_rects(60, UNIT, 0.03, seed=1))
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == 60

    def test_invariants_with_reinsertion_and_splits(self):
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(clustered_rects(800, UNIT, 0.01, seed=2))
        tree = builder.finish()
        tree.validate()
        assert tree.height >= 2

    def test_all_objects_reachable(self):
        rects = uniform_rects(400, UNIT, 0.02, seed=3)
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(rects)
        tree = builder.finish()
        assert sorted(r.rid for r in tree.iter_all()) == sorted(
            r.rid for r in rects
        )

    def test_less_overlap_than_guttman(self):
        # The R*-tree's reason to exist: tighter, less overlapping
        # nodes than Guttman insertion on the same data.
        rects = clustered_rects(1200, UNIT, 0.01, seed=4)
        g = RTreeBuilder(fresh_store())
        g.extend(rects)
        guttman = g.finish()
        r = RStarTreeBuilder(fresh_store())
        r.extend(rects)
        rstar = r.finish()
        assert level1_overlap(rstar) < level1_overlap(guttman)

    def test_queries_match_filter(self):
        from repro.geom.rect import intersects

        rects = uniform_rects(300, UNIT, 0.02, seed=5)
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(rects)
        tree = builder.finish()
        window = Rect(0.25, 0.6, 0.3, 0.8, 0)
        got = sorted(x.rid for x in tree.query(window))
        want = sorted(x.rid for x in rects if intersects(x, window))
        assert got == want

    def test_joinable_with_st(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        a = uniform_rects(400, UNIT, 0.03, seed=6)
        b = uniform_rects(150, UNIT, 0.04, seed=7, id_base=10_000)
        ba = RStarTreeBuilder(store)
        ba.extend(a)
        bb = RStarTreeBuilder(store)
        bb.extend(b)
        res = st_join(ba.finish(), bb.finish(), collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_min_fill_after_splits(self):
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(uniform_rects(500, UNIT, 0.02, seed=8))
        tree = builder.finish()
        for level in tree.pages_per_level:
            for pid in level:
                node = tree.read_node_silent(pid)
                if pid != tree.root_page_id:
                    assert len(node.entries) >= 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 250), st.integers(0, 40))
    def test_property_invariants(self, n, seed):
        builder = RStarTreeBuilder(fresh_store())
        builder.extend(uniform_rects(n, UNIT, 0.03, seed=seed))
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == n
