"""Concurrent serving front-end: admission, deadlines, shedding, chaos.

The serving layer's contract has three legs, each tested here:

* **Liveness under load** — queries park in a bounded queue instead of
  failing with :class:`AdmissionError`; every released grant pumps the
  queue; overload sheds oldest-batch-first; the incoming batch query
  sheds itself rather than evicting interactive work.
* **Deadlines are cooperative, not corrupting** — expiry fires at
  queue and scatter checkpoints only, so an expired query frees its
  admission grant and leaves every shared structure (caches, budget,
  result stores) consistent; the chaos differential run asserts zero
  budget leak after a thousand mixed-fate queries.
* **Accounting** — the LPT critical-path sim model
  (:func:`lpt_makespan`), the latency-weighted replica ordering and
  the LRU-capped :class:`ResultStore` are pinned with exact numbers.
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import pytest

from repro.core.join_result import JoinResult
from repro.engine import (
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    Query,
    ResourceBudget,
    ResultStore,
    ServingFrontend,
    ShardedEngine,
    SpatialQueryEngine,
    lpt_makespan,
    run_concurrent_workload,
    run_workload,
    serve_http,
)
from repro.engine.serve import parse_query_body
from repro.geom.rect import Rect
from repro.sim.machines import MACHINE_3

from tests.conftest import TEST_SCALE, _uniform

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)

KiB = 1024


def _make_sharded(shards: int = 2, **kw) -> ShardedEngine:
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("workers", 2)
    kw.setdefault("pool_kind", "serial")
    kw.setdefault("cache_capacity", 0)
    kw.setdefault("min_ship_rects", 0)
    return ShardedEngine(shards=shards, **kw)


def _registered(shards: int = 2, n: int = 120, seed: int = 3,
                **kw) -> ShardedEngine:
    engine = _make_sharded(shards, **kw)
    rng = random.Random(seed)
    engine.register("a", _uniform(rng, n), universe=UNIT)
    engine.register("b", _uniform(rng, n, 10_000), universe=UNIT)
    return engine


def _frontend(engine, **kw) -> ServingFrontend:
    kw.setdefault("admission_bytes", 8 << 20)
    return ServingFrontend(engine, **kw)


def _registered_single(n: int = 120, seed: int = 3,
                       **kw) -> SpatialQueryEngine:
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("pool_kind", "serial")
    kw.setdefault("cache_capacity", 0)
    engine = SpatialQueryEngine(**kw)
    rng = random.Random(seed)
    engine.register("a", _uniform(rng, n), universe=UNIT)
    engine.register("b", _uniform(rng, n, 10_000), universe=UNIT)
    return engine


# -- try_acquire -------------------------------------------------------------


class TestTryAcquire:
    def test_grants_exactly_or_refuses(self):
        budget = ResourceBudget(100)
        g = budget.try_acquire("q", 60)
        assert g is not None and g.bytes == 60
        assert budget.try_acquire("q", 50) is None, (
            "try_acquire must refuse rather than overcommit"
        )
        assert budget.in_use_bytes == 60
        g2 = budget.try_acquire("q", 40)
        assert g2 is not None
        g.release()
        g2.release()
        assert budget.in_use_bytes == 0

    def test_negative_rejected(self):
        budget = ResourceBudget(10)
        with pytest.raises(ValueError):
            budget.try_acquire("q", -1)

    def test_zero_bytes_always_granted(self):
        budget = ResourceBudget(1)
        g = budget.try_acquire("q", 1)
        assert budget.try_acquire("q", 0) is not None
        g.release()


# -- LPT critical path -------------------------------------------------------


class TestLptMakespan:
    def test_pinned_two_lane_schedule(self):
        # LPT on 2 lanes: 4 | 3+2 -> then 2 joins lane 0 (4+2=6),
        # 1 joins lane 1 (5+1=6): makespan 6, not the 12 a serial
        # sum would bill.
        assert lpt_makespan([4, 3, 2, 2, 1], 2) == pytest.approx(6.0)

    def test_one_lane_degenerates_to_sum(self):
        assert lpt_makespan([4, 3, 2], 1) == pytest.approx(9.0)

    def test_more_lanes_than_shards_is_max(self):
        assert lpt_makespan([4.0, 3.0], 8) == pytest.approx(4.0)

    def test_empty_is_zero(self):
        assert lpt_makespan([], 4) == 0.0

    def test_sharded_sim_accounting_is_critical_path(self):
        """Regression: scatter sim must equal the LPT makespan of the
        per-shard engine deltas, never their sum."""
        engine = _registered(shards=3, n=200)
        walls_before = [e.metrics.sim_wall_seconds
                        for e in engine.engines]
        out = engine.execute(Query(relations=("a", "b")))
        walls = [
            e.metrics.sim_wall_seconds - b
            for e, b in zip(engine.engines, walls_before)
        ]
        walls = [w for w in walls if w > 0]
        assert len(walls) == 3, "a full overlay scatters to every shard"
        assert out.sim_wall_seconds == pytest.approx(
            lpt_makespan(walls, engine.scatter_lanes)
        )
        assert out.sim_wall_seconds < sum(walls), (
            "the critical path must be cheaper than the serial sum"
        )
        assert engine.sim_wall_total == pytest.approx(
            out.sim_wall_seconds
        )
        engine.close()

    def test_single_worker_deployment_bills_the_sum(self):
        engine = _registered(shards=2, workers=1)
        assert engine.scatter_lanes == 1
        walls_before = [e.metrics.sim_wall_seconds
                        for e in engine.engines]
        out = engine.execute(Query(relations=("a", "b")))
        walls = [
            e.metrics.sim_wall_seconds - b
            for e, b in zip(engine.engines, walls_before)
        ]
        assert out.sim_wall_seconds == pytest.approx(sum(walls))
        engine.close()


# -- weighted replica selection ----------------------------------------------


class TestWeightedReplicaSelection:
    def test_slow_replica_demoted_behind_fast_ones(self):
        engine = _registered(shards=2, replicas=2)
        # Shard 0: replica 0 is observed 100x slower than replica 1.
        engine._latency_ewma[0][0] = 0.5
        engine._latency_ewma[0][1] = 0.005
        order = engine._replica_order(0)
        assert order[0] == 1, "the fast replica must be tried first"
        assert 0 in order, "the slow replica stays as fallback"
        assert engine.weighted_reroutes >= 1
        engine.close()

    def test_comparable_replicas_keep_rotating(self):
        engine = _registered(shards=2, replicas=2)
        engine._latency_ewma[0][0] = 0.010
        engine._latency_ewma[0][1] = 0.011  # within 1.5x: both fast
        reroutes = engine.weighted_reroutes
        seen_first = {engine._replica_order(0)[0] for _ in range(4)}
        assert seen_first == {0, 1}, (
            "comparable replicas must still round-robin"
        )
        assert engine.weighted_reroutes == reroutes
        engine.close()

    def test_ewma_recorded_on_success(self):
        engine = _registered(shards=2, replicas=2)
        for q in (Query(relations=("a", "b")),
                  Query(relations=("a", "a"))):
            engine.execute(q)
        observed = [
            ew for shard in engine._latency_ewma
            for ew in shard if ew is not None
        ]
        assert observed, "serving must record latency EWMAs"
        snap = engine.metrics_snapshot()
        assert snap["replica_latency_ewma"] == engine._latency_ewma
        engine.close()


# -- ResultStore LRU cap -----------------------------------------------------


def _result(tag: int, n_pairs: int = 40) -> JoinResult:
    pairs = [(tag * 10_000 + i, tag * 10_000 + i + 1)
             for i in range(n_pairs)]
    return JoinResult(algorithm="t", n_pairs=len(pairs), pairs=pairs,
                      detail={"strategy": "t"})


class TestResultStoreCap:
    def test_lru_eviction_keeps_store_under_cap(self, tmp_path):
        store = ResultStore(str(tmp_path), max_bytes=4 * KiB)
        for i in range(8):
            assert store.save(f"t{i}", _result(i))
        assert store.bytes <= 4 * KiB
        assert store.evictions > 0
        assert store.evicted_bytes > 0
        # The newest entries survive; the oldest were evicted.
        assert store.load("t7") is not None
        assert store.load("t0") is None

    def test_restore_counts_as_recent_use(self, tmp_path):
        store = ResultStore(str(tmp_path), max_bytes=3 * KiB)
        store.save("old", _result(1))
        store.save("mid", _result(2))
        assert store.load("old") is not None  # bump recency
        # Fill past the cap: "mid" (least recently used) must go
        # before "old".
        store.save("new1", _result(3))
        store.save("new2", _result(4))
        assert store.load("mid") is None
        assert store.load("old") is not None or store.evictions >= 2

    def test_oversized_entry_rejected_not_thrashed(self, tmp_path):
        store = ResultStore(str(tmp_path), max_bytes=512)
        store.save("small", _result(1, n_pairs=2))
        assert not store.save("huge", _result(2, n_pairs=400))
        assert store.rejections == 1
        assert store.load("small") is not None, (
            "an oversized save must not evict the resident entries"
        )

    def test_mtime_order_survives_restart(self, tmp_path):
        store = ResultStore(str(tmp_path), max_bytes=64 * KiB)
        for i in range(4):
            store.save(f"t{i}", _result(i))
        assert store.load("t0") is not None  # freshest by mtime now
        reopened = ResultStore(str(tmp_path), max_bytes=64 * KiB)
        assert next(iter(reopened._index)) != "t0", (
            "the restart scan must rebuild LRU order from mtimes"
        )
        snap = reopened.snapshot()
        assert snap["bytes"] == store.bytes
        assert snap["max_bytes"] == 64 * KiB

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for i in range(10):
            store.save(f"t{i}", _result(i))
        assert store.evictions == 0
        assert len(store) == 10

    def test_concurrent_duplicate_saves_count_bytes_once(self, tmp_path):
        import threading

        store = ResultStore(str(tmp_path), max_bytes=64 * KiB)
        barrier = threading.Barrier(4)

        def save():
            barrier.wait()
            store.save("dup", _result(1))

        threads = [threading.Thread(target=save) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # However many writers raced past the exists check, the index
        # holds one entry and _total_bytes matches it exactly — an
        # overcount here would trigger premature evictions forever.
        assert list(store._index) == ["dup"]
        assert store.bytes == store._index["dup"]
        assert store.load("dup") is not None, (
            "racing writers must never publish a corrupt file"
        )
        assert store.corrupt_drops == 0
        leftovers = [f for f in os.listdir(store.root)
                     if f.endswith(".tmp")]
        assert not leftovers


# -- front-end fates ---------------------------------------------------------


def _submit_all(frontend, coros):
    async def gather():
        return await asyncio.gather(*coros)

    return asyncio.run(gather())


class TestFrontendFates:
    def test_single_query_ok(self):
        engine = _registered()
        with _frontend(engine) as fe:
            resp = asyncio.run(
                fe.submit(Query(relations=("a", "b")))
            )
            assert resp.ok and resp.status == "ok"
            assert resp.pairs == resp.result.result.n_pairs > 0
            assert fe.served_ok == 1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_contention_queues_instead_of_admission_error(self):
        engine = _registered()
        # One interactive grant's worth of budget: 6 concurrent
        # queries must serialize through the queue, not fail.
        with _frontend(engine, admission_bytes=1 << 20) as fe:
            responses = _submit_all(fe, [
                fe.submit(Query(relations=("a", "b")))
                for _ in range(6)
            ])
            assert all(r.ok for r in responses)
            assert fe.queued_total >= 5
            assert fe.queue_high_water >= 1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_oversized_class_is_rejected_cleanly(self):
        engine = _registered()
        with _frontend(engine, admission_bytes=1 << 20) as fe:
            resp = asyncio.run(
                fe.submit(Query(relations=("a", "b")), "batch")
            )  # batch grant (4 MiB) exceeds the whole budget
            assert resp.status == "rejected"
            assert fe.rejected == 1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_overload_sheds_oldest_batch_first(self):
        engine = _registered()

        async def overload(fe):
            first = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            await asyncio.sleep(0)  # let it take the only grant
            # Queue depth 2 fills with one batch + one interactive.
            parked = [
                asyncio.ensure_future(
                    fe.submit(Query(relations=("a", "a")), "batch")),
                asyncio.ensure_future(
                    fe.submit(Query(relations=("b", "b")))),
            ]
            await asyncio.sleep(0)
            # The next arrival overflows the queue: the parked batch
            # query is the shed victim, not either interactive one.
            extra = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            return await asyncio.gather(first, *parked, extra)

        with _frontend(engine, admission_bytes=4,
                       grant_bytes={"interactive": 3, "batch": 4},
                       queue_depth=2) as fe:
            first, batch, inter, extra = asyncio.run(overload(fe))
            assert batch.status == "shed"
            assert first.ok and inter.ok and extra.ok
            assert fe.shed == 1
            assert fe.per_class["batch"]["shed"] == 1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_incoming_batch_sheds_itself_over_interactive(self):
        engine = _registered()

        async def overload(fe):
            first = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            await asyncio.sleep(0)
            parked = asyncio.ensure_future(
                fe.submit(Query(relations=("b", "b"))))
            await asyncio.sleep(0)
            late_batch = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "a")), "batch"))
            return await asyncio.gather(first, parked, late_batch)

        with _frontend(engine, admission_bytes=4,
                       grant_bytes={"interactive": 3, "batch": 4},
                       queue_depth=1) as fe:
            first, parked, late_batch = asyncio.run(overload(fe))
            assert late_batch.status == "shed", (
                "a batch arrival must not evict interactive waiters"
            )
            assert first.ok and parked.ok
        engine.close()

    def test_queued_deadline_expires_and_releases_nothing(self):
        engine = _registered()

        async def scenario(fe):
            first = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            await asyncio.sleep(0)
            doomed = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "a")),
                          deadline_seconds=1e-4))
            return await asyncio.gather(first, doomed)

        with _frontend(engine, admission_bytes=1 << 20) as fe:
            first, doomed = asyncio.run(scenario(fe))
            assert first.ok
            assert doomed.status == "expired"
            assert fe.expired == 1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_degraded_reply_marks_failover(self):
        engine = _registered(
            replicas=2,
            faults=FaultPlan([
                FaultRule(site="shard.execute", kind="exception",
                          times=1),
            ]),
        )
        with _frontend(engine) as fe:
            resp = asyncio.run(
                fe.submit(Query(relations=("a", "b")))
            )
            assert resp.ok
            assert resp.degraded, (
                "a failover reply must be flagged degraded"
            )
            assert fe.served_degraded == 1
        engine.close()

    def test_close_resolves_parked_waiters_as_shed(self):
        engine = _registered()
        fe = _frontend(engine, admission_bytes=1 << 20)

        async def scenario():
            # Hold the whole budget so the submit must park.
            hold = fe.admission.try_acquire("hold", 1 << 20)
            task = asyncio.create_task(
                fe.submit(Query(relations=("a", "b")))
            )
            await asyncio.sleep(0.02)
            assert len(fe._queue) == 1
            fe.close()  # must resolve the waiter, not strand it
            resp = await asyncio.wait_for(task, timeout=2.0)
            hold.release()
            return resp

        resp = asyncio.run(scenario())
        assert resp.status == "shed"
        assert fe.shed == 1
        engine.close()

    def test_unknown_class_raises(self):
        engine = _registered()
        with _frontend(engine) as fe:
            with pytest.raises(ValueError, match="query class"):
                asyncio.run(
                    fe.submit(Query(relations=("a", "b")), "bulk")
                )
        engine.close()


# -- fault sites -------------------------------------------------------------


class TestServeFaultSites:
    def test_queue_exception_fails_admission(self):
        engine = _registered()
        plan = FaultPlan([
            FaultRule(site="serve.queue", kind="exception", times=1),
        ])
        with _frontend(engine, faults=plan) as fe:
            bad = asyncio.run(fe.submit(Query(relations=("a", "b"))))
            ok = asyncio.run(fe.submit(Query(relations=("a", "b"))))
            assert bad.status == "error"
            assert "injected" in bad.error
            assert ok.ok, "the fault fires once, service resumes"
            assert fe.errors == 1
            assert fe.admission.in_use_bytes == 0
        assert plan.injected["serve.queue:exception"] == 1
        engine.close()

    def test_deadline_exception_forces_expiry_and_frees_grant(self):
        engine = _registered()
        plan = FaultPlan([
            FaultRule(site="serve.deadline", kind="exception", times=1),
        ])
        with _frontend(engine, faults=plan) as fe:
            bad = asyncio.run(fe.submit(Query(relations=("a", "b"))))
            assert bad.status == "expired"
            assert fe.expired == 1
            assert fe.admission.in_use_bytes == 0, (
                "the forced expiry must release its grant"
            )
            assert engine.queries_served == 0, (
                "the query must never reach the engine"
            )
        engine.close()

    def test_slow_rules_delay_but_serve(self):
        engine = _registered()
        plan = FaultPlan([
            FaultRule(site="serve.queue", kind="slow",
                      delay_seconds=0.001, times=1),
            FaultRule(site="serve.deadline", kind="slow",
                      delay_seconds=0.001, times=1),
        ])
        with _frontend(engine, faults=plan) as fe:
            resp = asyncio.run(fe.submit(Query(relations=("a", "b"))))
            assert resp.ok
        assert plan.total_injected == 2
        engine.close()


# -- chaos differential ------------------------------------------------------


class TestChaosDifferential:
    def test_mixed_fate_thousand_queries_leak_nothing(self):
        """1k queries with every fate in play: queued, shed, expired,
        injected faults, failovers — answers stay correct and not one
        admission byte leaks."""
        queries = [
            Query(relations=("a", "b")),
            Query(relations=("a", "a")),
            Query(relations=("a", "b"),
                  window=Rect(0.0, 0.5, 0.0, 0.5, 0)),
            Query(relations=("b", "b"),
                  window=Rect(0.3, 0.9, 0.3, 0.9, 0)),
        ]
        # Serial ground truth from an identical fault-free deployment.
        clean = _registered(replicas=2, cache_capacity=64)
        expected = {
            i: clean.execute(q).result.n_pairs
            for i, q in enumerate(queries)
        }
        clean.close()
        engine = _registered(
            replicas=2, cache_capacity=64,
            faults=FaultPlan([
                FaultRule(site="serve.queue", kind="exception",
                          times=5, after=10),
                FaultRule(site="serve.deadline", kind="exception",
                          times=5, after=20),
                FaultRule(site="shard.execute", kind="exception",
                          times=1, after=5),
            ]),
        )
        rng = random.Random(97)

        async def storm(fe):
            sem = asyncio.Semaphore(16)

            async def one(j):
                i = j % len(queries)
                deadline = 1e-4 if rng.random() < 0.1 else None
                cls = "batch" if rng.random() < 0.3 else "interactive"
                async with sem:
                    resp = await fe.submit(queries[i], cls, deadline)
                return i, resp

            return await asyncio.gather(
                *(one(j) for j in range(1000))
            )

        with _frontend(engine, admission_bytes=6 << 20,
                       queue_depth=8, max_concurrency=4) as fe:
            outcomes = asyncio.run(storm(fe))
            fates = {}
            for i, resp in outcomes:
                fates[resp.status] = fates.get(resp.status, 0) + 1
                if resp.ok:
                    assert resp.pairs == expected[i], (
                        "a served answer must never be corrupted by "
                        "shed/expired/faulted neighbours"
                    )
            assert fe.submitted == 1000
            assert fates["ok"] > 0
            assert fates.get("error", 0) >= 1, "queue faults fired"
            assert fates.get("expired", 0) >= 1
            assert sum(fates.values()) == 1000
            # The robustness bottom line: nothing leaked.
            assert fe.admission.in_use_bytes == 0
            assert fe.in_flight == 0
            assert len(fe._queue) == 0
        # Engine-side, only the long-lived artifact-cache grants may
        # remain (reclaimed on close); every query-scoped grant must
        # have been released.
        held = {
            cat: n
            for cat, n in engine.budget.snapshot()["by_category"].items()
            if n
        }
        assert set(held) <= {"artifacts"}, held
        engine.close()


# -- concurrent workload driver ----------------------------------------------


class TestConcurrentWorkloadDriver:
    def test_closed_loop_matches_serial_pairs(self):
        from repro.engine import make_workload

        engine = _registered(n=150)
        queries = make_workload(UNIT, 24, seed=7)
        # make_workload names relations roads/hydro; remap onto ours.
        queries = [
            Query(relations=("a", "b"), window=q.window)
            for q in queries
        ]
        serial = run_workload(engine, queries)
        engine.close()
        engine = _registered(n=150)
        report = run_concurrent_workload(
            engine, queries, clients=6, admission_bytes=6 << 20,
        )
        engine.close()
        assert report["served"] == report["queries"] == 24
        assert report["pairs_returned"] == serial["pairs_returned"]
        assert report["serve"]["shed"] == 0
        assert report["serve"]["admission"]["in_use_bytes"] == 0
        assert report["serve"]["queued_total"] >= 0
        assert report["latency_p95_seconds"] >= (
            report["latency_p50_seconds"]
        )
        assert "sim_wall_seconds" in report

    def test_open_loop_saturation_sheds_not_errors(self):
        engine = _registered(n=150)
        queries = [Query(relations=("a", "b"))] * 40
        report = run_concurrent_workload(
            engine, queries, clients=8, open_loop_qps=20_000.0,
            queue_depth=2, admission_bytes=4 << 20,
            max_concurrency=1, batch_share=0.5,
        )
        engine.close()
        s = report["serve"]
        assert s["shed"] > 0, "a 20k q/s burst into queue=2 must shed"
        assert s["rejected"] == 0
        assert s["errors"] == 0
        assert s["admission"]["in_use_bytes"] == 0
        assert report["served"] == s["served_ok"] > 0


# -- single-engine serialization ---------------------------------------------


class TestSingleEngineSerialization:
    def test_lock_present_only_for_non_thread_safe_engines(self):
        single = _registered_single()
        sharded = _registered()
        fe_single = _frontend(single)
        fe_sharded = _frontend(sharded)
        try:
            assert fe_single._engine_lock is not None, (
                "SpatialQueryEngine.execute is not reentrant; the "
                "front-end must serialize calls to it"
            )
            assert fe_sharded._engine_lock is None, (
                "ShardedEngine declares execute_thread_safe; "
                "serializing it would defeat the concurrent scatter"
            )
        finally:
            fe_single.close()
            fe_sharded.close()
            single.close()
            sharded.close()

    def test_concurrent_single_engine_matches_serial_accounting(self):
        from repro.engine import make_workload

        queries = [
            Query(relations=("a", "b"), window=q.window)
            for q in make_workload(UNIT, 24, seed=7)
        ]
        engine = _registered_single(n=150)
        serial = run_workload(engine, queries)
        engine.close()
        engine = _registered_single(n=150)
        report = run_concurrent_workload(
            engine, queries, clients=8, admission_bytes=8 << 20,
        )
        engine.close()
        assert report["served"] == report["queries"] == 24
        assert report["serve"]["errors"] == 0
        # With execute serialized the env page counter deltas and
        # metrics cannot interleave: totals match the serial run bit
        # for bit (a race here shows up as corrupted sums).
        assert report["pairs_returned"] == serial["pairs_returned"]
        assert report["metrics"]["pages_read"] == (
            serial["metrics"]["pages_read"]
        )
        assert report["sim_wall_seconds"] == pytest.approx(
            serial["sim_wall_seconds"]
        )


# -- HTTP endpoint -----------------------------------------------------------


async def _http(port: int, method: str, path: str,
                body: bytes = b"") -> tuple:
    # A one-shot client: Connection: close opts out of the endpoint's
    # keep-alive default so reading to EOF terminates.
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Connection: close\r\n"
            f"Content-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    return status, payload


async def _read_response(reader) -> tuple:
    """One framed response off a persistent connection."""
    status_line = await reader.readline()
    status = int(status_line.split(b" ")[1])
    length = 0
    connection = None
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            length = int(value.strip())
        elif name == "connection":
            connection = value.strip().lower()
    body = await reader.readexactly(length)
    return status, body, connection


class TestHttpEndpoint:
    def test_query_metrics_and_health(self):
        engine = _registered()

        async def scenario(fe):
            server = await serve_http(fe, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            health = await _http(port, "GET", "/healthz")
            ok = await _http(
                port, "POST", "/query",
                json.dumps({"relations": ["a", "b"],
                            "count_only": True}).encode(),
            )
            bad = await _http(port, "POST", "/query", b"not json")
            missing = await _http(port, "GET", "/nope")
            wrong_method = await _http(port, "GET", "/query")
            metrics = await _http(port, "GET", "/metrics")
            server.close()
            await server.wait_closed()
            return health, ok, bad, missing, wrong_method, metrics

        with _frontend(engine) as fe:
            (health, ok, bad, missing, wrong_method,
             metrics) = asyncio.run(scenario(fe))
        assert health[0] == 200
        assert ok[0] == 200
        served = json.loads(ok[1])
        assert served["status"] == "ok" and served["pairs"] > 0
        assert bad[0] == 400
        assert missing[0] == 404
        assert wrong_method[0] == 405
        assert metrics[0] == 200
        # Pin the documented namespace: every serve counter exports
        # under repro_engine_serve_*, and nothing escapes the
        # repro_engine prefix.
        from repro.engine.obs import validate_prometheus

        text = metrics[1].decode("utf-8")
        assert validate_prometheus(text, prefix="repro_engine") == []
        assert "repro_engine_serve_submitted 1" in text
        assert "repro_engine_serve_aged_promotions" in text
        engine.close()

    def test_hostile_content_length_gets_a_response(self):
        engine = _registered()

        async def raw(port: int, head: str) -> int:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(head.encode("ascii"))
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=2.0)
            writer.close()
            assert data, "the server must answer, not kill the task"
            return int(data.split(b" ")[1])

        async def scenario(fe):
            server = await serve_http(fe, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            # Negative length: clamped to no body -> invalid JSON, 400.
            negative = await raw(
                port,
                "POST /query HTTP/1.1\r\nHost: t\r\n"
                "Connection: close\r\n"
                "Content-Length: -7\r\n\r\n",
            )
            # Absurd length: refused outright, never buffered — and
            # past the drain cap the response forces the close this
            # client reads to.
            huge = await raw(
                port,
                "POST /query HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {64 << 20}\r\n\r\n",
            )
            server.close()
            await server.wait_closed()
            return negative, huge

        with _frontend(engine) as fe:
            negative, huge = asyncio.run(scenario(fe))
        assert negative == 400
        assert huge == 413
        engine.close()

    def test_keep_alive_serves_many_requests_on_one_connection(self):
        engine = _registered()

        async def scenario(fe):
            server = await serve_http(fe, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            body = json.dumps({"relations": ["a", "b"],
                               "count_only": True}).encode()
            req = (f"POST /query HTTP/1.1\r\nHost: t\r\n"
                   f"Content-Length: {len(body)}\r\n\r\n"
                   ).encode("ascii") + body
            # Pipelined: both requests are on the wire before either
            # response; the server answers them in order.
            writer.write(req + req)
            await writer.drain()
            first = await _read_response(reader)
            second = await _read_response(reader)
            closing = (f"POST /query HTTP/1.1\r\nHost: t\r\n"
                       f"Connection: close\r\n"
                       f"Content-Length: {len(body)}\r\n\r\n"
                       ).encode("ascii") + body
            writer.write(closing)
            await writer.drain()
            third = await _read_response(reader)
            tail = await asyncio.wait_for(reader.read(), timeout=2.0)
            writer.close()
            server.close()
            await server.wait_closed()
            return first, second, third, tail

        with _frontend(engine) as fe:
            first, second, third, tail = asyncio.run(scenario(fe))
            assert fe.served_ok == 3
        for status, body, connection in (first, second):
            assert status == 200
            assert connection == "keep-alive"
            assert json.loads(body)["status"] == "ok"
        assert third[0] == 200 and third[2] == "close"
        assert tail == b"", (
            "the server must close after Connection: close"
        )
        engine.close()

    def test_oversized_body_drained_keeps_connection_usable(self):
        """A 413 must leave the stream positioned at the next request
        line, not mid-body — the satellite bug this PR fixes."""
        engine = _registered()
        from repro.engine.serve import MAX_BODY_BYTES

        async def scenario(fe):
            server = await serve_http(fe, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            junk = b"x" * (MAX_BODY_BYTES + 1)
            writer.write(
                (f"POST /query HTTP/1.1\r\nHost: t\r\n"
                 f"Content-Length: {len(junk)}\r\n\r\n"
                 ).encode("ascii") + junk
            )
            await writer.drain()
            too_large = await _read_response(reader)
            # A GET with a declared body must be drained too.
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 4\r\n\r\njunk"
            )
            await writer.drain()
            health = await _read_response(reader)
            writer.close()
            server.close()
            await server.wait_closed()
            return too_large, health

        with _frontend(engine) as fe:
            too_large, health = asyncio.run(scenario(fe))
        assert too_large[0] == 413
        assert too_large[2] == "keep-alive"
        assert health[0] == 200, (
            "the second request must parse cleanly after the drained "
            "oversized body"
        )
        engine.close()

    def test_parse_query_body_validation(self):
        good = parse_query_body(json.dumps({
            "relations": ["a", "b"],
            "window": [0.0, 0.5, 0.0, 0.5],
            "class": "batch",
            "deadline_ms": 250,
        }).encode())
        assert good["query"].relations == ("a", "b")
        assert good["query"].window == Rect(0.0, 0.5, 0.0, 0.5, 0)
        assert good["query_class"] == "batch"
        assert good["deadline_seconds"] == pytest.approx(0.25)
        for payload in (
            {"relations": ["a"]},
            {"relations": ["a", "b"], "window": [1, 2, 3]},
            {"relations": ["a", "b"], "class": "bulk"},
            {"relations": ["a", "b"], "deadline_ms": -5},
            {"relations": ["a", "b"], "bogus": 1},
        ):
            with pytest.raises(ValueError):
                parse_query_body(json.dumps(payload).encode())


# -- cancellation checkpoints ------------------------------------------------


class TestCancellationCheckpoints:
    def test_cancel_raises_between_shards_not_mid_answer(self):
        engine = _registered()
        calls = {"n": 0}

        def cancel():
            calls["n"] += 1
            if calls["n"] > 1:
                raise DeadlineExceeded("expired mid-scatter")

        with pytest.raises(DeadlineExceeded):
            engine.execute(Query(relations=("a", "b")), cancel=cancel)
        # The abandoned query must leave the deployment serviceable
        # and its accounting clean.
        out = engine.execute(Query(relations=("a", "b")))
        assert out.result.n_pairs > 0
        assert engine.budget.snapshot()["in_use_bytes"] == 0
        engine.close()

    def test_cancel_noop_when_never_raising(self):
        engine = _registered()
        seen = []
        out = engine.execute(Query(relations=("a", "b")),
                             cancel=lambda: seen.append(1))
        assert out.result.n_pairs > 0
        assert len(seen) >= 2, (
            "entry and gather checkpoints must both fire"
        )
        engine.close()


# -- priority aging ----------------------------------------------------------


class TestPriorityAging:
    def test_aged_batch_survives_shedding_young_batch_sheds(self):
        """Sustained interactive pressure must not starve a parked
        batch query forever: past ``aging_seconds`` it is promoted,
        and the shed victim becomes the *youngest un-promoted* batch
        waiter instead."""
        engine = _registered()

        async def scenario(fe):
            # Hold the whole admission budget so every arrival parks.
            hold = fe.admission.try_acquire("hold", 4)
            b_old = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "a")), "batch"))
            await asyncio.sleep(0)
            await asyncio.sleep(0.12)  # park b_old past aging_seconds
            b_young = asyncio.ensure_future(
                fe.submit(Query(relations=("b", "b")), "batch"))
            await asyncio.sleep(0)  # queue now full at depth 2
            inter = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            await asyncio.sleep(0)  # overflow: age, then shed
            hold.release()
            fe._pump()
            return await asyncio.gather(b_old, b_young, inter)

        with _frontend(engine, admission_bytes=4,
                       grant_bytes={"interactive": 3, "batch": 4},
                       queue_depth=2, aging_seconds=0.05) as fe:
            b_old, b_young, inter = asyncio.run(scenario(fe))
            assert b_young.status == "shed", (
                "the un-promoted batch waiter absorbs the overload"
            )
            assert b_old.ok, (
                "the aged batch waiter must survive shedding and serve"
            )
            assert inter.ok
            assert fe.aged_promotions == 1
            snap = fe.snapshot()
            assert snap["aged_promotions"] == 1
            assert snap["queue_age_max_seconds"]["batch"] >= 0.1
            assert fe.admission.in_use_bytes == 0
        engine.close()

    def test_aging_disabled_keeps_pure_batch_first_shedding(self):
        engine = _registered()

        async def scenario(fe):
            hold = fe.admission.try_acquire("hold", 4)
            b_old = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "a")), "batch"))
            await asyncio.sleep(0)
            await asyncio.sleep(0.12)
            inter = asyncio.ensure_future(
                fe.submit(Query(relations=("a", "b"))))
            await asyncio.sleep(0)  # overflow the depth-1 queue
            hold.release()
            fe._pump()
            return await asyncio.gather(b_old, inter)

        with _frontend(engine, admission_bytes=4,
                       grant_bytes={"interactive": 3, "batch": 4},
                       queue_depth=1, aging_seconds=0) as fe:
            b_old, inter = asyncio.run(scenario(fe))
            assert b_old.status == "shed", (
                "with aging off, the old batch waiter still sheds first"
            )
            assert inter.ok
            assert fe.aged_promotions == 0
        engine.close()


# -- deadline propagation into the pool --------------------------------------


class TestPoolDeadlinePropagation:
    def test_expired_query_reclaims_pool_tasks_without_leaks(self):
        """The tentpole's acceptance gate: a deadline that expires
        mid-scatter must show reclaimed pool work
        (``pool_tasks_cancelled > 0``) and leak neither admission nor
        engine budget bytes."""
        from repro.engine.pool import CancelToken  # noqa: F401

        # Worker-side slow faults pin both pool threads for 50 ms per
        # task, so a 20 ms deadline reliably expires while tasks are
        # in flight and others are still queued behind them.
        engine = _registered_single(
            n=400, pool_kind="thread", workers=2, min_ship_rects=0,
            tile_batch_bytes=0,
            faults=FaultPlan([
                FaultRule(site="pool.task", kind="slow",
                          delay_seconds=0.05, times=2),
            ]),
        )
        with _frontend(engine) as fe:
            doomed = asyncio.run(fe.submit(
                Query(relations=("a", "b")), deadline_seconds=0.02,
            ))
            assert doomed.status == "expired"
            assert fe.expired == 1
            pool = engine.worker_pool.snapshot()
            assert pool["pool_tasks_cancelled"] > 0, (
                "cancellation must reclaim shipped pool tasks"
            )
            assert fe.admission.in_use_bytes == 0
            assert engine.budget.snapshot()["in_use_bytes"] == 0
            assert engine.metrics.queries_cancelled == 1
            # The deployment stays serviceable (faults exhausted).
            ok = asyncio.run(fe.submit(Query(relations=("a", "b"))))
            assert ok.ok and ok.pairs > 0
        engine.close()

    def test_cancel_token_pickles_with_state(self):
        import pickle
        import time as _time

        from repro.engine.pool import CancelToken

        token = CancelToken(_time.monotonic() + 60.0)
        clone = pickle.loads(pickle.dumps(token))
        assert not clone.cancelled
        token.cancel()
        assert token.cancelled
        assert not clone.cancelled, (
            "a pre-cancel clone must carry only the deadline"
        )
        flagged = pickle.loads(pickle.dumps(token))
        assert flagged.cancelled, (
            "the cancelled flag must survive pickling"
        )
        with pytest.raises(DeadlineExceeded):
            flagged()

    def test_sharded_deadline_does_not_trip_failover(self):
        """A replica raising DeadlineExceeded is a cancelled query,
        not a sick replica: no failover, no retry."""
        import time as _time

        from repro.engine.pool import CancelToken

        engine = _registered(replicas=2)
        token = CancelToken(_time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceeded):
            engine.execute(Query(relations=("a", "b")), cancel=token)
        snap = engine.metrics_snapshot()
        assert snap["failovers"] == 0
        assert snap["retries"] == 0
        assert engine.budget.snapshot()["in_use_bytes"] == 0
        out = engine.execute(Query(relations=("a", "b")))
        assert out.result.n_pairs > 0
        engine.close()
