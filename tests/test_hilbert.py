"""Hilbert curve: bijectivity, locality, and key normalization."""

import pytest
from hypothesis import given, strategies as st

from repro.rtree.hilbert import (
    DEFAULT_ORDER,
    hilbert_d,
    hilbert_d_to_xy,
    hilbert_keys,
    hilbert_xy_to_d,
)


class TestBijection:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_exhaustive_bijection_small_orders(self, order):
        side = 1 << order
        seen = set()
        for x in range(side):
            for y in range(side):
                d = hilbert_xy_to_d(x, y, order)
                assert 0 <= d < side * side
                seen.add(d)
        assert len(seen) == side * side

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_inverse_roundtrip(self, order):
        side = 1 << order
        for d in range(side * side):
            x, y = hilbert_d_to_xy(d, order)
            assert hilbert_xy_to_d(x, y, order) == d

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1))
    def test_roundtrip_at_full_order(self, x, y):
        d = hilbert_xy_to_d(x, y, DEFAULT_ORDER)
        assert hilbert_d_to_xy(d, DEFAULT_ORDER) == (x, y)


class TestContinuity:
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_consecutive_positions_are_grid_neighbours(self, order):
        # The defining property of the curve: step 1 along the curve
        # moves exactly 1 in Manhattan distance on the grid.
        side = 1 << order
        prev = hilbert_d_to_xy(0, order)
        for d in range(1, side * side):
            cur = hilbert_d_to_xy(d, order)
            manhattan = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert manhattan == 1, f"jump of {manhattan} at d={d}"
            prev = cur


class TestValidation:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_xy_to_d(-1, 0, 4)
        with pytest.raises(ValueError):
            hilbert_xy_to_d(16, 0, 4)
        with pytest.raises(ValueError):
            hilbert_d_to_xy(-1, 4)
        with pytest.raises(ValueError):
            hilbert_d_to_xy(256, 4)


class TestNormalizedKeys:
    def test_fraction_clamping(self):
        # Out-of-box fractions clamp instead of raising.
        assert hilbert_d(-0.5, 0.0) == hilbert_d(0.0, 0.0)
        assert hilbert_d(1.5, 1.5) == hilbert_d(1.0, 1.0)

    def test_keys_for_degenerate_box(self):
        keys = hilbert_keys([(3.0, 1.0), (3.0, 2.0)], 3.0, 0.0, 3.0, 4.0)
        assert len(keys) == 2  # zero-width box still yields a total order

    def test_keys_ordering_is_deterministic(self):
        pts = [(0.1, 0.2), (0.8, 0.9), (0.5, 0.5)]
        k1 = hilbert_keys(pts, 0, 0, 1, 1)
        k2 = hilbert_keys(pts, 0, 0, 1, 1)
        assert k1 == k2

    @given(
        st.lists(
            st.tuples(st.floats(0, 1, allow_nan=False),
                      st.floats(0, 1, allow_nan=False)),
            min_size=1, max_size=50,
        )
    )
    def test_keys_in_range(self, pts):
        keys = hilbert_keys(pts, 0.0, 0.0, 1.0, 1.0)
        top = (1 << DEFAULT_ORDER) ** 2
        assert all(0 <= k < top for k in keys)

    def test_locality_beats_row_major_on_average(self):
        # Spot-check the reason we use Hilbert at all: consecutive curve
        # positions of a uniform sample are closer on average than
        # consecutive row-major positions of the same sample.
        import numpy as np

        rng = np.random.default_rng(7)
        pts = [(float(x), float(y)) for x, y in rng.random((500, 2))]
        hk = hilbert_keys(pts, 0, 0, 1, 1)
        by_hilbert = [p for _, p in sorted(zip(hk, pts))]
        by_row_major = sorted(pts, key=lambda p: (round(p[1], 1), p[0]))

        def avg_step(seq):
            return sum(
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a, b in zip(seq, seq[1:])
            ) / (len(seq) - 1)

        assert avg_step(by_hilbert) < avg_step(by_row_major)
