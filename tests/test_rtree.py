"""R-tree: node capacity, bulk loading, dynamic inserts, queries."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_pairs
from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect, contains, intersects
from repro.rtree.bulk_load import (
    BulkLoadConfig,
    DEFAULT_CONFIG,
    FULL_PACK_CONFIG,
    bulk_load,
)
from repro.rtree.insert import RTreeBuilder
from repro.rtree.node import Node, node_capacity
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def fresh_store(page_bytes=TEST_SCALE.index_page_bytes):
    env = make_env()
    return PageStore(Disk(env), page_bytes)


class TestNodeCapacity:
    def test_paper_page_gives_fanout_400ish(self):
        assert node_capacity(8192) == 409

    def test_scaled_page(self):
        assert node_capacity(512) == 25

    def test_test_page(self):
        assert node_capacity(256) == 12

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            node_capacity(40)

    def test_serialized_bytes(self):
        n = Node(0, 0, [UNIT, UNIT, UNIT])
        assert n.serialized_bytes() == 8 + 3 * 20

    def test_leaf_flag(self):
        assert Node(0, 0, [UNIT]).is_leaf
        assert not Node(0, 1, [UNIT]).is_leaf


class TestBulkLoad:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            bulk_load(fresh_store(), [])

    def test_single_rect(self):
        tree = bulk_load(fresh_store(), [UNIT._replace(rid=7)])
        tree.validate()
        assert tree.height == 1
        assert tree.num_objects == 1
        assert list(tree.iter_all())[0].rid == 7

    def test_invariants_on_uniform_data(self):
        rects = uniform_rects(800, UNIT, 0.01, seed=1)
        tree = bulk_load(fresh_store(), rects)
        tree.validate()
        assert tree.num_objects == 800
        assert tree.height >= 2

    def test_invariants_on_clustered_data(self):
        rects = clustered_rects(600, UNIT, 0.01, seed=2)
        tree = bulk_load(fresh_store(), rects)
        tree.validate()

    def test_all_objects_reachable_exactly_once(self):
        rects = uniform_rects(500, UNIT, 0.01, seed=3)
        tree = bulk_load(fresh_store(), rects)
        ids = sorted(r.rid for r in tree.iter_all())
        assert ids == sorted(r.rid for r in rects)

    def test_packing_ratio_in_paper_range(self):
        # Section 3.3: "average packing ratio of around 90%".
        rects = clustered_rects(3000, UNIT, 0.005, seed=4)
        tree = bulk_load(fresh_store(), rects)
        assert 0.74 <= tree.packing_ratio() <= 1.0

    def test_full_pack_config_packs_tighter(self):
        rects = uniform_rects(1000, UNIT, 0.005, seed=5)
        loose = bulk_load(fresh_store(), rects, config=DEFAULT_CONFIG)
        tight = bulk_load(fresh_store(), rects, config=FULL_PACK_CONFIG)
        assert tight.packing_ratio() > loose.packing_ratio()
        assert tight.page_count <= loose.page_count

    def test_leaves_allocated_sequentially(self):
        # The layout property behind ST's sequential I/O (Section 6.2):
        # leaf pages occupy consecutive page ids in Hilbert order.
        rects = uniform_rects(600, UNIT, 0.01, seed=6)
        tree = bulk_load(fresh_store(), rects)
        leaves = tree.leaf_page_ids
        assert leaves == list(range(leaves[0], leaves[0] + len(leaves)))

    def test_levels_above_leaves_also_sequential(self):
        rects = uniform_rects(2000, UNIT, 0.01, seed=7)
        tree = bulk_load(fresh_store(), rects)
        for level in tree.pages_per_level:
            assert level == list(range(level[0], level[0] + len(level)))

    def test_root_level_is_single_page(self):
        rects = uniform_rects(400, UNIT, 0.01, seed=8)
        tree = bulk_load(fresh_store(), rects)
        assert len(tree.pages_per_level[-1]) == 1
        assert tree.pages_per_level[-1][0] == tree.root_page_id

    def test_page_count_close_to_entries_over_capacity(self):
        rects = uniform_rects(1200, UNIT, 0.005, seed=9)
        tree = bulk_load(fresh_store(), rects)
        cap = tree.capacity
        min_leaves = math.ceil(1200 / cap)
        assert min_leaves <= tree.leaf_page_count <= 2 * min_leaves

    def test_index_bytes(self):
        rects = uniform_rects(300, UNIT, 0.01, seed=10)
        tree = bulk_load(fresh_store(), rects)
        assert tree.index_bytes == tree.page_count * 256

    def test_scratch_space_about_3x_data(self):
        """Table 2's remark: sorted+unsorted stream + index is a bit
        over 3x the data size on disk."""
        from repro.storage.sort import sort_stream_by_ylo
        from repro.storage.stream import Stream

        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        rects = uniform_rects(2000, UNIT, 0.005, seed=11)
        raw = Stream.from_rects(disk, rects)
        sort_stream_by_ylo(raw, disk)
        bulk_load(store, rects)
        ratio = disk.allocated_bytes / raw.data_bytes
        # Unsorted + sorted + index is the paper's "a little more than
        # three times"; our append-only allocator additionally keeps the
        # freed sort-run extents on the books, so allow up to ~5x.
        assert 2.5 <= ratio <= 5.0

    def test_deterministic(self):
        rects = uniform_rects(500, UNIT, 0.01, seed=12)
        t1 = bulk_load(fresh_store(), rects)
        t2 = bulk_load(fresh_store(), rects)
        assert [len(lvl) for lvl in t1.pages_per_level] == [
            len(lvl) for lvl in t2.pages_per_level
        ]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 300), st.integers(0, 100))
    def test_property_invariants_hold(self, n, seed):
        rects = uniform_rects(n, UNIT, 0.02, seed=seed)
        tree = bulk_load(fresh_store(), rects)
        tree.validate()
        assert tree.num_objects == n


class TestDynamicInsert:
    def test_empty_finish_rejected(self):
        builder = RTreeBuilder(fresh_store())
        with pytest.raises(ValueError):
            builder.finish()

    def test_single_insert(self):
        builder = RTreeBuilder(fresh_store())
        builder.insert(UNIT._replace(rid=1))
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == 1

    def test_inserts_below_capacity_stay_one_node(self):
        builder = RTreeBuilder(fresh_store())
        for i in range(10):
            builder.insert(UNIT._replace(rid=i))
        tree = builder.finish()
        assert tree.height == 1 and tree.page_count == 1

    def test_split_grows_tree(self):
        builder = RTreeBuilder(fresh_store())
        for i, rect in enumerate(uniform_rects(50, UNIT, 0.02, seed=1)):
            builder.insert(rect)
        tree = builder.finish()
        tree.validate()
        assert tree.height >= 2

    def test_invariants_after_many_inserts(self):
        builder = RTreeBuilder(fresh_store())
        for rect in clustered_rects(700, UNIT, 0.01, seed=2):
            builder.insert(rect)
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == 700

    def test_all_objects_reachable(self):
        rects = uniform_rects(300, UNIT, 0.02, seed=3)
        builder = RTreeBuilder(fresh_store())
        builder.extend(rects)
        tree = builder.finish()
        assert sorted(r.rid for r in tree.iter_all()) == sorted(
            r.rid for r in rects
        )

    def test_dynamic_tree_packs_worse_than_bulk_loaded(self):
        # The index-quality premise of the Section 7 discussion.
        rects = uniform_rects(1000, UNIT, 0.01, seed=4)
        dyn = RTreeBuilder(fresh_store())
        dyn.extend(rects)
        dyn_tree = dyn.finish()
        packed = bulk_load(fresh_store(), rects)
        assert dyn_tree.packing_ratio() < packed.packing_ratio()
        assert dyn_tree.page_count > packed.page_count

    def test_min_fill_respected_after_splits(self):
        rects = uniform_rects(500, UNIT, 0.02, seed=5)
        builder = RTreeBuilder(fresh_store())
        builder.extend(rects)
        tree = builder.finish()
        cap = tree.capacity
        for level in tree.pages_per_level:
            for pid in level:
                node = tree.read_node_silent(pid)
                if pid != tree.root_page_id:
                    assert len(node.entries) >= builder.min_fill or (
                        len(node.entries) >= 1
                    )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 50))
    def test_property_invariants(self, n, seed):
        rects = clustered_rects(n, UNIT, 0.03, seed=seed)
        builder = RTreeBuilder(fresh_store())
        builder.extend(rects)
        tree = builder.finish()
        tree.validate()


class TestQueries:
    def _tree_and_rects(self, n=400, seed=1):
        rects = uniform_rects(n, UNIT, 0.02, seed=seed)
        return bulk_load(fresh_store(), rects), rects

    def test_window_query_matches_brute_force(self):
        tree, rects = self._tree_and_rects()
        window = Rect(0.2, 0.5, 0.3, 0.6, 0)
        got = sorted(r.rid for r in tree.query(window))
        want = sorted(r.rid for r in rects if intersects(r, window))
        assert got == want

    def test_whole_universe_query_returns_everything(self):
        tree, rects = self._tree_and_rects()
        got = list(tree.query(Rect(-1, 2, -1, 2, 0)))
        assert len(got) == len(rects)

    def test_empty_window(self):
        tree, _ = self._tree_and_rects()
        assert list(tree.query(Rect(5.0, 6.0, 5.0, 6.0, 0))) == []

    def test_point_query(self):
        tree, rects = self._tree_and_rects()
        p = Rect(0.5, 0.5, 0.5, 0.5, 0)
        got = sorted(r.rid for r in tree.query(p))
        want = sorted(r.rid for r in rects if intersects(r, p))
        assert got == want

    def test_query_charges_io(self):
        env = make_env()
        store = PageStore(Disk(env), TEST_SCALE.index_page_bytes)
        rects = uniform_rects(400, UNIT, 0.02, seed=2)
        tree = bulk_load(store, rects)
        env.reset_counters()
        list(tree.query(Rect(0.0, 0.2, 0.0, 0.2, 0)))
        assert 0 < env.page_reads <= tree.page_count

    def test_root_mbr_covers_everything(self):
        tree, rects = self._tree_and_rects()
        root = tree.root_mbr()
        assert all(contains(root, r) for r in rects)

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(0, 0.8, allow_nan=False),
        st.floats(0, 0.8, allow_nan=False),
        st.floats(0.01, 0.3, allow_nan=False),
    )
    def test_property_query_equals_filter(self, x, y, size):
        tree, rects = self._tree_and_rects(n=200, seed=9)
        window = Rect(x, x + size, y, y + size, 0)
        got = sorted(r.rid for r in tree.query(window))
        want = sorted(r.rid for r in rects if intersects(r, window))
        assert got == want


class TestDelete:
    def _builder_with(self, rects):
        builder = RTreeBuilder(fresh_store())
        builder.extend(rects)
        return builder

    def test_delete_existing(self):
        rects = uniform_rects(100, UNIT, 0.02, seed=40)
        builder = self._builder_with(rects)
        assert builder.delete(rects[13])
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == 99
        assert 13 not in {r.rid for r in tree.iter_all()}

    def test_delete_missing_returns_false(self):
        rects = uniform_rects(30, UNIT, 0.02, seed=41)
        builder = self._builder_with(rects)
        ghost = Rect(0.111, 0.222, 0.333, 0.444, 999_999)
        assert not builder.delete(ghost)
        assert builder.finish().num_objects == 30

    def test_delete_half_keeps_invariants(self):
        rects = uniform_rects(400, UNIT, 0.02, seed=42)
        builder = self._builder_with(rects)
        for r in rects[::2]:
            assert builder.delete(r)
        tree = builder.finish()
        tree.validate()
        assert sorted(r.rid for r in tree.iter_all()) == sorted(
            r.rid for r in rects[1::2]
        )

    def test_delete_all_but_one(self):
        rects = uniform_rects(120, UNIT, 0.03, seed=43)
        builder = self._builder_with(rects)
        for r in rects[:-1]:
            assert builder.delete(r)
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == 1
        assert tree.height == 1  # root collapsed back to a leaf

    def test_delete_then_query_agrees_with_filter(self):
        from repro.geom.rect import intersects

        rects = uniform_rects(300, UNIT, 0.02, seed=44)
        builder = self._builder_with(rects)
        removed = set()
        for r in rects[::3]:
            builder.delete(r)
            removed.add(r.rid)
        tree = builder.finish()
        window = Rect(0.2, 0.7, 0.2, 0.7, 0)
        got = sorted(r.rid for r in tree.query(window))
        want = sorted(
            r.rid for r in rects
            if r.rid not in removed and intersects(r, window)
        )
        assert got == want

    def test_interleaved_insert_delete_churn(self):
        import random

        rng = random.Random(5)
        rects = uniform_rects(250, UNIT, 0.02, seed=45)
        builder = RTreeBuilder(fresh_store())
        live = []
        for r in rects:
            builder.insert(r)
            live.append(r)
            if len(live) > 40 and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                assert builder.delete(victim)
        tree = builder.finish()
        tree.validate()
        assert sorted(r.rid for r in tree.iter_all()) == sorted(
            r.rid for r in live
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(10, 120), st.integers(0, 50))
    def test_property_delete_everything_reinsertable(self, n, seed):
        rects = uniform_rects(n, UNIT, 0.03, seed=seed)
        builder = self._builder_with(rects)
        for r in rects[: n // 2]:
            assert builder.delete(r)
        builder.extend(rects[: n // 2])
        tree = builder.finish()
        tree.validate()
        assert tree.num_objects == n
