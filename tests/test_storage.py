"""Storage substrate: disk extents, page store, streams, buffer pool."""

import pytest

from repro.geom.rect import RECT_BYTES, Rect
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE


def r(i: int) -> Rect:
    return Rect(float(i), float(i + 1), float(i), float(i + 1), i)


class TestDisk:
    def test_allocation_is_append_only(self, disk):
        a = disk.allocate(100)
        b = disk.allocate(50)
        assert a == 0 and b == 100
        assert disk.allocated_bytes == 150

    def test_zero_allocation_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.allocate(0)

    def test_write_read_roundtrip(self, disk, env):
        off = disk.allocate(64)
        disk.write(off, 64, "payload")
        assert disk.read(off) == "payload"
        assert env.page_reads == 1 and env.page_writes == 1

    def test_read_unwritten_raises(self, disk):
        disk.allocate(64)
        with pytest.raises(KeyError):
            disk.read(0)

    def test_write_outside_extent_raises(self, disk):
        with pytest.raises(ValueError):
            disk.write(0, 10, "x")

    def test_silent_read_charges_nothing(self, disk, env):
        off = disk.allocate(8)
        disk.write(off, 8, "x")
        before = env.page_reads
        assert disk.read_silent(off) == "x"
        assert env.page_reads == before

    def test_free_then_read_raises(self, disk):
        off = disk.allocate(8)
        disk.write(off, 8, "x")
        disk.free(off)
        with pytest.raises(KeyError):
            disk.read(off)

    def test_none_payload_roundtrip(self, disk):
        # None is a legitimate payload and must not look like "missing".
        off = disk.allocate(8)
        disk.write(off, 8, None)
        assert disk.read(off) is None


class TestPageStore:
    def test_fixed_size_offsets(self, store):
        ids = store.allocate_many(3)
        assert ids == [0, 1, 2]
        assert [store.offset_of(i) for i in ids] == [0, 256, 512]
        assert store.total_bytes == 3 * 256

    def test_write_read(self, store):
        pid = store.allocate()
        store.write(pid, {"k": 1})
        assert store.read(pid) == {"k": 1}

    def test_unallocated_page_raises(self, store):
        with pytest.raises(KeyError):
            store.offset_of(99)

    def test_invalid_page_size(self, disk):
        with pytest.raises(ValueError):
            PageStore(disk, 0)

    def test_interleaved_with_other_disk_users(self, disk):
        store = PageStore(disk, 256)
        p0 = store.allocate()
        disk.allocate(1000)  # someone else grabs space
        p1 = store.allocate()
        assert store.offset_of(p1) == store.offset_of(p0) + 256 + 1000


class TestStream:
    def test_append_scan_roundtrip(self, disk):
        rects = [r(i) for i in range(37)]
        s = Stream.from_rects(disk, rects)
        assert list(s.scan()) == rects
        assert len(s) == 37

    def test_block_structure(self, disk):
        cap = TEST_SCALE.stream_block_bytes // RECT_BYTES
        s = Stream.from_rects(disk, [r(i) for i in range(cap * 2 + 3)])
        assert s.num_blocks == 3

    def test_scan_before_close_raises(self, disk):
        s = Stream(disk)
        s.append(r(0))
        with pytest.raises(RuntimeError):
            list(s.scan())

    def test_append_after_close_raises(self, disk):
        s = Stream.from_rects(disk, [r(0)])
        with pytest.raises(RuntimeError):
            s.append(r(1))

    def test_close_idempotent(self, disk):
        s = Stream.from_rects(disk, [r(0)])
        assert s.close() is s

    def test_empty_stream(self, disk):
        s = Stream.from_rects(disk, [])
        assert len(s) == 0
        assert list(s.scan()) == []
        assert s.num_blocks == 0

    def test_data_bytes(self, disk):
        s = Stream.from_rects(disk, [r(i) for i in range(10)])
        assert s.data_bytes == 200

    def test_scan_charges_block_reads(self, disk, env):
        s = Stream.from_rects(disk, [r(i) for i in range(100)])
        env.reset_counters()
        list(s.scan())
        assert env.page_reads == s.num_blocks

    def test_sequential_write_pattern(self, disk, env):
        env.reset_counters()
        s = Stream.from_rects(disk, [r(i) for i in range(200)])
        obs = env.observers[0]
        # A single stream writes its blocks back-to-back: everything
        # after the first block lands sequentially.
        assert obs.writes_random == 1
        assert obs.writes_sequential == s.num_blocks - 1

    def test_interleaved_streams_write_randomly(self, disk, env):
        env.reset_counters()
        s1 = Stream(disk, name="a")
        s2 = Stream(disk, name="b")
        cap = s1.block_capacity
        for i in range(cap * 4):
            s1.append(r(i))
            s2.append(r(i))
        s1.close()
        s2.close()
        obs = env.observers[0]
        # Alternating appends interleave extents, so most block writes
        # of each stream are non-sequential.
        assert obs.writes_random > obs.writes_sequential

    def test_rescan_allowed(self, disk):
        s = Stream.from_rects(disk, [r(i) for i in range(10)])
        assert list(s.scan()) == list(s.scan())

    def test_free_releases_blocks(self, disk):
        s = Stream.from_rects(disk, [r(i) for i in range(10)])
        s.free()
        assert s.num_blocks == 0


class TestBufferPool:
    def _store_with_pages(self, store, n):
        for i in range(n):
            pid = store.allocate()
            store.write(pid, f"page-{i}")
        return store

    def test_hit_avoids_disk(self, store, env):
        self._store_with_pages(store, 4)
        pool = BufferPool(store, capacity_pages=4)
        env.reset_counters()
        pool.request(0)
        pool.request(0)
        assert pool.hits == 1 and pool.misses == 1
        assert env.page_reads == 1

    def test_lru_eviction_order(self, store):
        self._store_with_pages(store, 4)
        pool = BufferPool(store, capacity_pages=2)
        pool.request(0)
        pool.request(1)
        pool.request(0)      # 0 becomes most recent
        pool.request(2)      # evicts 1
        assert pool.contains(0) and pool.contains(2)
        assert not pool.contains(1)
        assert pool.evictions == 1

    def test_capacity_respected(self, store):
        self._store_with_pages(store, 10)
        pool = BufferPool(store, capacity_pages=3)
        for i in range(10):
            pool.request(i)
        assert pool.resident_pages == 3

    def test_zero_capacity_rejected(self, store):
        with pytest.raises(ValueError):
            BufferPool(store, 0)

    def test_hit_rate(self, store):
        self._store_with_pages(store, 2)
        pool = BufferPool(store, capacity_pages=2)
        pool.request(0)
        pool.request(0)
        pool.request(0)
        pool.request(1)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_everything_fits_reads_each_page_once(self, store, env):
        # The Table 4 small-dataset regime: pool >= index, so disk reads
        # equal distinct pages no matter the request pattern.
        self._store_with_pages(store, 5)
        pool = BufferPool(store, capacity_pages=8)
        env.reset_counters()
        for _ in range(3):
            for i in range(5):
                pool.request(i)
        assert env.page_reads == 5
        assert pool.misses == 5

    def test_clear(self, store):
        self._store_with_pages(store, 2)
        pool = BufferPool(store, capacity_pages=2)
        pool.request(0)
        pool.clear()
        assert pool.resident_pages == 0

    def test_clear_keeps_counters(self, store):
        self._store_with_pages(store, 2)
        pool = BufferPool(store, capacity_pages=2)
        pool.request(0)
        pool.request(0)
        pool.clear()
        assert pool.requests == 2 and pool.hits == 1 and pool.misses == 1

    def test_reset_stats_keeps_pages(self, store):
        self._store_with_pages(store, 3)
        pool = BufferPool(store, capacity_pages=2)
        pool.request(0)
        pool.request(1)
        pool.request(2)  # evicts 0
        pool.reset_stats()
        assert pool.requests == 0 and pool.hits == 0
        assert pool.misses == 0 and pool.evictions == 0
        assert pool.resident_pages == 2      # pages stay warm
        pool.request(2)
        assert pool.hits == 1                # ...and still serve hits
