"""Cross-algorithm equivalence: all four joins return the same set.

The paper's Figure 3 compares the running times of SSSJ, PBSM, PQ and
ST on the same inputs — which only makes sense because they compute the
same relation.  These tests pin that equivalence on varied inputs,
including degenerate ones, against the brute-force oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brute import brute_force_pairs
from repro.core.pbsm import PBSMConfig, pbsm_join
from repro.core.pq_join import pq_join
from repro.core.sssj import sssj_join
from repro.core.st_join import st_join
from repro.data.generator import (
    clustered_rects,
    grid_rects,
    stabbing_rects,
    uniform_rects,
)
from repro.data.tiger import make_hydro, make_roads
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def run_all_four(a, b, universe=UNIT):
    env = make_env()
    disk = Disk(env)
    store = PageStore(disk, TEST_SCALE.index_page_bytes)
    sa = Stream.from_rects(disk, a)
    sb = Stream.from_rects(disk, b)
    results = {}
    results["SSSJ"] = sssj_join(sa, sb, disk, universe=universe,
                                collect_pairs=True).pair_set()
    results["PBSM"] = pbsm_join(sa, sb, disk, universe=universe,
                                collect_pairs=True).pair_set()
    if a and b:
        ta = bulk_load(store, a)
        tb = bulk_load(store, b)
        results["ST"] = st_join(ta, tb, collect_pairs=True).pair_set()
        results["PQ"] = pq_join(ta, tb, disk, universe=universe,
                                collect_pairs=True).pair_set()
    return results


def assert_all_equal(a, b, universe=UNIT):
    truth = brute_force_pairs(a, b)
    for name, got in run_all_four(a, b, universe).items():
        assert got == truth, f"{name} diverges from brute force"


class TestEquivalence:
    def test_uniform(self):
        assert_all_equal(
            uniform_rects(250, UNIT, 0.03, seed=1),
            uniform_rects(200, UNIT, 0.03, seed=2, id_base=10_000),
        )

    def test_clustered(self):
        assert_all_equal(
            clustered_rects(300, UNIT, 0.02, seed=3),
            clustered_rects(100, UNIT, 0.04, seed=4, id_base=10_000),
        )

    def test_tiger_like(self):
        from repro.data.datasets import DATASET_SPECS
        region = DATASET_SPECS["NJ"].region
        assert_all_equal(
            make_roads(400, region, seed=5),
            make_hydro(80, region, seed=6, layout_seed=5),
            universe=region,
        )

    def test_grid_self_join_exact_count(self):
        g = grid_rects(10, UNIT, fill=0.9)
        truth = brute_force_pairs(g, g)
        assert len(truth) == 100  # disjoint grid: only self-pairs
        for name, got in run_all_four(g, list(g)).items():
            assert got == truth, name

    def test_stabbing_adversarial(self):
        assert_all_equal(
            stabbing_rects(150, UNIT, seed=7),
            stabbing_rects(150, UNIT, seed=8, id_base=10_000),
        )

    def test_identical_inputs(self):
        a = uniform_rects(150, UNIT, 0.04, seed=9)
        assert_all_equal(a, list(a))

    def test_all_identical_rectangles(self):
        a = [Rect(0.4, 0.6, 0.4, 0.6, i) for i in range(40)]
        b = [Rect(0.5, 0.7, 0.5, 0.7, i) for i in range(40)]
        assert_all_equal(a, b)

    def test_degenerate_zero_area_rects(self):
        a = [Rect(0.5, 0.5, 0.0, 1.0, 1), Rect(0.0, 1.0, 0.5, 0.5, 2)]
        b = [Rect(0.5, 0.5, 0.5, 0.5, 3), Rect(0.2, 0.2, 0.2, 0.2, 4)]
        assert_all_equal(a, b)

    def test_skewed_sizes(self):
        big = [Rect(0.0, 1.0, 0.0, 1.0, i) for i in range(5)]
        small = uniform_rects(200, UNIT, 0.01, seed=10, id_base=100)
        assert_all_equal(big, small)

    def test_one_element_each(self):
        assert_all_equal([Rect(0, 0.5, 0, 0.5, 1)],
                         [Rect(0.4, 1, 0.4, 1, 2)])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 120), st.integers(1, 120),
           st.integers(0, 1000))
    def test_property_random_workloads(self, na, nb, seed):
        a = uniform_rects(na, UNIT, 0.05, seed=seed)
        b = uniform_rects(nb, UNIT, 0.05, seed=seed + 1, id_base=10_000)
        assert_all_equal(a, b)
