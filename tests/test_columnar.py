"""The columnar tile codec and the batched (zero-callback) sweep."""

from __future__ import annotations

import pickle

from repro.core.columnar import (
    COLUMN_BYTES_PER_RECT,
    DECODE_CACHE_TILES,
    ColumnarTile,
    SortedRunView,
)
from repro.core.pbsm import SpillablePartition, TileAllowance
from repro.core.sweep import (
    ForwardSweep,
    StripedSweep,
    forward_sweep_pairs,
    forward_sweep_pairs_batched,
    sweep_join,
    sweep_join_batched,
)
from repro.data.generator import uniform_rects
from repro.geom.rect import RECT_BYTES, Rect

from tests.conftest import make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def _ylo_sorted(rects):
    return sorted(rects, key=lambda r: (r.ylo, r.xlo))


class TestColumnarTile:
    def test_round_trip_is_exact(self):
        rects = uniform_rects(500, UNIT, 0.03, seed=11)
        tile = ColumnarTile.from_rects(rects)
        assert len(tile) == len(rects)
        assert tile.decode() == rects

    def test_round_trip_awkward_values(self):
        rects = [
            Rect(-1.5e300, 1.5e300, -0.0, 0.0, 2**62),
            Rect(1e-320, 2e-320, -7.25, -7.0, -5),
            Rect(0.1, 0.2, 0.3, 0.4, 0),
        ]
        tile = ColumnarTile.from_rects(rects)
        assert tile.decode() == rects

    def test_append_matches_bulk_encode(self):
        rects = uniform_rects(40, UNIT, 0.05, seed=3)
        one_by_one = ColumnarTile()
        for r in rects:
            one_by_one.append(r)
        assert one_by_one.decode() == ColumnarTile.from_rects(rects).decode()

    def test_nbytes_tracks_payload(self):
        rects = uniform_rects(64, UNIT, 0.02, seed=5)
        tile = ColumnarTile.from_rects(rects)
        assert tile.nbytes == 64 * COLUMN_BYTES_PER_RECT
        assert len(ColumnarTile()) == 0
        assert ColumnarTile().nbytes == 0

    def test_pickle_round_trip(self):
        rects = uniform_rects(200, UNIT, 0.04, seed=7)
        tile = ColumnarTile.from_rects(rects)
        clone = pickle.loads(pickle.dumps(tile))
        assert clone.decode() == rects
        assert clone.nbytes == tile.nbytes

    def test_pickle_drops_decode_memo(self):
        tile = ColumnarTile.from_rects(uniform_rects(50, UNIT, 0.05, seed=1))
        tile.decode_sorted_cached()
        clone = pickle.loads(pickle.dumps(tile))
        assert clone._sorted_cache is None

    def test_decode_sorted_cached_memoizes_and_invalidates(self):
        rects = uniform_rects(100, UNIT, 0.03, seed=9)
        tile = ColumnarTile.from_rects(rects)
        first = tile.decode_sorted_cached()
        assert first == _ylo_sorted(rects)
        assert tile.decode_sorted_cached() is first
        extra = Rect(0.5, 0.6, 0.0, 0.1, 10_000)
        tile.append(extra)
        second = tile.decode_sorted_cached()
        assert second is not first
        assert second == _ylo_sorted(rects + [extra])

    def test_decode_memo_is_bounded_lru(self):
        # The memo registry holds at most DECODE_CACHE_TILES decoded
        # lists per process; older tiles lose theirs (LRU) but keep
        # their columns and simply decode again.
        tiles = [
            ColumnarTile.from_rects(uniform_rects(8, UNIT, 0.05, seed=s))
            for s in range(DECODE_CACHE_TILES + 16)
        ]
        for t in tiles:
            t.decode_sorted_cached()
        with_memo = sum(1 for t in tiles if t._sorted_cache is not None)
        assert with_memo == DECODE_CACHE_TILES
        assert tiles[0]._sorted_cache is None  # oldest: evicted
        assert tiles[-1]._sorted_cache is not None  # newest: kept
        # An evicted tile still decodes correctly (and re-registers).
        again = tiles[0].decode_sorted_cached()
        assert again == _ylo_sorted(tiles[0].decode())
        assert tiles[0]._sorted_cache is not None

    def test_decode_memo_refreshes_recency(self):
        # A tile touched regularly survives arbitrarily many other
        # decodes; untouched tiles get evicted around it.
        hot = ColumnarTile.from_rects(uniform_rects(8, UNIT, 0.05, seed=1))
        hot.decode_sorted_cached()
        cold = [
            ColumnarTile.from_rects(uniform_rects(8, UNIT, 0.05, seed=s))
            for s in range(2, 2 * DECODE_CACHE_TILES + 2)
        ]
        for i, t in enumerate(cold):
            t.decode_sorted_cached()
            if i % 50 == 0:
                hot.decode_sorted_cached()  # refresh recency
        assert hot._sorted_cache is not None
        assert any(t._sorted_cache is None for t in cold)


class TestSortedRunView:
    def test_scan_yields_sorted_rects_and_free_is_noop(self):
        rects = uniform_rects(120, UNIT, 0.03, seed=13)
        ordered = sorted(
            rects, key=lambda r: (r.ylo, r.xlo, r.xhi, r.yhi, r.rid)
        )
        view = SortedRunView(ColumnarTile.from_rects(ordered), name="v")
        assert list(view.scan()) == _ylo_sorted(rects)
        assert len(view) == len(rects)
        assert view.data_bytes == len(rects) * RECT_BYTES
        view.free()  # cache-owned: a no-op
        assert list(view.scan()) == _ylo_sorted(rects)


class TestSpillablePartitionColumnar:
    def test_in_memory_partition_matches_materialize(self, disk):
        part = SpillablePartition(disk, "p0")
        rects = uniform_rects(80, UNIT, 0.04, seed=2)
        for r in rects:
            part.append(r)
        assert part.materialize_columnar().decode() == part.materialize()

    def test_spilled_partition_ships_identically(self):
        # Two identical partitions under a one-rect allowance: the list
        # and columnar materializations must agree element-for-element
        # and charge the same spill re-read I/O.
        rects = uniform_rects(120, UNIT, 0.03, seed=4)
        envs, parts = [], []
        for name in ("list", "columnar"):
            env = make_env()
            from repro.storage.disk import Disk

            disk = Disk(env)
            part = SpillablePartition(
                disk, name, allowance=TileAllowance(5 * RECT_BYTES)
            )
            for r in rects:
                part.append(r)
            assert part.spilled and part.spilled_rects == 115
            envs.append(env)
            parts.append(part)
        as_list = parts[0].materialize()
        as_tile = parts[1].materialize_columnar()
        assert as_tile.decode() == as_list
        assert len(as_tile) == len(rects)
        assert envs[0].bytes_read == envs[1].bytes_read
        assert envs[0].page_reads == envs[1].page_reads


class TestBatchedSweepEquivalence:
    """The zero-callback kernel must be bit-identical in accounting."""

    def _sides(self, n_a=300, n_b=200):
        a = uniform_rects(n_a, UNIT, 0.03, seed=21)
        b = uniform_rects(n_b, UNIT, 0.04, seed=22, id_base=50_000)
        return a, b

    def test_forward_sweep_pairs_batched_matches_callback(self):
        a, b = self._sides()
        env_cb, env_batch = make_env(), make_env()
        collected = []
        stats_cb = forward_sweep_pairs(
            a, b, env_cb, on_pair=lambda ra, rb: collected.append((ra, rb))
        )
        batch, stats_batch = forward_sweep_pairs_batched(a, b, env_batch)
        assert batch == collected  # same pairs, same emit order
        assert stats_batch.pairs == stats_cb.pairs
        assert stats_batch.cpu_ops == stats_cb.cpu_ops
        assert stats_batch.max_active_items == stats_cb.max_active_items
        assert stats_batch.max_active_bytes == stats_cb.max_active_bytes
        assert env_batch.cpu_ops == env_cb.cpu_ops

    def test_self_join_inputs_match(self):
        a, _ = self._sides()
        env_cb, env_batch = make_env(), make_env()
        collected = []
        forward_sweep_pairs(
            a, a, env_cb, on_pair=lambda ra, rb: collected.append((ra, rb))
        )
        batch, _ = forward_sweep_pairs_batched(a, a, env_batch)
        assert batch == collected
        assert env_batch.cpu_ops == env_cb.cpu_ops

    def test_striped_probe_batch_matches_probe(self):
        a, b = self._sides(250, 250)
        env_cb, env_batch = make_env(), make_env()
        make = lambda: StripedSweep(0.0, 1.0, nstrips=16)  # noqa: E731
        collected = []
        stats_cb = sweep_join(
            iter(_ylo_sorted(a)), iter(_ylo_sorted(b)), make, env_cb,
            on_pair=lambda ra, rb: collected.append((ra, rb)),
        )
        batch, stats_batch = sweep_join_batched(
            iter(_ylo_sorted(a)), iter(_ylo_sorted(b)), make, env_batch,
        )
        assert batch == collected
        assert stats_batch.cpu_ops == stats_cb.cpu_ops
        assert env_batch.cpu_ops == env_cb.cpu_ops

    def test_forward_structure_probe_batch_direct(self):
        # Structure-level check: probe and probe_batch agree on output,
        # lazy expiry and op counting for both orientations.
        a, b = self._sides(60, 1)
        sweep_cb, sweep_batch = ForwardSweep(), ForwardSweep()
        for r in a:
            sweep_cb.insert(r)
            sweep_batch.insert(r)
        probe = b[0]._replace(ylo=0.4, yhi=0.9)
        emitted = []
        sweep_cb.probe(probe, 0.4, lambda x, y: emitted.append((x, y)),
                       probe_is_left=False)
        batch = []
        sweep_batch.probe_batch(probe, 0.4, batch, probe_is_left=False)
        assert batch == emitted
        assert sweep_batch.ops == sweep_cb.ops
        assert sweep_batch.size_items == sweep_cb.size_items
