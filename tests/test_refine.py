"""Refinement-step geometry: exact segment and polyline intersection."""

import pytest

from repro.geom.refine import (
    polyline_mbr,
    polylines_intersect,
    segments_intersect,
)


class TestSegments:
    def test_crossing(self):
        assert segments_intersect(((0, 0), (2, 2)), ((0, 2), (2, 0)))

    def test_disjoint(self):
        assert not segments_intersect(((0, 0), (1, 0)), ((0, 1), (1, 1)))

    def test_shared_endpoint(self):
        assert segments_intersect(((0, 0), (1, 1)), ((1, 1), (2, 0)))

    def test_t_junction(self):
        assert segments_intersect(((0, 0), (2, 0)), ((1, 0), (1, 1)))

    def test_collinear_overlapping(self):
        assert segments_intersect(((0, 0), (2, 0)), ((1, 0), (3, 0)))

    def test_collinear_disjoint(self):
        assert not segments_intersect(((0, 0), (1, 0)), ((2, 0), (3, 0)))

    def test_collinear_touching(self):
        assert segments_intersect(((0, 0), (1, 0)), ((1, 0), (2, 0)))

    def test_parallel_never(self):
        assert not segments_intersect(((0, 0), (1, 1)), ((0, 1), (1, 2)))

    def test_near_miss(self):
        # MBRs overlap but geometries do not — the whole reason the
        # refinement step exists after the filter step.
        assert not segments_intersect(((0, 0), (2, 2)), ((1.5, 0.0), (2.5, 1.0)))

    def test_symmetric(self):
        s1, s2 = ((0, 0), (2, 2)), ((0, 2), (2, 0))
        assert segments_intersect(s1, s2) == segments_intersect(s2, s1)


class TestPolylines:
    RIVER = [(0.0, 0.0), (1.0, 0.5), (2.0, 0.2), (3.0, 1.0)]
    ROAD_CROSSING = [(1.5, -1.0), (1.5, 2.0)]
    ROAD_PARALLEL = [(0.0, 2.0), (3.0, 2.0)]

    def test_crossing(self):
        assert polylines_intersect(self.RIVER, self.ROAD_CROSSING)

    def test_not_crossing(self):
        assert not polylines_intersect(self.RIVER, self.ROAD_PARALLEL)

    def test_degenerate_single_point(self):
        assert not polylines_intersect([(0, 0)], self.RIVER)

    def test_mbrs_overlap_but_geometry_does_not(self):
        zigzag_a = [(0.0, 0.0), (1.0, 1.0)]
        zigzag_b = [(0.0, 0.9), (0.05, 1.0)]
        xa = polyline_mbr(zigzag_a)
        xb = polyline_mbr(zigzag_b)
        assert xa[0] <= xb[1] and xb[0] <= xa[1]  # filter would pass them
        assert not polylines_intersect(zigzag_a, zigzag_b)


class TestMBR:
    def test_mbr(self):
        assert polyline_mbr([(1, 5), (3, 2), (2, 7)]) == (1, 3, 2, 7)

    def test_mbr_empty_raises(self):
        with pytest.raises(ValueError):
            polyline_mbr([])
