"""Sorted sources: list, stream, index adapter (PQ traversal), join cascade."""

import pytest

from repro.core.sources import (
    IndexSource,
    JoinSource,
    ListSource,
    StreamSource,
)
from repro.core.sweep import ForwardSweep, sweep_join_iter
from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect, intersects
from repro.rtree.bulk_load import bulk_load
from repro.sim.env import null_env
from repro.storage.disk import Disk
from repro.storage.pages import PageStore
from repro.storage.sort import sort_stream_by_ylo
from repro.storage.stream import Stream

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def is_sorted_by_ylo(rects):
    ys = [r.ylo for r in rects]
    return ys == sorted(ys)


class TestListSource:
    def test_sorts_input(self):
        rects = uniform_rects(100, UNIT, 0.05, seed=1)
        src = ListSource(list(reversed(rects)))
        assert is_sorted_by_ylo(list(src))

    def test_presorted_trusted(self):
        rects = sorted(uniform_rects(50, UNIT, 0.05, seed=2),
                       key=lambda r: (r.ylo, r.xlo, r.rid))
        src = ListSource(rects, presorted=True)
        assert list(src) == rects

    def test_memory_accounting(self):
        src = ListSource(uniform_rects(100, UNIT, 0.05, seed=3))
        assert src.max_memory_bytes == 100 * 20


class TestStreamSource:
    def test_yields_stream_contents(self):
        env = make_env()
        disk = Disk(env)
        raw = Stream.from_rects(disk, uniform_rects(200, UNIT, 0.02, seed=4))
        sorted_stream = sort_stream_by_ylo(raw, disk)
        src = StreamSource(sorted_stream)
        out = list(src)
        assert len(out) == 200
        assert is_sorted_by_ylo(out)

    def test_open_stream_rejected(self):
        env = make_env()
        s = Stream(Disk(env))
        with pytest.raises(ValueError):
            StreamSource(s)

    def test_memory_is_one_block(self):
        env = make_env()
        disk = Disk(env)
        s = Stream.from_rects(disk, uniform_rects(500, UNIT, 0.02, seed=5))
        src = StreamSource(s)
        assert src.max_memory_bytes <= s.block_capacity * 20


class TestIndexSource:
    def _tree(self, n=500, seed=1, env=None):
        env = env or make_env()
        store = PageStore(Disk(env), TEST_SCALE.index_page_bytes)
        rects = clustered_rects(n, UNIT, 0.02, seed=seed)
        return bulk_load(store, rects), rects, env

    def test_extracts_all_in_sorted_order(self):
        tree, rects, _ = self._tree()
        out = list(IndexSource(tree))
        assert len(out) == len(rects)
        assert is_sorted_by_ylo(out)
        assert sorted(out) == sorted(rects)

    def test_touches_every_page_exactly_once(self):
        # The Table 4 "optimal" property.
        tree, _, env = self._tree()
        env.reset_counters()
        src = IndexSource(tree)
        list(src)
        assert src.pages_read == tree.page_count
        assert env.page_reads == tree.page_count

    def test_memory_high_water_recorded(self):
        tree, rects, _ = self._tree()
        src = IndexSource(tree)
        list(src)
        assert src.max_memory_bytes > 0
        # Far below the data size (the Table 3 observation).
        assert src.max_memory_bytes < len(rects) * 20

    def test_prune_window_skips_subtrees(self):
        tree, rects, env = self._tree(n=800, seed=6)
        window = Rect(0.0, 0.25, 0.0, 0.25, 0)
        env.reset_counters()
        src = IndexSource(tree, prune_window=window)
        out = list(src)
        assert src.pages_read < tree.page_count
        assert sorted(out) == sorted(
            r for r in rects if intersects(r, window)
        )

    def test_prune_window_disjoint_reads_nothing(self):
        tree, _, env = self._tree()
        env.reset_counters()
        src = IndexSource(tree, prune_window=Rect(5, 6, 5, 6, 0))
        assert list(src) == []
        assert env.page_reads == 0

    def test_prune_keeps_sorted_order(self):
        tree, _, _ = self._tree(n=600, seed=7)
        out = list(IndexSource(tree, prune_window=Rect(0, 0.5, 0, 0.9, 0)))
        assert is_sorted_by_ylo(out)

    def test_single_node_tree(self):
        env = make_env()
        store = PageStore(Disk(env), TEST_SCALE.index_page_bytes)
        tree = bulk_load(store, [UNIT._replace(rid=3)])
        assert [r.rid for r in IndexSource(tree)] == [3]

    def test_queue_stats_populated(self):
        tree, _, _ = self._tree()
        src = IndexSource(tree)
        list(src)
        assert src.max_node_queue >= 1
        assert src.max_data_queue >= 1


class TestJoinSource:
    def test_cascade_produces_sorted_intersections(self):
        a = uniform_rects(120, UNIT, 0.08, seed=8)
        b = uniform_rects(120, UNIT, 0.08, seed=9)
        env = null_env()
        pair_iter = sweep_join_iter(
            iter(ListSource(a)), iter(ListSource(b)), ForwardSweep, env
        )
        src = JoinSource(pair_iter)
        out = list(src)
        assert is_sorted_by_ylo(out)
        assert src.n_pairs == len(out)

    def test_on_pair_callback(self):
        a = [Rect(0, 1, 0, 1, 1)]
        b = [Rect(0.5, 1.5, 0.5, 1.5, 2)]
        env = null_env()
        seen = []
        src = JoinSource(
            sweep_join_iter(iter(ListSource(a)), iter(ListSource(b)),
                            ForwardSweep, env),
            on_pair=lambda x, y: seen.append((x.rid, y.rid)),
        )
        out = list(src)
        assert seen == [(1, 2)]
        assert out[0] == Rect(0.5, 1.0, 0.5, 1.0, 0)


class TestExternalQueueIndexSource:
    """The Section 4 overflow mechanism: bounded queues that spill."""

    def _tree(self, n=800, seed=11):
        env = make_env()
        store = PageStore(Disk(env), TEST_SCALE.index_page_bytes)
        rects = clustered_rects(n, UNIT, 0.02, seed=seed)
        return bulk_load(store, rects), rects, env

    def test_spilling_traversal_matches_in_memory(self):
        tree, rects, _ = self._tree()
        plain = list(IndexSource(tree))
        spilling = list(IndexSource(tree, queue_memory_items=8))
        assert spilling == plain

    def test_spills_actually_happen_under_tight_bound(self):
        tree, _, _ = self._tree()
        src = IndexSource(tree, queue_memory_items=8)
        list(src)
        assert src.queue_spills > 0

    def test_no_spills_with_generous_bound(self):
        tree, _, _ = self._tree(n=200)
        src = IndexSource(tree, queue_memory_items=1 << 20)
        list(src)
        assert src.queue_spills == 0

    def test_page_reads_still_optimal(self):
        # Spilling changes memory behaviour, not the traversal: every
        # index page is still read exactly once.
        tree, _, env = self._tree()
        env.reset_counters()
        src = IndexSource(tree, queue_memory_items=8)
        list(src)
        assert src.pages_read == tree.page_count

    def test_pq_join_with_bounded_queues(self):
        from repro.core.brute import brute_force_pairs
        from repro.core.pq_join import PQConfig, pq_join

        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        a = clustered_rects(400, UNIT, 0.03, seed=21)
        b = clustered_rects(150, UNIT, 0.04, seed=22, id_base=10_000)
        ta = bulk_load(store, a)
        tb = bulk_load(store, b)
        res = pq_join(
            ta, tb, disk, universe=UNIT, collect_pairs=True,
            config=PQConfig(queue_memory_items=8),
        )
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.detail["queue_spills_a"] > 0
