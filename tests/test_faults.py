"""Fault injection, replica failover, and the durable sharded layer.

Chaos contract: under any injected fault — a worker crash mid-sweep, a
replica dying mid-scatter, a flipped byte in a persisted artifact or
result file, a broken pool — a replicated deployment must keep
returning pair sets bit-identical to brute force, never raise to the
caller while a survivor remains, and record every degradation in its
counters and trace spans.  The :class:`FaultPlan` harness itself is
pinned first (deterministic, seeded, site-validated), then each
injection site, then the end-to-end differentials and the
restart-rewarm story (per-shard ``disk_restores`` > 0 on every shard).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.join_result import JoinResult
from repro.engine import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    Query,
    ShardedEngine,
    SpatialQueryEngine,
    WorkerPool,
    merge_snapshots,
)
from repro.engine.artifacts import (
    ArtifactStore,
    ResultStore,
    check_store_layout,
)
from repro.engine.faults import corrupt_file
from repro.engine.shard import HEALTH_FLOOR, PROBE_EVERY
from repro.geom.rect import Rect
from repro.sim.machines import MACHINE_3

from tests.conftest import TEST_SCALE, _uniform, brute_reference

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def _data(seed=1, n_a=80, n_b=60):
    rng = random.Random(seed)
    return _uniform(rng, n_a), _uniform(rng, n_b, id_base=100_000)


def _single(faults=None, **kw):
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("workers", 2)
    kw.setdefault("cache_capacity", 0)
    kw.setdefault("min_ship_rects", 0)
    kw.setdefault("pool_kind", "thread")
    a, b = _data()
    engine = SpatialQueryEngine(faults=faults, **kw)
    engine.register("a", a, universe=UNIT)
    engine.register("b", b, universe=UNIT)
    return engine, a, b


def _sharded(faults=None, **kw):
    kw.setdefault("shards", 2)
    kw.setdefault("scale", TEST_SCALE)
    kw.setdefault("machine", MACHINE_3)
    kw.setdefault("workers", 2)
    kw.setdefault("cache_capacity", 0)
    kw.setdefault("min_ship_rects", 0)
    kw.setdefault("pool_kind", "serial")
    kw.setdefault("retry_backoff_seconds", 0.0)
    a, b = _data()
    engine = ShardedEngine(faults=faults, **kw)
    engine.register("a", a, universe=UNIT)
    engine.register("b", b, universe=UNIT)
    return engine, a, b


class TestFaultRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="pool.tsak", kind="crash")

    def test_kind_invalid_at_site_rejected(self):
        with pytest.raises(ValueError, match="not valid at"):
            FaultRule(site="artifact.load", kind="crash")

    def test_bounds_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="pool.task", kind="crash", times=-1)
        with pytest.raises(ValueError):
            FaultRule(site="pool.task", kind="crash", after=-1)
        with pytest.raises(ValueError):
            FaultRule(site="pool.task", kind="crash", probability=1.5)

    def test_every_site_has_valid_kinds(self):
        from repro.engine.faults import _SITE_KINDS, FAULT_SITES

        assert set(_SITE_KINDS) == set(FAULT_SITES)


class TestFaultPlan:
    def test_after_and_times_window(self):
        plan = FaultPlan([
            FaultRule(site="pool.task", kind="exception",
                      after=2, times=2),
        ])
        fired = [plan.fire("pool.task") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]
        assert plan.total_injected == 2

    def test_first_declared_rule_wins(self):
        plan = FaultPlan([
            FaultRule(site="pool.task", kind="slow", times=1),
            FaultRule(site="pool.task", kind="exception", times=1),
        ])
        assert plan.fire("pool.task").kind == "slow"
        assert plan.fire("pool.task").kind == "exception"
        assert plan.fire("pool.task") is None

    def test_match_restricts_by_rendered_attrs(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception",
                      times=None, match="replica=1"),
        ])
        assert plan.fire("shard.execute", shard=0, replica=0) is None
        assert plan.fire("shard.execute", shard=0, replica=1) is not None
        assert plan.fire("shard.execute", shard=3, replica=1) is not None

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan([
                FaultRule(site="pool.task", kind="exception",
                          times=None, probability=0.5),
            ], seed=seed)
            return [plan.fire("pool.task") is not None
                    for _ in range(32)]

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))

    def test_from_json_round_trip(self):
        plan = FaultPlan.from_json(json.dumps([
            {"site": "pool.task", "kind": "crash", "times": 2},
            {"site": "artifact.load", "kind": "corrupt",
             "match": "tok"},
        ]), seed=3)
        assert len(plan.rules) == 2
        assert plan.rules[0].times == 2
        assert plan.rules[1].match == "tok"
        assert plan.seed == 3

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="must be a list"):
            FaultPlan.from_json('{"site": "pool.task"}')
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultPlan.from_json('[{"site": "pool.task", '
                                '"kind": "crash", "sit": 1}]')

    def test_snapshot_reports_seen_and_fired(self):
        plan = FaultPlan([FaultRule(site="pool.task", kind="slow")])
        plan.fire("pool.task")
        plan.fire("pool.task")
        snap = plan.snapshot()
        assert snap["rules"][0]["seen"] == 2
        assert snap["rules"][0]["fired"] == 1
        assert snap["injected"] == {"pool.task:slow": 1}


class TestCorruptFile:
    def test_flips_last_byte(self, tmp_path):
        p = tmp_path / "x.bin"
        p.write_bytes(b"hello")
        assert corrupt_file(str(p)) is True
        assert p.read_bytes() == b"hell" + bytes([ord("o") ^ 0xFF])

    def test_missing_and_empty_report_false(self, tmp_path):
        assert corrupt_file(str(tmp_path / "absent")) is False
        p = tmp_path / "empty"
        p.write_bytes(b"")
        assert corrupt_file(str(p)) is False


class TestPoolFaults:
    """Injection at the pool layer and the executor's recovery."""

    def test_task_exception_propagates_from_future(self):
        plan = FaultPlan([
            FaultRule(site="pool.task", kind="exception"),
        ])
        pool = WorkerPool(1, kind="thread", faults=plan)
        fut = pool.submit(len, (1, 2, 3))
        with pytest.raises(InjectedFault):
            fut.result()
        assert pool.submit(len, (1, 2, 3)).result() == 3
        pool.shutdown()

    def test_task_crash_on_thread_pool_is_broken_executor(self):
        plan = FaultPlan([FaultRule(site="pool.task", kind="crash")])
        pool = WorkerPool(1, kind="thread", faults=plan)
        fut = pool.submit(len, (1,))
        with pytest.raises(InjectedCrash):
            fut.result()
        pool.shutdown()

    def test_slow_task_still_returns(self):
        plan = FaultPlan([
            FaultRule(site="pool.task", kind="slow",
                      delay_seconds=0.01),
        ])
        pool = WorkerPool(1, kind="thread", faults=plan)
        assert pool.submit(len, (1, 2)).result() == 2
        assert plan.total_injected == 1
        pool.shutdown()

    def test_worker_crash_recovers_with_identical_pairs(self):
        # The executor's broken-pool path: the tagged future replays
        # the *unwrapped* task inline, so the retry runs fault-free.
        plan = FaultPlan([FaultRule(site="pool.task", kind="crash")])
        engine, a, b = _single(faults=plan)
        out = engine.execute(
            Query(relations=("a", "b"), force="pbsm-grid")
        ).result
        assert sorted(out.pairs) == sorted(brute_reference(a, b))
        assert plan.total_injected == 1
        assert engine.worker_pool.fallbacks >= 1
        engine.close()

    def test_process_worker_crash_demotes_and_recovers(self):
        # A real fork actually dies (os._exit) — genuine
        # BrokenProcessPool, global demotion to threads, inline replay.
        plan = FaultPlan([FaultRule(site="pool.task", kind="crash")])
        engine, a, b = _single(faults=plan, pool_kind="process")
        out = engine.execute(
            Query(relations=("a", "b"), force="pbsm-grid")
        ).result
        assert sorted(out.pairs) == sorted(brute_reference(a, b))
        snap = engine.worker_pool.snapshot()
        assert snap["kind"] == "thread"
        assert snap["demotions"] >= 1
        engine.close()

    def test_submit_break_runs_inline(self):
        plan = FaultPlan([FaultRule(site="pool.submit", kind="break")])
        engine, a, b = _single(faults=plan)
        out = engine.execute(
            Query(relations=("a", "b"), force="pbsm-grid")
        ).result
        assert sorted(out.pairs) == sorted(brute_reference(a, b))
        assert plan.total_injected == 1
        assert engine.worker_pool.tasks_inline >= 1
        engine.close()

    def test_pool_snapshot_carries_fault_plan(self):
        plan = FaultPlan([FaultRule(site="pool.task", kind="slow")])
        pool = WorkerPool(1, kind="serial", faults=plan)
        assert pool.snapshot()["faults"]["rules"][0]["kind"] == "slow"
        clean = WorkerPool(1, kind="serial")
        assert clean.snapshot()["faults"] is None


class TestReplicaFailover:
    """Scatter-level availability: health, retries, probes, spans."""

    def test_replica_failure_fails_over_same_pairs(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception", times=1),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2, trace=True)
        out = engine.execute(Query(relations=("a", "b")))
        assert sorted(out.result.pairs) == sorted(brute_reference(a, b))
        snap = engine.metrics_snapshot()
        assert snap["failovers"] == 1
        assert snap["retries"] == 1
        assert snap["replica_failures"] == 1
        assert snap["unhealthy_replicas"] == 1
        spans = [s.name for s in _walk(out.trace)]
        assert "failover" in spans
        engine.close()

    def test_kill_one_replica_everywhere_never_raises(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception",
                      times=None, match="replica=0"),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2, shards=2)
        ref = sorted(brute_reference(a, b))
        for _ in range(6):
            out = engine.execute(Query(relations=("a", "b")))
            assert sorted(out.result.pairs) == ref
        snap = engine.metrics_snapshot()
        assert snap["failovers"] >= 1
        assert snap["replica_failures"] >= 2
        # Replica 0 of each shard is pinned unhealthy; replica 1 serves.
        for row in snap["replica_health"]:
            assert row[0] < HEALTH_FLOOR <= row[1]
        engine.close()

    def test_all_replicas_dead_raises_to_caller(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception",
                      times=None),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2)
        with pytest.raises(InjectedFault):
            engine.execute(Query(relations=("a", "b")))
        engine.close()

    def test_unknown_relation_never_retries(self):
        engine, a, b = _sharded(replicas=2)
        with pytest.raises(KeyError):
            engine.execute(Query(relations=("a", "nope")))
        assert engine.retries == 0
        engine.close()

    def test_probe_recovers_replica_health(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception", times=1),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2, shards=1)
        q = Query(relations=("a", "b"))
        engine.execute(q)  # fault fires, one replica marked unhealthy
        assert engine.unhealthy_replicas == 1
        # Sick replicas are re-probed every PROBE_EVERY-th selection;
        # one clean success earns the health floor back.
        for _ in range(2 * PROBE_EVERY):
            engine.execute(q)
        assert engine.unhealthy_replicas == 0
        assert engine.replica_recoveries >= 1
        engine.close()

    def test_slow_replica_takes_timeout_penalty(self):
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="slow",
                      delay_seconds=0.02, times=1),
        ])
        engine, a, b = _sharded(
            faults=plan, replicas=2, shards=1,
            replica_timeout_seconds=0.005,
        )
        out = engine.execute(Query(relations=("a", "b")))
        assert sorted(out.result.pairs) == sorted(brute_reference(a, b))
        assert engine.replica_timeouts == 1
        assert engine.failovers == 0  # served, just slowly
        engine.close()

    def test_healthy_replicas_rotate_round_robin(self):
        engine, a, b = _sharded(replicas=2, shards=1)
        served = set()
        for _ in range(4):
            out = engine.execute(Query(relations=("a", "b")))
            served.update(
                out.result.detail["shard_replicas"].values()
            )
        assert served == {0, 1}
        engine.close()

    def test_worker_crash_under_sharding_recovers(self):
        # A crashed pool worker is recovered below the scatter layer
        # (broken-pool inline replay), so the sub-query still
        # succeeds — the replicated answer never changes either way.
        plan = FaultPlan([FaultRule(site="pool.task", kind="crash")])
        engine, a, b = _sharded(
            faults=plan, replicas=2, pool_kind="thread",
        )
        ref = sorted(brute_reference(a, b))
        for _ in range(3):
            out = engine.execute(
                Query(relations=("a", "b"), force="pbsm-grid")
            )
            assert sorted(out.result.pairs) == ref
        assert plan.total_injected == 1
        engine.close()


class TestDifferentialUnderFaults:
    """The assert_same_pairs harness under seeded chaos."""

    def test_replica_death_mid_scatter(self, assert_same_pairs):
        a, b = _data(seed=5)
        assert_same_pairs(
            a, b, replicas=2,
            plan_factory=lambda: FaultPlan([
                FaultRule(site="shard.execute", kind="exception",
                          times=1),
            ]),
            expect_failovers=True,
        )

    def test_windowed_replica_death(self, assert_same_pairs):
        a, b = _data(seed=6)
        assert_same_pairs(
            a, b, window=Rect(0.2, 0.8, 0.1, 0.9, 0), replicas=2,
            plan_factory=lambda: FaultPlan([
                FaultRule(site="shard.execute", kind="exception",
                          times=1),
            ]),
            expect_failovers=True,
        )

    def test_worker_crash_with_replicas(self, assert_same_pairs):
        a, b = _data(seed=7)
        assert_same_pairs(
            a, b, replicas=2, pool_kinds=("thread",),
            plan_factory=lambda: FaultPlan([
                FaultRule(site="pool.task", kind="crash", times=1),
            ]),
        )

    def test_broken_pool_with_replicas(self, assert_same_pairs):
        a, b = _data(seed=8)
        assert_same_pairs(
            a, b, replicas=2,
            plan_factory=lambda: FaultPlan([
                FaultRule(site="pool.submit", kind="break", times=1),
            ]),
        )


class TestArtifactFaults:
    def _engine(self, tmp_path, a, b, faults=None):
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="serial",
            memory_bytes=10_000_000,
            artifact_dir=str(tmp_path), faults=faults,
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        return engine

    def test_corrupt_on_save_degrades_next_restart(self, tmp_path):
        a, b = _data(seed=9, n_a=120, n_b=80)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        plan = FaultPlan([
            FaultRule(site="artifact.save", kind="corrupt", times=1),
        ])
        first = self._engine(tmp_path, a, b, faults=plan)
        ref = first.execute(q).result
        assert plan.total_injected == 1
        first.close()
        second = self._engine(tmp_path, a, b)
        out = second.execute(q).result
        assert out.pair_set() == ref.pair_set()
        assert second.artifact_store.corrupt_drops >= 1
        second.close()

    def test_corrupt_on_load_degrades_to_cold_run(self, tmp_path):
        a, b = _data(seed=10, n_a=120, n_b=80)
        q = Query(relations=("a", "b"), force="pbsm-grid")
        first = self._engine(tmp_path, a, b)
        ref = first.execute(q).result
        first.close()
        plan = FaultPlan([
            FaultRule(site="artifact.load", kind="corrupt",
                      times=None),
        ])
        second = self._engine(tmp_path, a, b, faults=plan)
        out = second.execute(q).result
        assert out.pair_set() == ref.pair_set()
        assert out.detail["artifact_hit"] is False
        assert second.artifact_store.corrupt_drops >= 1
        second.close()


class TestPrewarm:
    def _warm_store(self, tmp_path):
        a, b = _data(seed=11, n_a=120, n_b=80)
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="serial",
            memory_bytes=10_000_000, artifact_dir=str(tmp_path),
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        engine.execute(Query(relations=("a", "b"), force="sssj"))
        engine.close()

    def test_prewarm_stages_and_load_pops(self, tmp_path):
        self._warm_store(tmp_path)
        store = ArtifactStore(str(tmp_path))
        assert len(store) == 2  # two sorted runs
        assert store.prewarm() == 2
        snap = store.snapshot()
        assert snap["prewarmed"] == 2 and snap["staged"] == 2
        token = next(iter(store._manifest))
        kind, value, logical = store.load(token)
        assert logical > 0
        # Staged payloads count as restores exactly like file reads.
        assert store.restores == 1
        assert store.snapshot()["staged"] == 1

    def test_prewarm_limit_takes_hottest(self, tmp_path):
        self._warm_store(tmp_path)
        store = ArtifactStore(str(tmp_path))
        tokens = sorted(store._manifest)
        # Heat flushes to the manifest every _HEAT_FLUSH_EVERY bumps;
        # eight loads guarantee the new store sees the skew.
        for _ in range(8):
            store.load(tokens[0])
        store2 = ArtifactStore(str(tmp_path))
        assert store2.prewarm(limit=1) == 1
        assert tokens[0] in store2._staged

    def test_background_prewarm_on_prepare(self, tmp_path):
        self._warm_store(tmp_path)
        a, b = _data(seed=11, n_a=120, n_b=80)
        engine = SpatialQueryEngine(
            scale=TEST_SCALE, machine=MACHINE_3, workers=2,
            cache_capacity=0, pool_kind="serial",
            memory_bytes=10_000_000, artifact_dir=str(tmp_path),
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        engine.prepare()
        engine.artifact_store.wait_prewarm(5.0)
        assert engine.artifact_store.snapshot()["prewarmed"] == 2
        # Warm queries consume the staged payloads as disk restores.
        out = engine.execute(
            Query(relations=("a", "b"), force="sssj")
        ).result
        assert out.detail["artifact_restores"] == 2
        engine.close()

    def test_empty_store_starts_no_thread(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.start_prewarm() is None


class TestResultStore:
    def _result(self):
        return JoinResult(
            algorithm="scatter-gather", n_pairs=2,
            pairs=[(1, 5), (2, 7)],
            detail={"strategy": "sssj", "shard_pairs": {0: 2}},
        )

    def test_round_trip_pairs_exact(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.save("tok", self._result()) is True
        out = store.load("tok")
        assert out.pairs == [(1, 5), (2, 7)]
        assert out.n_pairs == 2
        assert out.algorithm == "scatter-gather"
        assert store.snapshot()["restores"] == 1

    def test_save_idempotent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("tok", self._result())
        store.save("tok", self._result())
        assert store.saves == 1 and len(store) == 1

    def test_count_only_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("tok", JoinResult(
            algorithm="x", n_pairs=9, pairs=None, detail={},
        ))
        out = store.load("tok")
        assert out.pairs is None and out.n_pairs == 9

    def test_corrupt_entry_dropped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("tok", self._result())
        corrupt_file(store._path("tok"))
        assert store.load("tok") is None
        assert store.corrupt_drops == 1
        assert len(store) == 0  # dropped on detection

    def test_injected_corrupt_on_load(self, tmp_path):
        plan = FaultPlan([
            FaultRule(site="result.load", kind="corrupt"),
        ])
        store = ResultStore(str(tmp_path), faults=plan)
        store.save("tok", self._result())
        assert store.load("tok") is None
        assert store.corrupt_drops == 1

    def test_unserializable_detail_never_fails(self, tmp_path):
        store = ResultStore(str(tmp_path))
        bad = JoinResult(
            algorithm="x", n_pairs=0, pairs=[],
            detail={"oops": object()},
        )
        assert store.save("tok", bad) is False
        assert len(store) == 0


class TestStoreLayoutGuard:
    def test_single_engine_rejects_sharded_root(self, tmp_path):
        (tmp_path / "shard-00").mkdir()
        with pytest.raises(ValueError, match="sharded store"):
            check_store_layout(str(tmp_path), sharded=False)
        with pytest.raises(ValueError, match="sharded store"):
            SpatialQueryEngine(
                scale=TEST_SCALE, artifact_dir=str(tmp_path),
            )

    def test_sharded_rejects_single_engine_root(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{}")
        with pytest.raises(ValueError, match="single-engine store"):
            check_store_layout(str(tmp_path), sharded=True)
        with pytest.raises(ValueError, match="single-engine store"):
            ShardedEngine(
                shards=2, scale=TEST_SCALE,
                artifact_dir=str(tmp_path),
            )

    def test_empty_and_matching_roots_pass(self, tmp_path):
        check_store_layout(str(tmp_path), sharded=True)
        check_store_layout(str(tmp_path), sharded=False)
        (tmp_path / "shard-00").mkdir()
        check_store_layout(str(tmp_path), sharded=True)


class TestShardedDurability:
    def _engine(self, tmp_path, a, b, faults=None, replicas=2):
        engine = ShardedEngine(
            shards=2, replicas=replicas, scale=TEST_SCALE,
            machine=MACHINE_3, workers=2, pool_kind="serial",
            cache_capacity=0, min_ship_rects=0,
            artifact_dir=str(tmp_path), faults=faults,
            retry_backoff_seconds=0.0,
        )
        engine.register("a", a, universe=UNIT)
        engine.register("b", b, universe=UNIT)
        return engine

    def test_restart_rewarms_every_shard(self, tmp_path):
        a, b = _data(seed=12, n_a=150, n_b=100)
        q = Query(relations=("a", "b"))
        first = self._engine(tmp_path, a, b)
        ref = sorted(first.execute(q).result.pairs)
        assert first.metrics_snapshot()["result_store"]["saves"] == 2
        first.close()

        second = self._engine(tmp_path, a, b)
        out = second.execute(q).result
        assert sorted(out.pairs) == ref
        assert out.detail["shard_disk_restores"] == [0, 1]
        snap = second.metrics_snapshot()
        assert snap["result_disk_restores"] == 2
        for shard in snap["per_shard"]:
            assert shard["disk_restores"] > 0
        second.close()

    def test_restored_results_identical_across_replicas(self, tmp_path):
        # The result store is per *shard*: a sub-result computed by
        # replica 0 is served after restart even when replica 0 is
        # dead and replica 1 would have executed.
        a, b = _data(seed=13, n_a=150, n_b=100)
        q = Query(relations=("a", "b"))
        first = self._engine(tmp_path, a, b)
        ref = sorted(first.execute(q).result.pairs)
        first.close()
        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception",
                      times=None),
        ])
        # Every replica of every shard is dead — yet the restored
        # sub-results serve the query without executing anything.
        second = self._engine(tmp_path, a, b, faults=plan)
        out = second.execute(q).result
        assert sorted(out.pairs) == ref
        assert plan.total_injected == 0
        second.close()

    def test_corrupt_result_file_re_executes(self, tmp_path):
        import glob
        a, b = _data(seed=14, n_a=150, n_b=100)
        q = Query(relations=("a", "b"))
        first = self._engine(tmp_path, a, b)
        ref = sorted(first.execute(q).result.pairs)
        first.close()
        victims = glob.glob(
            str(tmp_path / "shard-*" / "results" / "*.res.json")
        )
        assert victims
        corrupt_file(sorted(victims)[0])
        second = self._engine(tmp_path, a, b)
        out = second.execute(q).result
        assert sorted(out.pairs) == ref
        snap = second.metrics_snapshot()
        assert snap["result_store"]["corrupt_drops"] == 1
        assert snap["result_disk_restores"] >= 1
        second.close()

    def test_changed_data_stays_cold(self, tmp_path):
        a, b = _data(seed=15, n_a=150, n_b=100)
        q = Query(relations=("a", "b"))
        first = self._engine(tmp_path, a, b)
        first.execute(q)
        first.close()
        a2, _ = _data(seed=99, n_a=150, n_b=100)
        second = self._engine(tmp_path, a2, b)
        out = second.execute(q).result
        assert sorted(out.pairs) == sorted(brute_reference(a2, b))
        assert second.result_disk_restores == 0
        second.close()

    def test_replicas_do_not_share_artifact_leaves(self, tmp_path):
        a, b = _data(seed=16)
        engine = self._engine(tmp_path, a, b)
        roots = {
            e.artifact_store.root for e in engine.all_engines
        }
        assert len(roots) == len(engine.all_engines)
        engine.close()


class TestFailoverMetrics:
    def test_merge_snapshots_sums_and_recomputes_rate(self):
        merged = merge_snapshots([
            {"failovers": 1, "retries": 2, "replica_failures": 2,
             "queries_executed": 4, "failover_rate": 0.25},
            {"failovers": 1, "retries": 1, "replica_failures": 1,
             "queries_executed": 12, "failover_rate": 0.0833},
        ])
        assert merged["failovers"] == 2
        assert merged["retries"] == 3
        assert merged["replica_failures"] == 3
        assert merged["failover_rate"] == pytest.approx(2 / 16)

    def test_single_engine_snapshot_keeps_key_compat(self):
        engine, a, b = _single()
        snap = engine.metrics_snapshot()
        for key in ("failovers", "retries", "replica_failures",
                    "replica_timeouts", "failover_rate"):
            assert snap[key] == 0
        engine.close()

    def test_prometheus_export_carries_failover_series(self):
        from repro.engine.obs import (
            render_prometheus,
            validate_prometheus,
        )

        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception", times=1),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2)
        engine.execute(Query(relations=("a", "b")))
        text = render_prometheus(engine.metrics_snapshot())
        assert validate_prometheus(text) == []
        assert "repro_engine_failovers 1" in text
        assert "repro_engine_replica_failures 1" in text
        assert 'repro_engine_per_shard_disk_restores{shard="0"}' in text
        engine.close()

    def test_run_workload_surfaces_failovers(self):
        from repro.engine import make_workload, run_workload

        plan = FaultPlan([
            FaultRule(site="shard.execute", kind="exception", times=1),
        ])
        engine, a, b = _sharded(faults=plan, replicas=2,
                                cache_capacity=8)
        queries = make_workload(UNIT, 6, seed=3)
        queries = [
            Query(relations=("a", "b"), window=q.window)
            for q in queries
        ]
        report = run_workload(engine, queries)
        assert report["metrics"]["failovers"] >= 1
        assert report["metrics"]["retries"] >= 1
        engine.close()


def _walk(span):
    if span is None:
        return
    yield span
    for child in span.children:
        for s in _walk(child):
            yield s
