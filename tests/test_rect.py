"""Rectangle kernel: predicates, constructors, and algebraic properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geom.rect import (
    RECT_BYTES,
    Rect,
    area,
    contains,
    enlargement,
    intersection,
    intersects,
    intersects_x,
    intersects_y,
    margin,
    mbr_of,
    reference_point,
    union_mbr,
)

A = Rect(0.0, 2.0, 0.0, 2.0, 1)
B = Rect(1.0, 3.0, 1.0, 3.0, 2)
DISJOINT = Rect(5.0, 6.0, 5.0, 6.0, 3)
TOUCH_EDGE = Rect(2.0, 4.0, 0.0, 2.0, 4)
TOUCH_CORNER = Rect(2.0, 3.0, 2.0, 3.0, 5)


def coords(lo=-100.0, hi=100.0):
    return st.floats(lo, hi, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords()), draw(coords())))
    y1, y2 = sorted((draw(coords()), draw(coords())))
    return Rect(x1, x2, y1, y2, draw(st.integers(0, 10_000)))


class TestPredicates:
    def test_overlapping(self):
        assert intersects(A, B)
        assert A.intersects(B)

    def test_disjoint(self):
        assert not intersects(A, DISJOINT)

    def test_edge_touch_counts_as_intersection(self):
        assert intersects(A, TOUCH_EDGE)

    def test_corner_touch_counts_as_intersection(self):
        assert intersects(A, TOUCH_CORNER)

    def test_containment_is_intersection(self):
        inner = Rect(0.5, 1.5, 0.5, 1.5, 9)
        assert intersects(A, inner)
        assert contains(A, inner)
        assert not contains(inner, A)

    def test_projection_tests_compose(self):
        assert intersects_x(A, B) and intersects_y(A, B)
        tall = Rect(0.0, 2.0, 10.0, 12.0, 7)
        assert intersects_x(A, tall) and not intersects_y(A, tall)
        assert not intersects(A, tall)

    def test_self_intersection(self):
        assert intersects(A, A)

    @given(rects(), rects())
    def test_symmetry(self, r1, r2):
        assert intersects(r1, r2) == intersects(r2, r1)

    @given(rects(), rects())
    def test_matches_projection_decomposition(self, r1, r2):
        assert intersects(r1, r2) == (
            intersects_x(r1, r2) and intersects_y(r1, r2)
        )


class TestIntersection:
    def test_basic(self):
        inter = intersection(A, B)
        assert inter == Rect(1.0, 2.0, 1.0, 2.0, 0)

    def test_disjoint_returns_none(self):
        assert intersection(A, DISJOINT) is None

    def test_touching_returns_degenerate(self):
        inter = intersection(A, TOUCH_EDGE)
        assert inter is not None
        assert inter.xlo == inter.xhi == 2.0

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, r1, r2):
        inter = intersection(r1, r2)
        if inter is None:
            assert not intersects(r1, r2)
        else:
            assert contains(r1, inter) and contains(r2, inter)

    @given(rects(), rects())
    def test_commutative(self, r1, r2):
        assert intersection(r1, r2) == intersection(r2, r1)


class TestUnionAndMBR:
    def test_union_covers_both(self):
        u = union_mbr(A, DISJOINT)
        assert contains(u, A) and contains(u, DISJOINT)

    def test_mbr_of_single(self):
        m = mbr_of([A])
        assert (m.xlo, m.xhi, m.ylo, m.yhi) == (0.0, 2.0, 0.0, 2.0)

    def test_mbr_of_empty_raises(self):
        with pytest.raises(ValueError):
            mbr_of([])

    def test_mbr_of_matches_folded_union(self):
        rs = [A, B, DISJOINT, TOUCH_CORNER]
        folded = rs[0]
        for r in rs[1:]:
            folded = union_mbr(folded, r)
        assert mbr_of(rs) == folded

    @given(st.lists(rects(), min_size=1, max_size=20))
    def test_mbr_contains_all(self, rs):
        m = mbr_of(rs)
        assert all(contains(m, r) for r in rs)

    @given(rects(), rects())
    def test_union_is_tight(self, r1, r2):
        u = union_mbr(r1, r2)
        assert u.xlo == min(r1.xlo, r2.xlo)
        assert u.xhi == max(r1.xhi, r2.xhi)
        assert u.ylo == min(r1.ylo, r2.ylo)
        assert u.yhi == max(r1.yhi, r2.yhi)


class TestMetrics:
    def test_area(self):
        assert area(A) == 4.0

    def test_area_degenerate(self):
        assert area(Rect(1.0, 1.0, 0.0, 5.0, 0)) == 0.0

    def test_margin(self):
        assert margin(A) == 4.0

    def test_enlargement_zero_when_contained(self):
        inner = Rect(0.5, 1.0, 0.5, 1.0, 0)
        assert enlargement(A, inner) == 0.0

    def test_enlargement_positive_when_outside(self):
        assert enlargement(A, DISJOINT) > 0.0

    @given(rects(), rects())
    def test_enlargement_never_negative(self, r1, r2):
        assert enlargement(r1, r2) >= 0.0


class TestReferencePoint:
    def test_inside_intersection(self):
        rx, ry = reference_point(A, B)
        assert (rx, ry) == (1.0, 1.0)

    @given(rects(), rects())
    def test_reference_point_in_both(self, r1, r2):
        if not intersects(r1, r2):
            return
        rx, ry = reference_point(r1, r2)
        for r in (r1, r2):
            assert r.xlo <= rx <= r.xhi
            assert r.ylo <= ry <= r.yhi

    @given(rects(), rects())
    def test_reference_point_symmetric(self, r1, r2):
        if intersects(r1, r2):
            assert reference_point(r1, r2) == reference_point(r2, r1)


class TestShape:
    def test_record_size_matches_paper(self):
        assert RECT_BYTES == 20

    def test_width_height(self):
        assert A.width == 2.0 and A.height == 2.0

    def test_is_valid(self):
        assert A.is_valid()
        assert not Rect(1.0, 0.0, 0.0, 1.0, 0).is_valid()

    def test_named_tuple_order(self):
        # The tuple layout (xlo, xhi, ylo, yhi, rid) is relied on by
        # sort keys and serialization.
        assert tuple(A) == (0.0, 2.0, 0.0, 2.0, 1)

    def test_default_rid(self):
        assert Rect(0, 1, 0, 1).rid == 0
