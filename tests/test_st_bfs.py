"""Breadth-first tree join (Huang et al. [16], discussed in §3.3)."""

import pytest

from repro.core.brute import brute_force_pairs
from repro.core.st_bfs import st_bfs_join
from repro.core.st_join import st_join
from repro.data.generator import clustered_rects, uniform_rects
from repro.geom.rect import Rect
from repro.rtree.bulk_load import bulk_load
from repro.storage.disk import Disk
from repro.storage.pages import PageStore

from tests.conftest import TEST_SCALE, make_env

UNIT = Rect(0.0, 1.0, 0.0, 1.0, 0)


def world(n_a=600, n_b=200, seed=1):
    env = make_env()
    disk = Disk(env)
    store = PageStore(disk, TEST_SCALE.index_page_bytes)
    a = clustered_rects(n_a, UNIT, 0.03, seed=seed)
    b = clustered_rects(n_b, UNIT, 0.04, seed=seed + 1, id_base=10_000)
    ta = bulk_load(store, a)
    tb = bulk_load(store, b)
    env.reset_counters()
    return env, disk, store, a, b, ta, tb


class TestSTBFS:
    def test_correctness(self):
        env, disk, store, a, b, ta, tb = world()
        res = st_bfs_join(ta, tb, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)
        assert res.algorithm == "ST-BFS"

    def test_matches_depth_first_st(self):
        env, disk, store, a, b, ta, tb = world(seed=4)
        bfs = st_bfs_join(ta, tb, collect_pairs=True)
        dfs = st_join(ta, tb, collect_pairs=True)
        assert bfs.pair_set() == dfs.pair_set()

    def test_near_optimal_reads_equal_heights(self):
        # [16]'s claim: each page read at most once when heights match
        # (every level appears in exactly one round).
        env, disk, store, a, b, ta, tb = world(n_a=2000, n_b=2000, seed=5)
        assert ta.height == tb.height
        res = st_bfs_join(ta, tb)
        assert res.detail["disk_reads"] <= res.detail["lower_bound_pages"]

    def test_beats_dfs_with_tiny_pool(self):
        # BFS needs no pool at all; DFS with a tiny pool re-reads.
        from repro.core.st_join import STConfig

        env, disk, store, a, b, ta, tb = world(n_a=2500, n_b=800, seed=6)
        bfs = st_bfs_join(ta, tb)
        dfs = st_join(ta, tb, config=STConfig(buffer_pool_pages=4))
        assert bfs.detail["disk_reads"] < dfs.detail["disk_reads"]

    def test_height_mismatch(self):
        env, disk, store, a, b, ta, tb = world(n_a=2000, n_b=15, seed=7)
        assert ta.height > tb.height
        res = st_bfs_join(ta, tb, collect_pairs=True)
        assert res.pair_set() == brute_force_pairs(a, b)

    def test_disjoint_trees(self):
        env = make_env()
        disk = Disk(env)
        store = PageStore(disk, TEST_SCALE.index_page_bytes)
        ta = bulk_load(store, uniform_rects(100, Rect(0, 1, 0, 1, 0),
                                            0.02, seed=8))
        tb = bulk_load(store, uniform_rects(
            100, Rect(5, 6, 5, 6, 0), 0.02, seed=9, id_base=1000))
        res = st_bfs_join(ta, tb)
        assert res.n_pairs == 0
        assert res.detail["disk_reads"] == 2  # the two roots

    def test_join_index_memory_tracked(self):
        env, disk, store, a, b, ta, tb = world(seed=10)
        res = st_bfs_join(ta, tb)
        assert res.max_memory_bytes > 0
        assert res.detail["max_join_index_pairs"] >= 1

    def test_different_stores_rejected(self):
        _, _, _, _, _, ta, _ = world(seed=11)
        _, _, _, _, _, _, tb = world(seed=12)
        with pytest.raises(ValueError):
            st_bfs_join(ta, tb)

    def test_sorted_fetch_is_mostly_forward_on_disk(self):
        # The point of BFS: page fetches ascend within each round, so
        # the observed I/O is cheap relative to the naive estimate.
        env, disk, store, a, b, ta, tb = world(n_a=3000, n_b=900, seed=13)
        env.reset_counters()
        st_bfs_join(ta, tb)
        obs = env.observers[2]  # Machine 3
        assert obs.io_seconds < 0.6 * obs.estimated_io_seconds
